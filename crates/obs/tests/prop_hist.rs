//! Property tests for the log-bucketed histogram: merge must behave
//! exactly like recording the union of values (associative and
//! commutative), and every quantile estimate must land within one
//! bucket of an exact nearest-rank oracle over the raw values.

use pmv_obs::{bucket_bounds, bucket_of, HistSnapshot, LatencyHistogram};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

/// Nanosecond values spanning the interesting range: sub-bucket exact
/// values, the µs–ms serving range, and multi-second outliers.
fn ns_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        1 => 0u64..16,
        4 => 100u64..10_000_000,
        1 => 1_000_000_000u64..20_000_000_000,
    ]
}

fn record_all(values: &[u64]) -> HistSnapshot {
    let h = LatencyHistogram::new();
    for &v in values {
        h.record_ns(v);
    }
    h.snapshot()
}

/// Exact nearest-rank order statistic over the raw values.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_associative_and_matches_union(
        a in prop_vec(ns_strategy(), 0..60),
        b in prop_vec(ns_strategy(), 0..60),
        c in prop_vec(ns_strategy(), 0..60),
    ) {
        let (sa, sb, sc) = (record_all(&a), record_all(&b), record_all(&c));

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // Commutative: b ∪ a == a ∪ b.
        let mut ba = sb.clone();
        ba.merge(&sa);
        let mut ab = sa.clone();
        ab.merge(&sb);
        prop_assert_eq!(&ab, &ba);

        // Merge identity: x ∪ ∅ == x.
        let mut with_empty = sa.clone();
        with_empty.merge(&HistSnapshot::empty());
        prop_assert_eq!(&with_empty, &sa);

        // Union semantics: merging equals one histogram fed everything.
        let mut union: Vec<u64> = Vec::new();
        union.extend_from_slice(&a);
        union.extend_from_slice(&b);
        union.extend_from_slice(&c);
        prop_assert_eq!(&left, &record_all(&union));
    }

    #[test]
    fn quantile_within_one_bucket_of_exact_oracle(
        mut values in prop_vec(ns_strategy(), 1..120),
        qs in prop_vec(0.0f64..1.0, 1..6),
    ) {
        let snap = record_all(&values);
        values.sort_unstable();

        for q in qs {
            let exact = oracle_quantile(&values, q);
            let est = snap.quantile(q).as_nanos() as u64;
            // The estimate is the upper bound of the exact value's
            // bucket, capped at the true max: never below the exact
            // order statistic's bucket lower bound, never above the
            // same bucket's upper bound.
            let (lo, hi) = bucket_bounds(bucket_of(exact));
            prop_assert!(
                est >= lo && est <= hi.min(*values.last().unwrap()).max(lo),
                "q={q} exact={exact} est={est} bucket=[{lo},{hi}]"
            );
        }

        // count/sum/max are exact regardless of bucketing.
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum_ns(), values.iter().sum::<u64>());
        prop_assert_eq!(snap.max().as_nanos() as u64, *values.last().unwrap());
    }

    #[test]
    fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        if a <= b {
            prop_assert!(bucket_of(a) <= bucket_of(b));
        } else {
            prop_assert!(bucket_of(a) >= bucket_of(b));
        }
    }
}
