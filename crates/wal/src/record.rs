//! WAL record format: length-prefixed, checksummed, LSN-stamped.
//!
//! On-disk layout of one record (all integers little-endian):
//!
//! ```text
//! [len: u32] [crc: u32] [lsn: u64] [payload: len-8 bytes]
//! ```
//!
//! `len` counts the LSN plus payload (so a record occupies `8 + len`
//! bytes) and the CRC-32 covers the same `len` bytes, making the header
//! self-validating: a torn tail either truncates the length prefix, cuts
//! the body short, or corrupts bytes under the checksum — all three are
//! detected by [`scan`], which returns the clean prefix and the offset
//! at which to truncate. Records never span segment files.
//!
//! The LSN is a monotonically increasing commit sequence number assigned
//! by the single flat-combining winner, so within a segment LSNs are
//! strictly increasing and contiguous; replay additionally stops at the
//! first gap (a gap means a later segment survived while an earlier
//! record did not — only the contiguous durable prefix is recovered).

/// Maximum sane record body (LSN + payload) — a length prefix beyond
/// this is treated as torn-tail garbage rather than attempted as an
/// allocation.
pub const MAX_RECORD_LEN: u32 = 1 << 30;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 checksum of `data` (IEEE polynomial, as in zlib).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One decoded WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Commit sequence number.
    pub lsn: u64,
    /// Opaque payload (the codec's serialized delta batches).
    pub payload: Vec<u8>,
}

/// Encode a record into its on-disk byte form.
pub fn encode(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let len = 8 + payload.len();
    let mut body = Vec::with_capacity(8 + len);
    body.extend_from_slice(&(len as u32).to_le_bytes());
    body.extend_from_slice(&[0u8; 4]); // crc placeholder
    body.extend_from_slice(&lsn.to_le_bytes());
    body.extend_from_slice(payload);
    let crc = crc32(&body[8..]);
    body[4..8].copy_from_slice(&crc.to_le_bytes());
    body
}

/// Result of scanning a segment's bytes: every valid record in order,
/// plus the byte offset of the first invalid/torn record (== the length
/// of the clean prefix; the caller truncates the file there).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scan {
    /// Valid records, in file order.
    pub records: Vec<Record>,
    /// Bytes of clean prefix; anything after this is a torn tail.
    pub clean_len: u64,
    /// True when the scan stopped before the end of the buffer (a torn
    /// or corrupt record was found and everything after it discarded).
    pub torn: bool,
}

/// Scan a segment's bytes, stopping at the first record that is
/// incomplete (torn length prefix or short body) or fails its CRC.
pub fn scan(bytes: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        let rest = &bytes[off..];
        if rest.is_empty() {
            return Scan {
                records,
                clean_len: off as u64,
                torn: false,
            };
        }
        if rest.len() < 8 {
            break; // torn header
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if !(8..=MAX_RECORD_LEN).contains(&len) || rest.len() < 8 + len as usize {
            break; // nonsense length or short body
        }
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let body = &rest[8..8 + len as usize];
        if crc32(body) != crc {
            break; // corrupt
        }
        let lsn = u64::from_le_bytes(body[0..8].try_into().unwrap());
        records.push(Record {
            lsn,
            payload: body[8..].to_vec(),
        });
        off += 8 + len as usize;
    }
    Scan {
        records,
        clean_len: off as u64,
        torn: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // zlib's crc32("123456789") reference value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_scan_roundtrip() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode(1, b"alpha"));
        bytes.extend_from_slice(&encode(2, b""));
        bytes.extend_from_slice(&encode(3, b"gamma"));
        let scan = scan(&bytes);
        assert!(!scan.torn);
        assert_eq!(scan.clean_len as usize, bytes.len());
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0].lsn, 1);
        assert_eq!(scan.records[0].payload, b"alpha");
        assert_eq!(scan.records[1].payload, b"");
        assert_eq!(scan.records[2].lsn, 3);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode(1, b"first"));
        let clean = bytes.len();
        bytes.extend_from_slice(&encode(2, b"second"));
        // Cutting anywhere strictly inside the second record must yield
        // exactly the first record and a clean_len at its boundary.
        for cut in clean..bytes.len() {
            let s = scan(&bytes[..cut]);
            if cut == clean {
                assert!(!s.torn);
            } else {
                assert!(s.torn, "cut={cut}");
            }
            assert_eq!(s.records.len(), 1, "cut={cut}");
            assert_eq!(s.clean_len as usize, clean, "cut={cut}");
        }
    }

    #[test]
    fn corrupt_byte_stops_the_scan() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode(1, b"first"));
        let boundary = bytes.len();
        bytes.extend_from_slice(&encode(2, b"second"));
        bytes.extend_from_slice(&encode(3, b"third"));
        // Flip one payload byte of record 2: records 2 AND 3 are
        // discarded (prefix rule — nothing after a bad record is
        // trusted).
        bytes[boundary + 8 + 8] ^= 0x40;
        let s = scan(&bytes);
        assert!(s.torn);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.clean_len as usize, boundary);
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut bytes = encode(1, b"ok");
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        let s = scan(&bytes);
        assert!(s.torn);
        assert_eq!(s.records.len(), 1);
    }
}
