//! Profile report model: "can answer why", not just "has metrics".
//!
//! This module is the pure half of `pmv-profile`: plain report structs
//! plus ranking and rendering. It consumes either live
//! [`HistSnapshot`]s (the CLI `profile` command over a running session)
//! or already-quantized numbers parsed out of flight-recorder dumps and
//! `BENCH_pmv.json` (the `pmv-profile` binary) — file I/O and JSON
//! parsing stay in `pmv-cli`, keeping `pmv-obs` dependency-free.
//!
//! The report answers the three questions ROADMAP item 1 needs answered
//! before the next perf PR:
//!
//! 1. **Where do threads wait?** — contention sites ranked by total
//!    wait time, with per-site p50/p99/max.
//! 2. **Which templates cost the most?** — per-template serving +
//!    maintenance cost from the accounting table.
//! 3. **Where does a pass spend its time?** — pipeline stage breakdown
//!    with each stage's share of total recorded time.

use crate::account::AccountSnapshot;
use crate::hist::HistSnapshot;
use std::fmt::Write as _;

/// Phase names that measure lock *wait* rather than work — the
/// contention half of the phase enum. Kept in one place so the
/// classifier in [`split_phases`] and the docs stay in sync.
pub const CONTENTION_PHASES: [&str; 4] = [
    "lock_shard_probe",
    "lock_shard_fill",
    "lock_shard_maint",
    "lock_master_commit",
];

/// One ranked contention site.
#[derive(Clone, Debug, PartialEq)]
pub struct ContentionSite {
    /// Site name (a `lock_*` phase, e.g. `lock_master_commit`).
    pub site: String,
    /// Lock acquisitions timed.
    pub count: u64,
    /// Median wait, microseconds.
    pub wait_p50_us: u64,
    /// p99 wait, microseconds.
    pub wait_p99_us: u64,
    /// Worst wait, microseconds.
    pub wait_max_us: u64,
    /// Total wait across all acquisitions, microseconds — the ranking
    /// key (many cheap waits and few catastrophic ones both surface).
    pub total_wait_us: u64,
}

impl ContentionSite {
    /// Build from a live histogram snapshot.
    pub fn from_snapshot(site: &str, snap: &HistSnapshot) -> Self {
        ContentionSite {
            site: site.to_string(),
            count: snap.count(),
            wait_p50_us: snap.quantile(0.5).as_micros() as u64,
            wait_p99_us: snap.quantile(0.99).as_micros() as u64,
            wait_max_us: snap.max().as_micros() as u64,
            total_wait_us: snap.sum_ns() / 1_000,
        }
    }
}

/// One template ranked by cost.
#[derive(Clone, Debug, PartialEq)]
pub struct TemplateCost {
    /// Template id.
    pub template: String,
    /// Queries recorded.
    pub queries: u64,
    /// O2 hit rate in `[0, 1]`.
    pub hit_rate: f64,
    /// Median time-to-first-result, microseconds.
    pub ttfr_p50_us: u64,
    /// p99 time-to-first-result, microseconds.
    pub ttfr_p99_us: u64,
    /// p99 full-result latency, microseconds.
    pub full_p99_us: u64,
    /// Cumulative O3 tuples examined.
    pub o3_rows_scanned: u64,
    /// Cumulative maintenance join time, microseconds.
    pub maint_join_us: u64,
    /// Bytes resident in the template's view store.
    pub bytes_resident: u64,
    /// Ranking key: serving + maintenance wall time, microseconds.
    pub cost_us: u64,
}

impl TemplateCost {
    /// Build from an accounting snapshot.
    pub fn from_account(template: &str, s: &AccountSnapshot) -> Self {
        TemplateCost {
            template: template.to_string(),
            queries: s.queries,
            hit_rate: s.hit_rate(),
            ttfr_p50_us: s.ttfr.quantile(0.5).as_micros() as u64,
            ttfr_p99_us: s.ttfr.quantile(0.99).as_micros() as u64,
            full_p99_us: s.full.quantile(0.99).as_micros() as u64,
            o3_rows_scanned: s.o3_rows_scanned,
            maint_join_us: s.maint_join_ns / 1_000,
            bytes_resident: s.bytes_resident,
            cost_us: s.cost_score_ns() / 1_000,
        }
    }
}

/// One pipeline stage's share of recorded time.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineStage {
    /// Stage (phase) name, e.g. `o2_probe`, `commit_drain`, `wal_fsync`.
    pub stage: String,
    /// Samples recorded.
    pub count: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// p99, microseconds.
    pub p99_us: u64,
    /// Total recorded time, microseconds.
    pub total_us: u64,
    /// Share of the report's total recorded stage time, percent.
    /// Filled by [`ProfileReport::rank`].
    pub share_pct: f64,
}

impl PipelineStage {
    /// Build from a live histogram snapshot (share filled at rank time).
    pub fn from_snapshot(stage: &str, snap: &HistSnapshot) -> Self {
        PipelineStage {
            stage: stage.to_string(),
            count: snap.count(),
            p50_us: snap.quantile(0.5).as_micros() as u64,
            p99_us: snap.quantile(0.99).as_micros() as u64,
            total_us: snap.sum_ns() / 1_000,
            share_pct: 0.0,
        }
    }
}

/// Split phase snapshots into (contention sites, pipeline stages):
/// `lock_*` phases measure waiting, everything else measures work.
/// Aggregate phases (`ttfr`, `full`) are excluded from the stage
/// breakdown — they span the others and would double-count.
pub fn split_phases(
    phases: &[(&'static str, HistSnapshot)],
) -> (Vec<ContentionSite>, Vec<PipelineStage>) {
    let mut contention = Vec::new();
    let mut stages = Vec::new();
    for (name, snap) in phases {
        if snap.count() == 0 {
            continue;
        }
        if CONTENTION_PHASES.contains(name) {
            contention.push(ContentionSite::from_snapshot(name, snap));
        } else if *name != "ttfr" && *name != "full" {
            stages.push(PipelineStage::from_snapshot(name, snap));
        }
    }
    (contention, stages)
}

/// The assembled profile.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    /// Where the data came from (session, spool dir, bench JSON paths).
    pub source: String,
    /// Contention sites; ranked by total wait after [`ProfileReport::rank`].
    pub contention: Vec<ContentionSite>,
    /// Templates; ranked by cost after [`ProfileReport::rank`].
    pub templates: Vec<TemplateCost>,
    /// Pipeline stages; ranked by total time after [`ProfileReport::rank`].
    pub pipeline: Vec<PipelineStage>,
    /// Free-form observations (flight-dump reasons, dropped-data notes).
    pub notes: Vec<String>,
}

impl ProfileReport {
    /// Sort every section by its ranking key (descending) and fill
    /// pipeline shares. Call once after assembly, before rendering.
    pub fn rank(&mut self) {
        self.contention
            .sort_by_key(|s| std::cmp::Reverse(s.total_wait_us));
        self.templates.sort_by_key(|t| std::cmp::Reverse(t.cost_us));
        self.pipeline.sort_by_key(|s| std::cmp::Reverse(s.total_us));
        let total: u64 = self.pipeline.iter().map(|s| s.total_us).sum();
        if total > 0 {
            for s in &mut self.pipeline {
                s.share_pct = s.total_us as f64 * 100.0 / total as f64;
            }
        }
    }

    /// The hottest contention site (after [`ProfileReport::rank`]).
    pub fn top_contention(&self) -> Option<&ContentionSite> {
        self.contention.first()
    }

    /// Human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::with_capacity(2048);
        let _ = writeln!(out, "pmv-profile report — {}", self.source);

        out.push_str("\n== contention sites (by total wait) ==\n");
        if self.contention.is_empty() {
            out.push_str("  (no lock waits recorded)\n");
        } else {
            let _ = writeln!(
                out,
                "  {:<20} {:>10} {:>10} {:>10} {:>10} {:>12}",
                "site", "acquires", "p50_us", "p99_us", "max_us", "total_ms"
            );
            for c in &self.contention {
                let _ = writeln!(
                    out,
                    "  {:<20} {:>10} {:>10} {:>10} {:>10} {:>12.2}",
                    c.site,
                    c.count,
                    c.wait_p50_us,
                    c.wait_p99_us,
                    c.wait_max_us,
                    c.total_wait_us as f64 / 1_000.0
                );
            }
            if let Some(top) = self.top_contention() {
                let _ = writeln!(
                    out,
                    "  top contention site: {} (p99 wait {} µs over {} acquisitions)",
                    top.site, top.wait_p99_us, top.count
                );
            }
        }

        out.push_str("\n== top templates by cost (serving + maintenance) ==\n");
        if self.templates.is_empty() {
            out.push_str("  (no per-template accounting recorded)\n");
        } else {
            let _ = writeln!(
                out,
                "  {:<16} {:>9} {:>8} {:>9} {:>9} {:>9} {:>10} {:>10}",
                "template",
                "queries",
                "hit%",
                "ttfr_p50",
                "ttfr_p99",
                "full_p99",
                "maint_ms",
                "cost_ms"
            );
            for t in &self.templates {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>9} {:>7.1}% {:>9} {:>9} {:>9} {:>10.2} {:>10.2}",
                    t.template,
                    t.queries,
                    t.hit_rate * 100.0,
                    t.ttfr_p50_us,
                    t.ttfr_p99_us,
                    t.full_p99_us,
                    t.maint_join_us as f64 / 1_000.0,
                    t.cost_us as f64 / 1_000.0
                );
            }
        }

        out.push_str("\n== pipeline stage breakdown ==\n");
        if self.pipeline.is_empty() {
            out.push_str("  (no stage samples recorded)\n");
        } else {
            let _ = writeln!(
                out,
                "  {:<20} {:>10} {:>10} {:>10} {:>12} {:>7}",
                "stage", "samples", "p50_us", "p99_us", "total_ms", "share"
            );
            for s in &self.pipeline {
                let _ = writeln!(
                    out,
                    "  {:<20} {:>10} {:>10} {:>10} {:>12.2} {:>6.1}%",
                    s.stage,
                    s.count,
                    s.p50_us,
                    s.p99_us,
                    s.total_us as f64 / 1_000.0,
                    s.share_pct
                );
            }
        }

        if !self.notes.is_empty() {
            out.push_str("\n== notes ==\n");
            for n in &self.notes {
                let _ = writeln!(out, "  - {n}");
            }
        }
        out
    }

    /// Machine-readable report (hand-rolled; the serde_json shim has no
    /// serializer).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        let _ = write!(
            out,
            "{{\"source\":\"{}\",\"contention\":[",
            crate::trace::esc(&self.source)
        );
        for (i, c) in self.contention.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"site\":\"{}\",\"count\":{},\"wait_p50_us\":{},\"wait_p99_us\":{},\
                 \"wait_max_us\":{},\"total_wait_us\":{}}}",
                crate::trace::esc(&c.site),
                c.count,
                c.wait_p50_us,
                c.wait_p99_us,
                c.wait_max_us,
                c.total_wait_us
            );
        }
        out.push_str("],\"templates\":[");
        for (i, t) in self.templates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"template\":\"{}\",\"queries\":{},\"hit_rate\":{:.4},\
                 \"ttfr_p50_us\":{},\"ttfr_p99_us\":{},\"full_p99_us\":{},\
                 \"o3_rows_scanned\":{},\"maint_join_us\":{},\"bytes_resident\":{},\
                 \"cost_us\":{}}}",
                crate::trace::esc(&t.template),
                t.queries,
                t.hit_rate,
                t.ttfr_p50_us,
                t.ttfr_p99_us,
                t.full_p99_us,
                t.o3_rows_scanned,
                t.maint_join_us,
                t.bytes_resident,
                t.cost_us
            );
        }
        out.push_str("],\"pipeline\":[");
        for (i, s) in self.pipeline.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"count\":{},\"p50_us\":{},\"p99_us\":{},\
                 \"total_us\":{},\"share_pct\":{:.2}}}",
                crate::trace::esc(&s.stage),
                s.count,
                s.p50_us,
                s.p99_us,
                s.total_us,
                s.share_pct
            );
        }
        out.push_str("],\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", crate::trace::esc(n));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use std::time::Duration;

    fn hist(values_us: &[u64]) -> HistSnapshot {
        let h = LatencyHistogram::new();
        for &us in values_us {
            h.record(Duration::from_micros(us));
        }
        h.snapshot()
    }

    #[test]
    fn split_classifies_lock_phases_as_contention() {
        let phases: Vec<(&'static str, HistSnapshot)> = vec![
            ("ttfr", hist(&[100])),
            ("o2_probe", hist(&[50, 60])),
            ("lock_master_commit", hist(&[500, 900])),
            ("lock_shard_probe", HistSnapshot::empty()),
            ("wal_fsync", hist(&[2_000])),
        ];
        let (contention, stages) = split_phases(&phases);
        assert_eq!(contention.len(), 1, "empty lock phases are dropped");
        assert_eq!(contention[0].site, "lock_master_commit");
        assert_eq!(contention[0].count, 2);
        let names: Vec<&str> = stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(names, ["o2_probe", "wal_fsync"], "ttfr excluded");
    }

    #[test]
    fn rank_orders_sections_and_fills_shares() {
        let mut r = ProfileReport {
            source: "test".into(),
            contention: vec![
                ContentionSite::from_snapshot("lock_shard_probe", &hist(&[10, 10])),
                ContentionSite::from_snapshot("lock_master_commit", &hist(&[5_000])),
            ],
            pipeline: vec![
                PipelineStage::from_snapshot("o2_probe", &hist(&[100])),
                PipelineStage::from_snapshot("o3_exec", &hist(&[300])),
            ],
            ..Default::default()
        };
        r.rank();
        assert_eq!(r.top_contention().unwrap().site, "lock_master_commit");
        assert_eq!(r.pipeline[0].stage, "o3_exec");
        let total: f64 = r.pipeline.iter().map(|s| s.share_pct).sum();
        assert!((total - 100.0).abs() < 0.5, "shares sum to ~100: {total}");
    }

    #[test]
    fn render_human_names_the_top_contention_site() {
        let mut r = ProfileReport {
            source: "bench".into(),
            contention: vec![ContentionSite::from_snapshot(
                "lock_master_commit",
                &hist(&[900, 1_200]),
            )],
            notes: vec!["1 flight dump (reason: degraded)".into()],
            ..Default::default()
        };
        r.rank();
        let text = r.render_human();
        assert!(
            text.contains("top contention site: lock_master_commit"),
            "{text}"
        );
        assert!(text.contains("flight dump"), "{text}");
    }

    #[test]
    fn json_is_balanced() {
        let mut r = ProfileReport {
            source: "s\"1".into(),
            contention: vec![ContentionSite::from_snapshot(
                "lock_shard_fill",
                &hist(&[7]),
            )],
            templates: vec![TemplateCost::from_account(
                "t1",
                &crate::account::AccountSnapshot::default(),
            )],
            pipeline: vec![PipelineStage::from_snapshot("o3_exec", &hist(&[40]))],
            notes: vec![],
        };
        r.rank();
        let j = r.to_json();
        assert!(j.contains("\"site\":\"lock_shard_fill\""), "{j}");
        assert!(j.contains("\"template\":\"t1\""), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
