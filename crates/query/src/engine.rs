//! The `Database`: catalog + secondary indexes + indexed DML.
//!
//! This is the substrate standing in for PostgreSQL in the paper's
//! prototype: relations live in a [`Catalog`], secondary indexes are kept
//! transactionally consistent with every insert/delete/update, and each
//! mutation yields a [`Delta`] so higher layers (transactions, PMV
//! maintenance) can observe `ΔR`.

use std::sync::Arc;

use pmv_index::{AnyIndex, IndexDef, SecondaryIndex};
use pmv_storage::{
    relation_snapshot, with_relation_mut, Catalog, Delta, HeapRelation, RowId, Schema,
    StorageError, Tuple,
};

use crate::dbview::DbSnapshot;
use crate::table_stats::TableStats;
use crate::{QueryError, Result};

/// Shared handle to a relation (re-export of the catalog handle type).
pub type RelationHandle = pmv_storage::catalog::RelationHandle;

/// An in-memory database: relations plus their secondary indexes.
///
/// Relations and indexes are published as immutable `Arc`-held versions
/// (copy-on-write: DML mutates in place while unshared, clones when a
/// snapshot pins the old version), so [`Database::snapshot`] is a
/// handful of `Arc` clones and readers of a snapshot never hold a lock.
/// `version` counts committed mutations and doubles as the epoch number
/// of the snapshot serving path.
#[derive(Default)]
pub struct Database {
    catalog: Catalog,
    indexes: Vec<(IndexDef, Arc<AnyIndex>)>,
    stats: Option<Arc<TableStats>>,
    version: u64,
    /// Per-relation mutation counters: bumped by every DML statement
    /// that touches the relation. [`Database::publish_snapshot`] keys
    /// its incremental refresh off these — an untouched relation's
    /// entry is reused from the previous snapshot verbatim.
    rel_versions: std::collections::BTreeMap<String, u64>,
    /// Bumped whenever the index set or any index's contents change
    /// (create_index, or DML on an indexed relation).
    index_version: u64,
    /// Declared unique keys per relation (sets of column indices).
    /// Declaration validates the relation's current contents and every
    /// later [`Database::insert`] / [`Database::update`] re-checks, so a
    /// declared key is a *proof* the serving path may rely on (see
    /// [`crate::QueryTemplate::emits_unique_rows`]). Bulk
    /// [`Database::load`] and the exact-slot replay/rollback primitives
    /// trust their provenance (pre-validated workloads, the WAL) and
    /// skip the check. Behind an `Arc` so snapshots share it by pointer.
    unique_keys: Arc<std::collections::BTreeMap<String, Vec<Vec<usize>>>>,
    /// The incrementally-maintained snapshot cache (see
    /// [`Database::publish_snapshot`]).
    snap_cache: Option<SnapCache>,
    /// Cumulative refresh accounting for the incremental publish path
    /// (plain counters — `publish_snapshot` takes `&mut self`).
    snap_stats: SnapStats,
}

/// Accounting for [`Database::publish_snapshot`]: how much of each
/// publish was served from the previous snapshot's entries versus
/// re-captured. The reuse ratio is the incremental-publish win the
/// profiler reports alongside the commit-pipeline phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapStats {
    /// `publish_snapshot` calls, including the cold first publish.
    pub publishes: u64,
    /// Relation entries re-captured because their mutation counter
    /// moved since the previous publish (plus every entry of the cold
    /// first publish).
    pub recaptured: u64,
    /// Relation entries reused verbatim (pointer-shared) from the
    /// previous publish.
    pub reused: u64,
}

impl SnapStats {
    /// Fraction of relation entries reused across all publishes so far
    /// (`0.0` before anything was published).
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.reused + self.recaptured;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }
}

/// State carried between [`Database::publish_snapshot`] calls so each
/// publish only re-captures what actually changed since the last one.
struct SnapCache {
    relations: Arc<std::collections::BTreeMap<String, Arc<HeapRelation>>>,
    /// `rel_versions` value each cached relation entry was captured at.
    captured: std::collections::BTreeMap<String, u64>,
    indexes: Arc<Vec<(IndexDef, Arc<AnyIndex>)>>,
    index_version: u64,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create a relation.
    pub fn create_relation(&mut self, schema: Schema) -> Result<()> {
        let name = schema.name().to_string();
        self.catalog.create_relation(schema)?;
        self.version += 1;
        self.mark_relation_dirty(&name);
        Ok(())
    }

    /// Bump `relation`'s mutation counter so the next
    /// [`Database::publish_snapshot`] re-captures it.
    fn mark_relation_dirty(&mut self, relation: &str) {
        match self.rel_versions.get_mut(relation) {
            Some(v) => *v += 1,
            None => {
                self.rel_versions.insert(relation.to_string(), 1);
            }
        }
        if self.indexes.iter().any(|(d, _)| d.relation == relation) {
            self.index_version += 1;
        }
    }

    /// Monotonic mutation counter: bumped by every DML statement and
    /// DDL change. The epoch snapshot layer stamps each published
    /// [`DbSnapshot`] with this value.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Immutable snapshot of the whole database: every relation's
    /// current published version, every index, and the statistics, all
    /// behind `Arc`s. O(#relations + #indexes) pointer clones — no
    /// tuple data is copied — and the result can be read forever with
    /// no lock held.
    ///
    /// This builds from scratch on every call. Commit paths that
    /// snapshot after every transaction should use
    /// [`Database::publish_snapshot`], which reuses the previous
    /// snapshot's entries for untouched relations.
    pub fn snapshot(&self) -> DbSnapshot {
        let mut relations = std::collections::BTreeMap::new();
        for name in self.catalog.relation_names() {
            if let Ok(handle) = self.catalog.relation(&name) {
                relations.insert(name, relation_snapshot(&handle));
            }
        }
        DbSnapshot::new(
            Arc::new(relations),
            Arc::new(self.indexes.clone()),
            Arc::clone(&self.unique_keys),
            self.stats.clone(),
            self.version,
        )
    }

    /// Incremental snapshot publish: like [`Database::snapshot`], but
    /// amortized O(relations touched since the last publish) instead of
    /// O(#relations + #indexes) per call. The relation map and index
    /// list of the previous publish are kept behind `Arc`s; only
    /// entries whose per-relation mutation counter moved are
    /// re-captured (`Arc::make_mut` clones the map of *pointers*, never
    /// tuple data, and only when a published snapshot still pins it).
    ///
    /// This is the snapshot constructor the epoch commit path uses —
    /// under group commit it runs once per coalesced batch, and a
    /// commit touching one relation out of hundreds republishes in a
    /// few pointer writes.
    pub fn publish_snapshot(&mut self) -> DbSnapshot {
        self.snap_stats.publishes += 1;
        let (cache, cold) = match self.snap_cache.take() {
            Some(c) => (c, false),
            None => {
                let full = self.snapshot();
                self.snap_stats.recaptured += full.relations_arc().len() as u64;
                let cache = SnapCache {
                    relations: Arc::clone(full.relations_arc()),
                    captured: self.rel_versions.clone(),
                    indexes: Arc::clone(full.indexes_arc()),
                    index_version: self.index_version,
                };
                (cache, true)
            }
        };
        let mut cache = cache;
        for (name, v) in &self.rel_versions {
            if cache.captured.get(name) != Some(v) {
                self.snap_stats.recaptured += 1;
                if let Ok(handle) = self.catalog.relation(name) {
                    Arc::make_mut(&mut cache.relations)
                        .insert(name.clone(), relation_snapshot(&handle));
                }
            } else if !cold {
                // The cold publish captured everything above; only warm
                // publishes get credit for pointer reuse.
                self.snap_stats.reused += 1;
            }
        }
        cache.captured.clone_from(&self.rel_versions);
        if cache.index_version != self.index_version {
            cache.indexes = Arc::new(self.indexes.clone());
            cache.index_version = self.index_version;
        }
        let snap = DbSnapshot::new(
            Arc::clone(&cache.relations),
            Arc::clone(&cache.indexes),
            Arc::clone(&self.unique_keys),
            self.stats.clone(),
            self.version,
        );
        self.snap_cache = Some(cache);
        snap
    }

    /// Refresh accounting for the incremental publish path: snapshots
    /// published, relation entries re-captured, entries reused.
    pub fn snap_stats(&self) -> SnapStats {
        self.snap_stats
    }

    /// Handle to a relation.
    pub fn relation(&self, name: &str) -> Result<RelationHandle> {
        Ok(self.catalog.relation(name)?)
    }

    /// Schema snapshot of a relation.
    pub fn schema(&self, name: &str) -> Result<Schema> {
        Ok(self.catalog.relation(name)?.read().schema().clone())
    }

    /// Create a secondary index, building it from the relation's current
    /// contents.
    pub fn create_index(&mut self, def: IndexDef) -> Result<()> {
        let rel = self.catalog.relation(&def.relation)?;
        let mut idx = def.build_empty();
        for (row, tuple) in relation_snapshot(&rel).iter() {
            idx.insert(def.key_of(tuple), row);
        }
        self.indexes.push((def, Arc::new(idx)));
        self.version += 1;
        self.index_version += 1;
        Ok(())
    }

    /// First index on exactly `(relation, columns)`, if any.
    pub fn index_on(&self, relation: &str, columns: &[usize]) -> Option<&AnyIndex> {
        self.indexes
            .iter()
            .find(|(d, _)| d.relation == relation && d.columns == columns)
            .map(|(_, i)| &**i)
    }

    /// `Arc` handle to the first index on exactly `(relation, columns)`.
    /// The executor pre-resolves these so its inner loop can borrow
    /// posting lists without re-borrowing the database.
    pub fn index_arc(&self, relation: &str, columns: &[usize]) -> Option<Arc<AnyIndex>> {
        self.indexes
            .iter()
            .find(|(d, _)| d.relation == relation && d.columns == columns)
            .map(|(_, i)| Arc::clone(i))
    }

    /// Declare that `columns` of `relation` form a unique key.
    ///
    /// The declaration is a checked invariant, not an annotation: the
    /// relation's current contents are validated here (the call fails
    /// with [`QueryError::Unique`] if duplicates already exist), and
    /// every later [`Database::insert`] / [`Database::update`] rejects
    /// writes that would violate the key. Declare an index on the same
    /// columns first to make the per-write check an index probe instead
    /// of a scan. Templates whose expanded layout covers a declared key
    /// of every joined relation provably emit duplicate-free results
    /// ([`crate::QueryTemplate::emits_unique_rows`]).
    pub fn declare_unique_key(&mut self, relation: &str, columns: &[&str]) -> Result<()> {
        let schema = self.schema(relation)?;
        let mut key = Vec::with_capacity(columns.len());
        for c in columns {
            key.push(schema.column_index(c)?);
        }
        if key.is_empty() {
            return Err(QueryError::Template(
                "a unique key needs at least one column".into(),
            ));
        }
        let clean = self.with_relation(relation, |r| {
            let mut seen = std::collections::HashSet::new();
            r.iter().all(|(_, t)| seen.insert(t.project(&key)))
        })?;
        if !clean {
            return Err(QueryError::Unique(format!(
                "relation '{relation}' already holds duplicates on columns {key:?}"
            )));
        }
        Arc::make_mut(&mut self.unique_keys)
            .entry(relation.to_string())
            .or_default()
            .push(key);
        self.version += 1;
        Ok(())
    }

    /// Declared unique keys of `relation`, as column-index sets.
    pub fn unique_keys(&self, relation: &str) -> &[Vec<usize>] {
        self.unique_keys.get(relation).map_or(&[], Vec::as_slice)
    }

    /// Reject `tuple` when it would duplicate a live row on a declared
    /// unique key. `skip` names the row an update is replacing, which
    /// never conflicts with itself. Uses an exact-column index when one
    /// exists; falls back to a relation scan.
    fn check_unique(&self, relation: &str, tuple: &Tuple, skip: Option<RowId>) -> Result<()> {
        let Some(keys) = self.unique_keys.get(relation) else {
            return Ok(());
        };
        for key in keys {
            let conflict = match self.index_on(relation, key) {
                Some(idx) => {
                    let parts: Vec<_> = key.iter().map(|&c| tuple.get(c).clone()).collect();
                    idx.probe(&parts).iter().any(|&row| Some(row) != skip)
                }
                None => self.with_relation(relation, |r| {
                    r.iter().any(|(row, t)| {
                        Some(row) != skip && key.iter().all(|&c| t.get(c) == tuple.get(c))
                    })
                })?,
            };
            if conflict {
                return Err(QueryError::Unique(format!(
                    "a row with the same columns {key:?} already exists in '{relation}'"
                )));
            }
        }
        Ok(())
    }

    /// Index definitions registered for `relation`.
    pub fn index_defs(&self, relation: &str) -> Vec<&IndexDef> {
        self.indexes
            .iter()
            .filter(|(d, _)| d.relation == relation)
            .map(|(d, _)| d)
            .collect()
    }

    /// Apply one delta to every index of its relation. Copy-on-write:
    /// `Arc::make_mut` mutates in place while no snapshot pins the index
    /// and clones the next version off-path when one does.
    fn maintain_indexes(&mut self, relation: &str, delta: &Delta) {
        for (def, idx) in &mut self.indexes {
            if def.relation == relation {
                def.apply_delta(Arc::make_mut(idx), delta);
            }
        }
    }

    /// Insert a tuple; maintains indexes; returns the delta. Fails with
    /// [`QueryError::Unique`] when the tuple collides with a live row on
    /// a declared unique key.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<Delta> {
        self.check_unique(relation, &tuple, None)?;
        let rel = self.catalog.relation(relation)?;
        let row = with_relation_mut(&rel, |r| r.insert(tuple.clone()))?;
        let delta = Delta::Insert { row, tuple };
        self.maintain_indexes(relation, &delta);
        self.version += 1;
        self.mark_relation_dirty(relation);
        Ok(delta)
    }

    /// Bulk-load tuples (still index-maintained, but avoids per-row handle
    /// lookups and builds at most one copy-on-write version). Returns the
    /// number loaded.
    pub fn load(
        &mut self,
        relation: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize> {
        let rel = self.catalog.relation(relation)?;
        let indexes = &mut self.indexes;
        let n = with_relation_mut(&rel, |r| -> Result<usize> {
            let mut n = 0;
            for t in tuples {
                let row = r.insert(t.clone())?;
                let delta = Delta::Insert { row, tuple: t };
                for (def, idx) in indexes.iter_mut() {
                    if def.relation == relation {
                        def.apply_delta(Arc::make_mut(idx), &delta);
                    }
                }
                n += 1;
            }
            Ok(n)
        })?;
        self.version += 1;
        self.mark_relation_dirty(relation);
        Ok(n)
    }

    /// Delete the tuple at `row`; maintains indexes; returns the delta.
    pub fn delete(&mut self, relation: &str, row: RowId) -> Result<Delta> {
        let rel = self.catalog.relation(relation)?;
        let tuple = with_relation_mut(&rel, |r| r.delete(row))?;
        let delta = Delta::Delete { row, tuple };
        self.maintain_indexes(relation, &delta);
        self.version += 1;
        self.mark_relation_dirty(relation);
        Ok(delta)
    }

    /// Replace the tuple at `row`; maintains indexes; returns the delta.
    /// Fails with [`QueryError::Unique`] when the new values collide
    /// with a different live row on a declared unique key.
    pub fn update(&mut self, relation: &str, row: RowId, new: Tuple) -> Result<Delta> {
        self.check_unique(relation, &new, Some(row))?;
        let rel = self.catalog.relation(relation)?;
        let old = with_relation_mut(&rel, |r| r.update(row, new.clone()))?;
        let delta = Delta::Update { row, old, new };
        self.maintain_indexes(relation, &delta);
        self.version += 1;
        self.mark_relation_dirty(relation);
        Ok(delta)
    }

    /// Re-apply a logged delta at its original `RowId` — the WAL replay
    /// primitive. Unlike [`Database::insert`] this never allocates a
    /// fresh slot: an `Insert` lands exactly at the logged row
    /// ([`HeapRelation::insert_at`]), so later logged deletes/updates
    /// that name the row still resolve. Indexes and version counters
    /// are maintained like ordinary DML.
    pub fn apply_delta_exact(&mut self, relation: &str, delta: &Delta) -> Result<()> {
        let rel = self.catalog.relation(relation)?;
        match delta {
            Delta::Insert { row, tuple } => {
                with_relation_mut(&rel, |r| r.insert_at(*row, tuple.clone()))?;
            }
            Delta::Delete { row, .. } => {
                with_relation_mut(&rel, |r| r.delete(*row))?;
            }
            Delta::Update { row, new, .. } => {
                with_relation_mut(&rel, |r| r.update(*row, new.clone()))?;
            }
        }
        self.maintain_indexes(relation, delta);
        self.version += 1;
        self.mark_relation_dirty(relation);
        Ok(())
    }

    /// Exact-slot inverse of one applied delta — the rollback primitive
    /// for a commit whose WAL record could not be made durable. The
    /// already-applied deltas are undone in reverse order, restoring
    /// every row to its *original* slot (a plain abort re-inserts at a
    /// fresh slot, which would desynchronize the heap layout from the
    /// log).
    pub fn undo_delta_exact(&mut self, relation: &str, delta: &Delta) -> Result<()> {
        let inverse = match delta {
            Delta::Insert { row, tuple } => Delta::Delete {
                row: *row,
                tuple: tuple.clone(),
            },
            Delta::Delete { row, tuple } => Delta::Insert {
                row: *row,
                tuple: tuple.clone(),
            },
            Delta::Update { row, old, new } => Delta::Update {
                row: *row,
                old: new.clone(),
                new: old.clone(),
            },
        };
        self.apply_delta_exact(relation, &inverse)
    }

    /// Tuple at `row`, cloned out.
    pub fn get(&self, relation: &str, row: RowId) -> Result<Tuple> {
        let rel = self.catalog.relation(relation)?;
        let guard = rel.read();
        guard.get(row).cloned().ok_or_else(|| {
            StorageError::RowNotFound {
                relation: relation.to_string(),
                slot: row.0,
            }
            .into()
        })
    }

    /// Number of live tuples in a relation.
    pub fn len(&self, relation: &str) -> Result<usize> {
        Ok(self.catalog.relation(relation)?.read().len())
    }

    /// Collect table statistics over every relation (the paper's "we ran
    /// the PostgreSQL statistics collection program on all the
    /// relations"). The executor then drives from the most selective
    /// condition instead of blindly using the first one. Statistics are
    /// a snapshot — re-run after bulk changes.
    pub fn analyze(&mut self) -> Result<()> {
        let names = self.catalog.relation_names();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        self.stats = Some(Arc::new(TableStats::analyze(self, &refs)?));
        self.version += 1;
        Ok(())
    }

    /// Table statistics, if `analyze` has been run.
    pub fn table_stats(&self) -> Option<&TableStats> {
        self.stats.as_deref()
    }

    /// Run `f` over a read guard of the relation.
    pub fn with_relation<T>(
        &self,
        relation: &str,
        f: impl FnOnce(&HeapRelation) -> T,
    ) -> Result<T> {
        let rel = self.catalog.relation(relation)?;
        let guard = rel.read();
        Ok(f(&guard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_storage::{tuple, Column, ColumnType, Value};

    fn db_with_r() -> Database {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ],
        ))
        .unwrap();
        db
    }

    #[test]
    fn declare_unique_key_validates_existing_rows() {
        let mut db = db_with_r();
        db.load("r", vec![tuple![1i64, 10i64], tuple![1i64, 20i64]])
            .unwrap();
        // Column `a` already holds duplicates: the declaration must fail.
        assert!(matches!(
            db.declare_unique_key("r", &["a"]),
            Err(QueryError::Unique(_))
        ));
        // The pair (a, b) is duplicate-free, so that declaration lands.
        db.declare_unique_key("r", &["a", "b"]).unwrap();
        assert_eq!(db.unique_keys("r"), &[vec![0, 1]]);
    }

    #[test]
    fn unique_key_rejects_duplicate_insert_and_update() {
        let mut db = db_with_r();
        db.insert("r", tuple![1i64, 10i64]).unwrap();
        db.insert("r", tuple![2i64, 20i64]).unwrap();
        db.declare_unique_key("r", &["a"]).unwrap();
        assert!(matches!(
            db.insert("r", tuple![1i64, 99i64]),
            Err(QueryError::Unique(_))
        ));
        // A fresh key is fine; re-writing a row's own key must not
        // trip over itself (`skip` excludes the updated row).
        db.insert("r", tuple![3i64, 30i64]).unwrap();
        let Delta::Insert { row, .. } = db.insert("r", tuple![4i64, 40i64]).unwrap() else {
            panic!()
        };
        db.update("r", row, tuple![4i64, 41i64]).unwrap();
        // Moving onto another row's key is rejected.
        assert!(matches!(
            db.update("r", row, tuple![3i64, 42i64]),
            Err(QueryError::Unique(_))
        ));
    }

    #[test]
    fn unique_key_enforced_through_index_probe() {
        let mut db = db_with_r();
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        db.insert("r", tuple![7i64, 70i64]).unwrap();
        db.declare_unique_key("r", &["a"]).unwrap();
        // With an exact-column index present enforcement goes through
        // the probe path; behaviour must match the scan path.
        assert!(matches!(
            db.insert("r", tuple![7i64, 71i64]),
            Err(QueryError::Unique(_))
        ));
        db.insert("r", tuple![8i64, 80i64]).unwrap();
    }

    #[test]
    fn unique_keys_flow_into_snapshots() {
        let mut db = db_with_r();
        db.insert("r", tuple![1i64, 10i64]).unwrap();
        db.declare_unique_key("r", &["a"]).unwrap();
        let snap = db.snapshot();
        use crate::dbview::DataView;
        assert_eq!(snap.unique_keys_view("r"), &[vec![0]]);
        assert_eq!(DataView::unique_keys_view(&db, "r"), &[vec![0]]);
        assert!(snap.unique_keys_view("nope").is_empty());
    }

    #[test]
    fn insert_maintains_index() {
        let mut db = db_with_r();
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        let d = db.insert("r", tuple![5i64, 50i64]).unwrap();
        let Delta::Insert { row, .. } = d else {
            panic!()
        };
        let idx = db.index_on("r", &[0]).unwrap();
        assert_eq!(idx.get(&pmv_index::IndexKey::single(Value::Int(5))), &[row]);
    }

    #[test]
    fn index_created_after_load_backfills() {
        let mut db = db_with_r();
        db.load("r", vec![tuple![1i64, 10i64], tuple![2i64, 20i64]])
            .unwrap();
        db.create_index(IndexDef::hash("r", vec![1])).unwrap();
        let idx = db.index_on("r", &[1]).unwrap();
        assert_eq!(
            idx.get(&pmv_index::IndexKey::single(Value::Int(20))).len(),
            1
        );
    }

    #[test]
    fn delete_and_update_maintain_index() {
        let mut db = db_with_r();
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        let Delta::Insert { row, .. } = db.insert("r", tuple![5i64, 50i64]).unwrap() else {
            panic!()
        };
        db.update("r", row, tuple![6i64, 50i64]).unwrap();
        let idx = db.index_on("r", &[0]).unwrap();
        assert!(idx
            .get(&pmv_index::IndexKey::single(Value::Int(5)))
            .is_empty());
        assert_eq!(idx.get(&pmv_index::IndexKey::single(Value::Int(6))), &[row]);
        db.delete("r", row).unwrap();
        let idx = db.index_on("r", &[0]).unwrap();
        assert!(idx
            .get(&pmv_index::IndexKey::single(Value::Int(6)))
            .is_empty());
        assert_eq!(db.len("r").unwrap(), 0);
    }

    #[test]
    fn index_on_requires_exact_columns() {
        let mut db = db_with_r();
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        assert!(db.index_on("r", &[0]).is_some());
        assert!(db.index_on("r", &[1]).is_none());
        assert!(db.index_on("r", &[0, 1]).is_none());
        assert!(db.index_on("s", &[0]).is_none());
    }

    #[test]
    fn get_and_len() {
        let mut db = db_with_r();
        let Delta::Insert { row, .. } = db.insert("r", tuple![1i64, 2i64]).unwrap() else {
            panic!()
        };
        assert_eq!(db.get("r", row).unwrap(), tuple![1i64, 2i64]);
        assert_eq!(db.len("r").unwrap(), 1);
        db.delete("r", row).unwrap();
        assert!(db.get("r", row).is_err());
    }

    #[test]
    fn publish_snapshot_reuses_untouched_entries() {
        use crate::dbview::DataView;
        let mut db = db_with_r();
        db.create_relation(Schema::new("s", vec![Column::new("x", ColumnType::Int)]))
            .unwrap();
        db.insert("r", tuple![1i64, 10i64]).unwrap();
        db.insert("s", tuple![7i64]).unwrap();
        let a = db.publish_snapshot();
        // No mutation: the next publish reuses the whole relation map.
        let b = db.publish_snapshot();
        assert!(Arc::ptr_eq(a.relations_arc(), b.relations_arc()));
        assert!(Arc::ptr_eq(a.indexes_arc(), b.indexes_arc()));
        // Mutating r re-captures r but reuses s's entry untouched.
        db.insert("r", tuple![2i64, 20i64]).unwrap();
        let c = db.publish_snapshot();
        assert!(!Arc::ptr_eq(b.relations_arc(), c.relations_arc()));
        assert!(Arc::ptr_eq(
            &b.relation_version("s").unwrap(),
            &c.relation_version("s").unwrap()
        ));
        assert_eq!(c.len("r").unwrap(), 2);
        assert_eq!(b.len("r").unwrap(), 1, "pinned snapshot mutated");
        // Index list only re-captured when an indexed relation moves.
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        let d = db.publish_snapshot();
        assert!(!Arc::ptr_eq(c.indexes_arc(), d.indexes_arc()));
        db.insert("s", tuple![8i64]).unwrap();
        let e = db.publish_snapshot();
        assert!(Arc::ptr_eq(d.indexes_arc(), e.indexes_arc()));
        db.insert("r", tuple![3i64, 30i64]).unwrap();
        let f = db.publish_snapshot();
        assert!(!Arc::ptr_eq(e.indexes_arc(), f.indexes_arc()));
        assert_eq!(
            f.index_arc("r", &[0])
                .unwrap()
                .probe(&[Value::Int(3)])
                .len(),
            1
        );
        // Incremental publish and full snapshot agree.
        let full = db.snapshot();
        assert_eq!(full.epoch(), f.epoch());
        assert_eq!(full.len("r").unwrap(), f.len("r").unwrap());
        assert_eq!(full.len("s").unwrap(), f.len("s").unwrap());
    }

    #[test]
    fn apply_delta_exact_replays_slot_layout_and_indexes() {
        // Record a little history on one database...
        let mut db = db_with_r();
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        let mut log = Vec::new();
        log.push(db.insert("r", tuple![1i64, 10i64]).unwrap());
        log.push(db.insert("r", tuple![2i64, 20i64]).unwrap());
        let Delta::Insert { row: r0, .. } = log[0].clone() else {
            panic!()
        };
        log.push(db.delete("r", r0).unwrap());
        log.push(db.insert("r", tuple![3i64, 30i64]).unwrap()); // reuses slot 0
        let Delta::Insert { row: r1, .. } = log[1].clone() else {
            panic!()
        };
        log.push(db.update("r", r1, tuple![4i64, 20i64]).unwrap());

        // ...and replay it into a fresh database with the same schema.
        let mut replica = db_with_r();
        replica.create_index(IndexDef::btree("r", vec![0])).unwrap();
        for d in &log {
            replica.apply_delta_exact("r", d).unwrap();
        }
        assert_eq!(replica.len("r").unwrap(), db.len("r").unwrap());
        for (row, t) in [(RowId(0), tuple![3i64, 30i64]), (r1, tuple![4i64, 20i64])] {
            assert_eq!(replica.get("r", row).unwrap(), t);
        }
        let idx = replica.index_on("r", &[0]).unwrap();
        assert_eq!(idx.get(&pmv_index::IndexKey::single(Value::Int(4))), &[r1]);
        assert!(idx
            .get(&pmv_index::IndexKey::single(Value::Int(1)))
            .is_empty());
    }

    #[test]
    fn undo_delta_exact_restores_original_slots() {
        let mut db = db_with_r();
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        db.insert("r", tuple![1i64, 10i64]).unwrap();
        let before: Vec<_> = db
            .with_relation("r", |r| {
                r.iter().map(|(id, t)| (id, t.clone())).collect::<Vec<_>>()
            })
            .unwrap();
        // A "failed commit": three deltas applied, then undone in reverse.
        let applied = [
            db.insert("r", tuple![2i64, 20i64]).unwrap(),
            db.delete("r", RowId(0)).unwrap(),
            db.insert("r", tuple![3i64, 30i64]).unwrap(),
        ];
        for d in applied.iter().rev() {
            db.undo_delta_exact("r", d).unwrap();
        }
        let after: Vec<_> = db
            .with_relation("r", |r| {
                r.iter().map(|(id, t)| (id, t.clone())).collect::<Vec<_>>()
            })
            .unwrap();
        assert_eq!(before, after, "rollback must restore exact slot layout");
        let idx = db.index_on("r", &[0]).unwrap();
        assert!(idx
            .get(&pmv_index::IndexKey::single(Value::Int(3)))
            .is_empty());
        assert_eq!(
            idx.get(&pmv_index::IndexKey::single(Value::Int(1))),
            &[RowId(0)]
        );
    }

    #[test]
    fn multiple_indexes_on_one_relation() {
        let mut db = db_with_r();
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        db.create_index(IndexDef::hash("r", vec![1])).unwrap();
        db.insert("r", tuple![1i64, 2i64]).unwrap();
        assert_eq!(db.index_defs("r").len(), 2);
        assert_eq!(db.index_on("r", &[1]).unwrap().entry_count(), 1);
    }
}
