//! Concurrency tests for the Section 3.6 locking protocol: queries take
//! an S lock on the PMV for O2..O3; maintenance takes an X lock. A
//! maintainer therefore cannot slip between a query's partial results and
//! its full execution.

mod common;

use common::{eqt_fixture, eqt_query};
use pmv::prelude::*;
use pmv::query::{LockManager, LockMode};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn maintainer_waits_for_reader() {
    let locks = LockManager::new();
    let s = locks.lock_shared("pmv_obj");
    let done = Arc::new(AtomicBool::new(false));
    let locks2 = locks.clone();
    let done2 = Arc::clone(&done);
    let t = std::thread::spawn(move || {
        let _x = locks2.lock_exclusive("pmv_obj");
        done2.store(true, Ordering::SeqCst);
    });
    std::thread::sleep(Duration::from_millis(40));
    assert!(
        !done.load(Ordering::SeqCst),
        "X lock must wait for the query's S lock"
    );
    drop(s);
    t.join().unwrap();
    assert!(done.load(Ordering::SeqCst));
}

#[test]
fn readers_share_maintainers_serialize() {
    let locks = LockManager::new();
    let in_cs = Arc::new(AtomicUsize::new(0));
    let max_writers = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for i in 0..8 {
        let locks = locks.clone();
        let in_cs = Arc::clone(&in_cs);
        let max_writers = Arc::clone(&max_writers);
        handles.push(std::thread::spawn(move || {
            for _ in 0..200 {
                if i % 2 == 0 {
                    let _g = locks.lock("v", LockMode::Exclusive);
                    let now = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                    max_writers.fetch_max(now, Ordering::SeqCst);
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                } else {
                    let _g = locks.lock("v", LockMode::Shared);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        max_writers.load(Ordering::SeqCst),
        1,
        "two X holders overlapped"
    );
    assert_eq!(locks.held_objects(), 0);
}

/// Full-protocol test: one thread streams queries through the pipeline
/// while another applies deletes with maintenance. Each query must be
/// internally consistent (exactly-once: ds_leftover == 0) even though
/// the database changes between queries.
#[test]
fn queries_and_maintenance_interleave_consistently() {
    let fx = eqt_fixture(150);
    let db = Arc::new(parking_lot::RwLock::new(fx.db));
    let template = fx.template;
    let locks = LockManager::new();
    let pipeline = PmvPipeline::with_locks(locks.clone());
    let def = PartialViewDef::all_equality("shared_pmv", template.clone()).unwrap();
    let pmv = Arc::new(parking_lot::Mutex::new(Pmv::new(def, PmvConfig::default())));

    let stop = Arc::new(AtomicBool::new(false));
    let inconsistencies = Arc::new(AtomicUsize::new(0));

    let reader = {
        let db = Arc::clone(&db);
        let pmv = Arc::clone(&pmv);
        let pipeline = pipeline.clone();
        let template = template.clone();
        let stop = Arc::clone(&stop);
        let bad = Arc::clone(&inconsistencies);
        std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::SeqCst) {
                let q = eqt_query(&template, &[i % 7], &[(i / 7) % 5]);
                let db_guard = db.read();
                let mut pmv_guard = pmv.lock();
                let out = pipeline.run(&db_guard, &mut pmv_guard, &q).unwrap();
                if out.ds_leftover != 0 {
                    bad.fetch_add(1, Ordering::SeqCst);
                }
                drop(pmv_guard);
                drop(db_guard);
                i += 1;
            }
            i
        })
    };

    let writer = {
        let db = Arc::clone(&db);
        let pmv = Arc::clone(&pmv);
        let pipeline = pipeline.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 0i64;
            while !stop.load(Ordering::SeqCst) {
                let mut db_guard = db.write();
                let mut txn = pmv::query::Transaction::begin(&mut db_guard);
                txn.insert(
                    "r",
                    Tuple::new(vec![
                        Value::Int(10_000 + round),
                        Value::Int(round % 76),
                        Value::Int(round % 7),
                    ]),
                )
                .unwrap();
                // Delete some earlier row if present.
                let victim = {
                    let handle = txn.get("r", pmv::storage::RowId((round % 150) as u32));
                    handle
                        .ok()
                        .map(|_| pmv::storage::RowId((round % 150) as u32))
                };
                if let Some(v) = victim {
                    txn.delete("r", v).unwrap();
                }
                let batches = txn.commit();
                // Downgrade to read for the maintenance joins.
                let db_read = parking_lot::RwLockWriteGuard::downgrade(db_guard);
                let mut pmv_guard = pmv.lock();
                for b in &batches {
                    pipeline.maintain(&db_read, &mut pmv_guard, b).unwrap();
                }
                round += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            round
        })
    };

    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::SeqCst);
    let queries = reader.join().unwrap();
    let rounds = writer.join().unwrap();
    assert!(queries > 10, "reader made progress ({queries} queries)");
    assert!(rounds > 10, "writer made progress ({rounds} rounds)");
    assert_eq!(
        inconsistencies.load(Ordering::SeqCst),
        0,
        "a query saw a stale partial result"
    );

    // Final state sanity: revalidation finds nothing stale.
    let db_guard = db.read();
    let mut pmv_guard = pmv.lock();
    let removed = pmv_guard.revalidate(&db_guard).unwrap();
    assert_eq!(removed, 0, "stale tuples survived maintenance");
}
