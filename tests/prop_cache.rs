//! Property tests on the replacement policies: structural invariants for
//! all, exact model equivalence for LRU, and 2Q's probation discipline.

use pmv::cache::{AdmitOutcome, ClockPolicy, LruPolicy, PolicyKind, ReplacementPolicy, TwoQPolicy};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Debug)]
enum Op {
    Touch(u16),
    Admit(u16),
    Remove(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => (0u16..40).prop_map(Op::Touch),
        3 => (0u16..40).prop_map(Op::Admit),
        1 => (0u16..40).prop_map(Op::Remove),
    ]
}

fn run_invariant_check(
    mut policy: Box<dyn ReplacementPolicy<u16>>,
    ops: Vec<Op>,
) -> Result<(), TestCaseError> {
    let cap = policy.capacity();
    let mut resident: HashSet<u16> = HashSet::new();
    for op in ops {
        match op {
            Op::Touch(k) => policy.touch(&k),
            Op::Admit(k) => match policy.admit(k) {
                AdmitOutcome::Resident { evicted } => {
                    for e in &evicted {
                        prop_assert!(resident.remove(e), "evicted key {e} was not resident");
                        prop_assert!(!policy.contains(e), "evicted key still resident");
                        prop_assert_ne!(*e, k, "policy evicted the admitted key");
                    }
                    resident.insert(k);
                    prop_assert!(policy.contains(&k));
                }
                AdmitOutcome::Probation => {
                    prop_assert!(!policy.contains(&k) || resident.contains(&k));
                }
            },
            Op::Remove(k) => {
                policy.remove(&k);
                resident.remove(&k);
                prop_assert!(!policy.contains(&k));
            }
        }
        prop_assert!(policy.resident_count() <= cap, "over capacity");
        prop_assert_eq!(policy.resident_count(), resident.len());
        let keys: HashSet<u16> = policy.resident_keys().into_iter().collect();
        prop_assert_eq!(&keys, &resident, "resident set mismatch");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn clock_invariants(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        run_invariant_check(Box::new(ClockPolicy::new(8)), ops)?;
    }

    #[test]
    fn two_q_invariants(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        run_invariant_check(Box::new(TwoQPolicy::new(8)), ops)?;
    }

    #[test]
    fn lru_invariants(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        run_invariant_check(PolicyKind::Lru.build(8), ops)?;
    }

    #[test]
    fn lru_k_invariants(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        run_invariant_check(PolicyKind::LruK.build(8), ops)?;
    }

    #[test]
    fn two_q_full_invariants(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        run_invariant_check(PolicyKind::TwoQFull.build(8), ops)?;
    }

    /// LRU against an exact recency-order model.
    #[test]
    fn lru_matches_exact_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut lru = LruPolicy::new(6);
        let mut model: Vec<u16> = Vec::new(); // front = LRU, back = MRU
        for op in ops {
            match op {
                Op::Touch(k) => {
                    lru.touch(&k);
                    if let Some(pos) = model.iter().position(|&x| x == k) {
                        let v = model.remove(pos);
                        model.push(v);
                    }
                }
                Op::Admit(k) => {
                    let out = lru.admit(k);
                    if let Some(pos) = model.iter().position(|&x| x == k) {
                        // Refresh.
                        prop_assert_eq!(out.evicted().len(), 0);
                        let v = model.remove(pos);
                        model.push(v);
                    } else {
                        if model.len() == 6 {
                            let victim = model.remove(0);
                            prop_assert_eq!(out.evicted(), &[victim]);
                        } else {
                            prop_assert_eq!(out.evicted().len(), 0);
                        }
                        model.push(k);
                    }
                }
                Op::Remove(k) => {
                    lru.remove(&k);
                    model.retain(|&x| x != k);
                }
            }
            prop_assert_eq!(lru.resident_keys(), model.clone());
        }
    }

    /// 2Q: a key only becomes resident on its second admit while in A1,
    /// and A1 membership expires FIFO.
    #[test]
    fn two_q_probation_discipline(keys in proptest::collection::vec(0u16..30, 1..200)) {
        let mut q = TwoQPolicy::with_a1_capacity(8, 4);
        let mut admitted_once: Vec<u16> = Vec::new(); // FIFO window of A1
        for k in keys {
            let was_resident = q.contains(&k);
            let in_a1 = q.in_probation(&k);
            let out = q.admit(k);
            if was_resident {
                prop_assert!(out.is_resident());
            } else if in_a1 {
                prop_assert!(out.is_resident(), "second admit in A1 must promote");
                admitted_once.retain(|&x| x != k);
            } else {
                prop_assert_eq!(out, AdmitOutcome::Probation);
                admitted_once.push(k);
                if admitted_once.len() > 4 {
                    admitted_once.remove(0);
                }
            }
            // A1 content matches our FIFO window.
            for &x in &admitted_once {
                prop_assert!(q.in_probation(&x), "key {x} should be in A1");
            }
            prop_assert_eq!(q.probation_len(), admitted_once.len());
        }
    }
}
