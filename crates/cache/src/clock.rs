//! The CLOCK (second-chance) replacement policy, the paper's default for
//! managing basic condition parts (Section 3.2, citing \[29\]).

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

use crate::{AdmitOutcome, ReplacementPolicy};

/// One clock frame.
struct Frame<K> {
    key: K,
    referenced: bool,
}

/// CLOCK over a fixed ring of frames.
pub struct ClockPolicy<K> {
    frames: Vec<Frame<K>>,
    /// key → frame position.
    map: HashMap<K, usize>,
    hand: usize,
    capacity: usize,
}

impl<K: Clone + Eq + Hash + Debug> ClockPolicy<K> {
    /// CLOCK with `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CLOCK capacity must be positive");
        ClockPolicy {
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            hand: 0,
            capacity,
        }
    }

    /// Advance the hand until a victim (referenced == false) is found,
    /// clearing reference bits on the way. Returns the victim's position.
    fn find_victim(&mut self) -> usize {
        loop {
            let pos = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let frame = &mut self.frames[pos];
            if frame.referenced {
                frame.referenced = false;
            } else {
                return pos;
            }
        }
    }
}

impl<K: Clone + Eq + Hash + Debug> ReplacementPolicy<K> for ClockPolicy<K> {
    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn touch(&mut self, key: &K) {
        if let Some(&pos) = self.map.get(key) {
            self.frames[pos].referenced = true;
        }
    }

    fn admit(&mut self, key: K) -> AdmitOutcome<K> {
        if let Some(&pos) = self.map.get(&key) {
            self.frames[pos].referenced = true;
            return AdmitOutcome::Resident { evicted: vec![] };
        }
        if self.frames.len() < self.capacity {
            self.map.insert(key.clone(), self.frames.len());
            self.frames.push(Frame {
                key,
                referenced: true,
            });
            return AdmitOutcome::Resident { evicted: vec![] };
        }
        let pos = self.find_victim();
        let victim = std::mem::replace(
            &mut self.frames[pos],
            Frame {
                key: key.clone(),
                referenced: true,
            },
        );
        self.map.remove(&victim.key);
        self.map.insert(key, pos);
        AdmitOutcome::Resident {
            evicted: vec![victim.key],
        }
    }

    fn remove(&mut self, key: &K) {
        if let Some(pos) = self.map.remove(key) {
            // Swap-remove the frame, fixing the moved frame's map entry.
            let last = self.frames.len() - 1;
            self.frames.swap(pos, last);
            self.frames.pop();
            if pos < self.frames.len() {
                let moved_key = self.frames[pos].key.clone();
                self.map.insert(moved_key, pos);
            }
            // Hand repair. Only `hand == last` needs it: positions below
            // `last` still hold the same frames. If the hand pointed at
            // the frame that was swapped down into `pos`, it must follow
            // it there (resetting to 0 — the seed's `hand %= len` — lets
            // the hand skip unvisited frames and re-sweep ones that
            // already spent their second chance). If the hand pointed at
            // the removed frame itself (`pos == last`, no swap), the
            // next frame in ring order is index 0.
            if self.hand >= self.frames.len() {
                self.hand = if pos < self.frames.len() { pos } else { 0 };
            }
        }
    }

    fn resident_count(&self) -> usize {
        self.frames.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resident_keys(&self) -> Vec<K> {
        self.frames.iter().map(|f| f.key.clone()).collect()
    }

    fn name(&self) -> &'static str {
        "CLOCK"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_capacity_without_eviction() {
        let mut c = ClockPolicy::new(3);
        for k in 0..3u32 {
            let out = c.admit(k);
            assert_eq!(out, AdmitOutcome::Resident { evicted: vec![] });
        }
        assert_eq!(c.resident_count(), 3);
        assert!(c.contains(&0) && c.contains(&1) && c.contains(&2));
    }

    #[test]
    fn evicts_unreferenced_first() {
        let mut c = ClockPolicy::new(3);
        c.admit(0u32);
        c.admit(1);
        c.admit(2);
        // All have ref bits set from admission; first sweep clears them,
        // second pass evicts frame 0.
        let out = c.admit(3);
        assert_eq!(out.evicted(), &[0]);
        assert!(c.contains(&3) && !c.contains(&0));
    }

    #[test]
    fn touch_grants_second_chance() {
        let mut c = ClockPolicy::new(3);
        c.admit(0u32);
        c.admit(1);
        c.admit(2);
        c.admit(3); // evicts 0; hand now past frame 0, bits of 1,2 cleared
        c.touch(&1); // re-reference 1
        let out = c.admit(4);
        // Victim search starts at frame 1 (key 1): referenced → spared;
        // frame 2 (key 2): clear → evicted.
        assert_eq!(out.evicted(), &[2]);
        assert!(c.contains(&1));
    }

    #[test]
    fn re_admitting_resident_is_noop() {
        let mut c = ClockPolicy::new(2);
        c.admit(0u32);
        c.admit(1);
        let out = c.admit(0);
        assert_eq!(out, AdmitOutcome::Resident { evicted: vec![] });
        assert_eq!(c.resident_count(), 2);
    }

    #[test]
    fn remove_frees_a_slot() {
        let mut c = ClockPolicy::new(2);
        c.admit(0u32);
        c.admit(1);
        c.remove(&0);
        assert_eq!(c.resident_count(), 1);
        let out = c.admit(2);
        assert_eq!(out.evicted(), &[] as &[u32]);
        assert!(c.contains(&1) && c.contains(&2));
    }

    #[test]
    fn remove_fixes_map_after_swap() {
        let mut c = ClockPolicy::new(3);
        c.admit(0u32);
        c.admit(1);
        c.admit(2);
        c.remove(&0); // frame 2 (key 2) swaps into slot 0
        assert!(c.contains(&2));
        c.touch(&2); // must touch the right frame
        c.admit(3);
        assert_eq!(c.resident_count(), 3);
    }

    #[test]
    fn remove_hand_follows_swapped_frame() {
        let mut c = ClockPolicy::new(3);
        c.admit(0u32);
        c.admit(1);
        c.admit(2);
        assert_eq!(c.admit(3).evicted(), &[0]); // frames [3,1,2], hand=1
        assert_eq!(c.admit(4).evicted(), &[1]); // frames [3,4,2], hand=2
        c.touch(&2);
        // Swap-remove moves key 2 into slot 1; the hand (on slot 2, the
        // old last) must follow it there. The seed's `hand %= len` reset
        // it to slot 0, which made the next sweep spend 3's second
        // chance out of turn and evict 3 instead of 2.
        c.remove(&4);
        // Refills the freed slot, no eviction.
        assert_eq!(c.admit(5).evicted(), &[] as &[u32]);
        // Sweep order from the followed hand: 2, 5, 3, then 2 again →
        // victim 2. (With the seed's reset hand the sweep started at 3
        // and evicted it instead.)
        assert_eq!(c.admit(6).evicted(), &[2]);
        assert!(c.contains(&3) && c.contains(&5) && c.contains(&6));
    }

    #[test]
    fn eviction_cycle_visits_everyone() {
        let mut c = ClockPolicy::new(4);
        for k in 0..4u32 {
            c.admit(k);
        }
        let mut evicted = Vec::new();
        for k in 4..12u32 {
            evicted.extend(c.admit(k).evicted().to_vec());
        }
        assert_eq!(evicted.len(), 8);
        assert_eq!(c.resident_count(), 4);
        // The four most recent should be resident.
        for k in 8..12u32 {
            assert!(c.contains(&k), "key {k} should be resident");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        ClockPolicy::<u32>::new(0);
    }
}
