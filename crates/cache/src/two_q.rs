//! Simplified 2Q, exactly as specified in the paper's Section 4.1:
//!
//! > V_PM is composed of two queues: Am and A1. Am has N entries and is
//! > managed by the CLOCK algorithm. Each entry can store one basic
//! > condition part bcp and F query result tuples. A1 has N' = 50% × N
//! > entries and is a FIFO queue. Each entry stores one basic condition
//! > part. Upon the first time that a bcp appears in the Cselect of a
//! > query, bcp is put into A1. If during its stay in A1, bcp appears
//! > again, both bcp and F query result tuples are moved to Am. Am is
//! > used to provide partial results to a query.
//!
//! A1 holds keys only (its entries cost ~4% of a full entry, which is how
//! the paper equalizes storage with CLOCK via L = 1.02 × N), so a key in
//! A1 is *probationary*: [`ReplacementPolicy::admit`] returns
//! [`AdmitOutcome::Probation`] and the store caches no tuples for it.

use std::collections::{HashSet, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

use crate::clock::ClockPolicy;
use crate::{AdmitOutcome, ReplacementPolicy};

/// Simplified 2Q: CLOCK-managed Am plus FIFO key-only A1.
pub struct TwoQPolicy<K> {
    am: ClockPolicy<K>,
    a1: VecDeque<K>,
    a1_set: HashSet<K>,
    a1_capacity: usize,
}

impl<K: Clone + Eq + Hash + Debug> TwoQPolicy<K> {
    /// 2Q with `capacity` Am entries and the paper's A1 size of 50% × N
    /// (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self::with_a1_capacity(capacity, (capacity / 2).max(1))
    }

    /// 2Q with an explicit A1 probation-queue size.
    pub fn with_a1_capacity(capacity: usize, a1_capacity: usize) -> Self {
        assert!(a1_capacity > 0, "A1 capacity must be positive");
        TwoQPolicy {
            am: ClockPolicy::new(capacity),
            a1: VecDeque::with_capacity(a1_capacity),
            a1_set: HashSet::with_capacity(a1_capacity),
            a1_capacity,
        }
    }

    /// Whether `key` is sitting in the A1 probation queue.
    pub fn in_probation(&self, key: &K) -> bool {
        self.a1_set.contains(key)
    }

    /// Current probation-queue length.
    pub fn probation_len(&self) -> usize {
        self.a1.len()
    }

    fn drop_from_a1(&mut self, key: &K) {
        if self.a1_set.remove(key) {
            if let Some(pos) = self.a1.iter().position(|k| k == key) {
                self.a1.remove(pos);
            }
        }
    }

    fn push_a1(&mut self, key: K) {
        if self.a1_set.contains(&key) {
            return;
        }
        if self.a1.len() == self.a1_capacity {
            if let Some(old) = self.a1.pop_front() {
                self.a1_set.remove(&old);
            }
        }
        self.a1_set.insert(key.clone());
        self.a1.push_back(key);
    }
}

impl<K: Clone + Eq + Hash + Debug> ReplacementPolicy<K> for TwoQPolicy<K> {
    fn contains(&self, key: &K) -> bool {
        self.am.contains(key)
    }

    fn touch(&mut self, key: &K) {
        // Accesses to Am entries set their CLOCK reference bit; A1
        // promotion happens on `admit` (when tuples are available).
        self.am.touch(key);
    }

    fn admit(&mut self, key: K) -> AdmitOutcome<K> {
        if self.am.contains(&key) {
            self.am.touch(&key);
            return AdmitOutcome::Resident { evicted: vec![] };
        }
        if self.a1_set.contains(&key) {
            // Second appearance during its stay in A1: promote to Am.
            self.drop_from_a1(&key);
            return self.am.admit(key);
        }
        // First appearance: probation only.
        self.push_a1(key);
        AdmitOutcome::Probation
    }

    fn remove(&mut self, key: &K) {
        self.am.remove(key);
        self.drop_from_a1(key);
    }

    fn resident_count(&self) -> usize {
        self.am.resident_count()
    }

    fn capacity(&self) -> usize {
        self.am.capacity()
    }

    fn resident_keys(&self) -> Vec<K> {
        self.am.resident_keys()
    }

    fn name(&self) -> &'static str {
        "2Q"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_goes_to_probation() {
        let mut q = TwoQPolicy::new(4);
        let out = q.admit(1u32);
        assert_eq!(out, AdmitOutcome::Probation);
        assert!(!q.contains(&1));
        assert!(q.in_probation(&1));
    }

    #[test]
    fn second_touch_promotes() {
        let mut q = TwoQPolicy::new(4);
        q.admit(1u32);
        let out = q.admit(1);
        assert!(out.is_resident());
        assert!(q.contains(&1));
        assert!(!q.in_probation(&1));
    }

    #[test]
    fn a1_fifo_expels_oldest_probationer() {
        let mut q = TwoQPolicy::with_a1_capacity(4, 2);
        q.admit(1u32);
        q.admit(2);
        q.admit(3); // expels 1 from A1
        assert!(!q.in_probation(&1));
        assert!(q.in_probation(&2) && q.in_probation(&3));
        // 1 fell out of A1, so another appearance is "first" again.
        assert_eq!(q.admit(1), AdmitOutcome::Probation);
    }

    #[test]
    fn promotion_can_evict_from_am() {
        let mut q = TwoQPolicy::new(2);
        for k in [1u32, 1, 2, 2] {
            q.admit(k);
        }
        assert_eq!(q.resident_count(), 2);
        q.admit(3);
        let out = q.admit(3);
        assert!(out.is_resident());
        assert_eq!(out.evicted().len(), 1);
        assert_eq!(q.resident_count(), 2);
    }

    #[test]
    fn touch_on_am_protects_from_eviction() {
        let mut q = TwoQPolicy::new(3);
        for k in [1u32, 1, 2, 2, 3, 3] {
            q.admit(k); // Am = [1, 2, 3], all reference bits set
        }
        // Promote 4: the sweep clears everyone's bit, then evicts 1.
        q.admit(4u32);
        assert_eq!(q.admit(4).evicted(), &[1]);
        // 2 gets re-referenced; promoting 5 must spare it and evict 3.
        q.touch(&2);
        q.admit(5u32);
        let out = q.admit(5);
        assert_eq!(out.evicted(), &[3]);
        assert!(q.contains(&2));
    }

    #[test]
    fn remove_clears_both_queues() {
        let mut q = TwoQPolicy::new(2);
        q.admit(1u32);
        q.remove(&1);
        assert!(!q.in_probation(&1));
        q.admit(2u32);
        q.admit(2);
        q.remove(&2);
        assert!(!q.contains(&2));
        assert_eq!(q.resident_count(), 0);
    }

    #[test]
    fn resident_admit_is_noop() {
        let mut q = TwoQPolicy::new(2);
        q.admit(1u32);
        q.admit(1);
        let out = q.admit(1);
        assert_eq!(out, AdmitOutcome::Resident { evicted: vec![] });
        assert_eq!(q.resident_count(), 1);
    }
}
