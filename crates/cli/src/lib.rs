//! The `pmv-cli` session: a small command language over the PMV system.
//!
//! ```text
//! load tpcr 0.01                         generate TPC-R data at scale s
//! tables                                 list relations
//! template <name> <SQL>                  define a template (see parser)
//! pmv <template> [f=N] [l=N] [policy=clock|2q|2qfull|lru|lru2]
//! query <template> <binding> …           run through the PMV pipeline
//! plain <template> <binding> …           run without the PMV
//! explain <template> <binding> …         show the plan
//! stats [<template>]                     PMV statistics
//! metrics [--format prometheus|json]     per-phase latency + counter export
//! profile [--json]                       contention / template-cost / stage profile
//! trace [--tail N]                       query lifecycle traces
//! advisor                                recommend PMVs from the trace
//! checkpoint                             write a durable snapshot (needs --data-dir)
//! help | quit
//! ```
//!
//! Bindings: one per `?` slot, in order. Equality slots take
//! `[v1,v2,…]`; interval slots take `[lo..hi,lo2..hi2,…]` (half-open).
//! Integer and 'string' values are supported.

pub mod profile;

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use pmv_cache::PolicyKind;
use pmv_core::{
    AdvisorConfig, CheckpointMeta, Durability, PartialViewDef, Pmv, PmvAdvisor, PmvConfig,
    PmvPipeline, QueryOutcome, SharedPmv, VerifyOptions, ViewSpec,
};
use pmv_query::{
    parse_template, CondForm, Condition, Database, Interval, QueryInstance, QueryTemplate,
};
use pmv_storage::Value;
use pmv_workload::tpcr::{self, TpcrConfig};

/// Typed CLI errors. Each class maps to a distinct process exit code so
/// scripts and CI can tell a usage mistake from an engine failure:
///
/// | code | class |
/// |------|-----------------------------------------|
/// | 0    | success (incl. `quit`)                  |
/// | 1    | I/O (unreadable script, read failure)   |
/// | 2    | usage: bad command/options/bindings     |
/// | 3    | storage-layer error                     |
/// | 4    | query-layer error (incl. budget/fault)  |
/// | 5    | PMV-layer (core) error                  |
/// | 6    | durability error (WAL/checkpoint/recovery) |
///
/// Errors are classified by *root cause*: a `CoreError` wrapping a
/// `QueryError` wrapping a `StorageError` exits with the storage code.
#[derive(Debug)]
pub enum CliError {
    /// Bad command, option, or binding syntax (exit code 2).
    Usage(String),
    /// Storage-layer failure (exit code 3).
    Storage(pmv_storage::StorageError),
    /// Query-layer failure (exit code 4).
    Query(pmv_query::QueryError),
    /// PMV-layer failure (exit code 5).
    Core(pmv_core::CoreError),
    /// Durability-layer failure: WAL append, checkpoint write, or
    /// recovery (exit code 6).
    Durability(String),
    /// `quit` / `exit` was entered (exit code 0).
    Quit,
}

impl CliError {
    /// The process exit code for this error class.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Quit => 0,
            CliError::Usage(_) => 2,
            CliError::Storage(_) => 3,
            CliError::Query(_) => 4,
            CliError::Core(_) => 5,
            CliError::Durability(_) => 6,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Storage(e) => write!(f, "storage error: {e}"),
            CliError::Query(e) => write!(f, "query error: {e}"),
            CliError::Core(e) => write!(f, "{e}"),
            CliError::Durability(msg) => write!(f, "durability error: {msg}"),
            CliError::Quit => write!(f, "bye"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<pmv_storage::StorageError> for CliError {
    fn from(e: pmv_storage::StorageError) -> Self {
        CliError::Storage(e)
    }
}

impl From<pmv_query::QueryError> for CliError {
    fn from(e: pmv_query::QueryError) -> Self {
        match e {
            pmv_query::QueryError::Storage(s) => CliError::Storage(s),
            other => CliError::Query(other),
        }
    }
}

impl From<pmv_core::CoreError> for CliError {
    fn from(e: pmv_core::CoreError) -> Self {
        match e {
            pmv_core::CoreError::Query(q) => CliError::from(q),
            pmv_core::CoreError::Durability(msg) => CliError::Durability(msg),
            other => CliError::Core(other),
        }
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Render a template-verifier report as the same SARIF 2.1.0 document
/// shape `pmv-analyze` emits. Verifier diagnostics have no source
/// location — they describe a view definition — so results carry no
/// `locations` array; the dimension/relation context folds into the
/// message text.
fn verifier_sarif(report: &pmv_core::VerifyReport) -> String {
    use pmv_analysis::sarif::{to_sarif, SarifResult, SarifRule};
    use pmv_core::verify::{DiagCode, Severity};

    let rules: Vec<SarifRule> = DiagCode::ALL
        .iter()
        .map(|c| SarifRule {
            id: c.code().to_string(),
            short: format!("{} (paper §{})", c.name(), c.paper_section()),
        })
        .collect();
    let results: Vec<SarifResult> = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut message = d.message.clone();
            if let Some(dim) = d.dimension {
                let _ = write!(message, " [dimension {dim}]");
            }
            if let Some(rel) = d.relation {
                let _ = write!(message, " [relation {rel}]");
            }
            SarifResult {
                rule_id: d.code.code().to_string(),
                level: match d.severity {
                    Severity::Deny => "error",
                    Severity::Warn => "warning",
                    Severity::Allow => "note",
                },
                message,
                file: None,
                line: None,
            }
        })
        .collect();
    to_sarif("pmv-verify", &rules, &results)
}

/// Parse a policy option value (`pmv … policy=…` and checkpointed view
/// specs share this spelling).
fn parse_policy(v: &str) -> Result<PolicyKind, CliError> {
    match v.to_ascii_lowercase().as_str() {
        "clock" => Ok(PolicyKind::Clock),
        "2q" => Ok(PolicyKind::TwoQ),
        "lru" => Ok(PolicyKind::Lru),
        "lru2" | "lru-2" => Ok(PolicyKind::LruK),
        "2qfull" | "2q-full" => Ok(PolicyKind::TwoQFull),
        other => Err(usage(format!("unknown policy '{other}'"))),
    }
}

/// The spelling stored in checkpoint view specs — must round-trip
/// through [`parse_policy`] (the display names `PolicyKind::name`
/// returns do not).
fn policy_spec_name(p: PolicyKind) -> &'static str {
    match p {
        PolicyKind::Clock => "clock",
        PolicyKind::TwoQ => "2q",
        PolicyKind::Lru => "lru",
        PolicyKind::LruK => "lru2",
        PolicyKind::TwoQFull => "2qfull",
    }
}

/// Which serving path `query` uses for PMV-backed templates
/// (`--snapshot-mode={locked,epoch}`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SnapshotMode {
    /// The paper's protocol: S/X locks through the single-threaded
    /// pipeline against the live database.
    #[default]
    Locked,
    /// The lock-free path: each query pins a copy-on-write database
    /// snapshot and serves wait-free via [`SharedPmv::run_pinned`].
    Epoch,
}

impl std::str::FromStr for SnapshotMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "locked" => Ok(SnapshotMode::Locked),
            "epoch" => Ok(SnapshotMode::Epoch),
            other => Err(format!(
                "bad snapshot mode '{other}': expected 'locked' or 'epoch'"
            )),
        }
    }
}

/// An interactive session: database + templates + PMVs + advisor, with
/// optional crash durability when opened on a data directory.
pub struct Session {
    db: Database,
    templates: HashMap<String, Arc<QueryTemplate>>,
    template_sql: HashMap<String, String>,
    pmvs: HashMap<String, Pmv>,
    shared: HashMap<String, SharedPmv>,
    view_specs: HashMap<String, ViewSpec>,
    durability: Option<Arc<Durability>>,
    pipeline: PmvPipeline,
    advisor: PmvAdvisor,
    mode: SnapshotMode,
    /// Per-template workload accounting, shared by every epoch-mode
    /// view (locked-mode `Pmv` has no accounting hooks).
    accounts: Arc<pmv_obs::AccountTable>,
    /// Anomaly flight recorder, present on durable sessions (dumps
    /// spool under `<data-dir>/flight/`).
    flight: Option<Arc<pmv_obs::FlightRecorder>>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Fresh session with an empty database, serving in locked mode.
    pub fn new() -> Self {
        Self::with_mode(SnapshotMode::default())
    }

    /// Fresh session serving PMV queries on the given path. Pure
    /// in-memory: no WAL, no checkpoints, zero durability overhead.
    pub fn with_mode(mode: SnapshotMode) -> Self {
        Session {
            db: Database::new(),
            templates: HashMap::new(),
            template_sql: HashMap::new(),
            pmvs: HashMap::new(),
            shared: HashMap::new(),
            view_specs: HashMap::new(),
            durability: None,
            pipeline: PmvPipeline::new(),
            advisor: PmvAdvisor::new(),
            mode,
            accounts: Arc::new(pmv_obs::AccountTable::new()),
            flight: None,
        }
    }

    /// Durable session on `data_dir` (`--data-dir`): recover the newest
    /// checkpoint plus the WAL tail, re-register every PMV recorded in
    /// the checkpoint's view specs, and keep the directory open for
    /// `checkpoint` commands. Returns the session and a one-line
    /// recovery summary for the banner.
    pub fn with_data_dir(
        mode: SnapshotMode,
        data_dir: &std::path::Path,
    ) -> Result<(Self, String), CliError> {
        let rec = Durability::open(data_dir).map_err(pmv_core::CoreError::from)?;
        let mut s = Self::with_mode(mode);
        s.db = rec.db;
        s.durability = Some(Arc::new(rec.durability));
        // Durable sessions get a flight recorder spooling under
        // `<data-dir>/flight/` (bounded; oldest dumps evicted first).
        // Diagnostics only: if the spool cannot open, the session still
        // serves. `PMV_FLIGHT_LATENCY_MS` arms the latency trigger;
        // breaker/quarantine/degradation triggers are always armed.
        if let Ok(spool) = pmv_wal::DiskSpool::open(&data_dir.join("flight"), 256 * 1024) {
            let fr = Arc::new(pmv_obs::FlightRecorder::new(Box::new(spool), 16));
            if let Some(ms) = std::env::var("PMV_FLIGHT_LATENCY_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                fr.set_latency_threshold(Some(std::time::Duration::from_millis(ms)));
            }
            s.flight = Some(fr);
        }
        for spec in &rec.meta.views {
            s.reattach_view(spec)?;
        }
        let info = s
            .durability
            .as_ref()
            .expect("just set")
            .recovery_info()
            .clone();
        let summary = if !info.checkpoint_found && info.replayed_records == 0 {
            format!(
                "data dir {}: initialized (no prior state)",
                data_dir.display()
            )
        } else {
            let mut text = format!(
                "recovered from {}: checkpoint lsn {}, {} WAL record(s) replayed \
                 ({} delta(s)), {} view(s) re-registered",
                data_dir.display(),
                info.checkpoint_lsn,
                info.replayed_records,
                info.replayed_deltas,
                rec.meta.views.len(),
            );
            if info.torn_tail {
                text.push_str(", torn WAL tail truncated");
            }
            if info.checkpoints_skipped > 0 {
                let _ = write!(
                    text,
                    ", {} corrupt checkpoint(s) skipped",
                    info.checkpoints_skipped
                );
            }
            text
        };
        Ok((s, summary))
    }

    /// Rebuild one PMV registration from its checkpointed spec: re-parse
    /// the template SQL against the recovered catalog, restore the
    /// discretizers from their divider points, and register a *cold*
    /// view (the store refills from observed results, per the paper's
    /// for-free maintenance — cached content is never checkpointed).
    fn reattach_view(&mut self, spec: &ViewSpec) -> Result<(), CliError> {
        let template = parse_template(&spec.name, &spec.sql, &self.db)?;
        self.template_sql
            .insert(spec.name.clone(), spec.sql.clone());
        self.templates.insert(spec.name.clone(), template.clone());
        let config = PmvConfig::new(spec.f, spec.l, parse_policy(&spec.policy)?);
        let discretizers = spec
            .dividers
            .iter()
            .map(|d| {
                d.as_ref()
                    .map(|vals| pmv_core::Discretizer::from_raw(vals.clone()))
            })
            .collect();
        let def = PartialViewDef::new(format!("pmv_{}", spec.name), template, discretizers)
            .map_err(CliError::from)?;
        if self.mode == SnapshotMode::Epoch {
            let v = if spec.shards > 0 {
                SharedPmv::with_shards(def, config, spec.shards)
            } else {
                SharedPmv::new(def, config)
            };
            self.instrument_shared(&spec.name, &v);
            self.shared.insert(spec.name.clone(), v);
        } else {
            self.pmvs.insert(spec.name.clone(), Pmv::new(def, config));
        }
        self.view_specs.insert(spec.name.clone(), spec.clone());
        Ok(())
    }

    /// Hook one epoch-mode view into the session's profiling layer:
    /// its per-template account (keyed by template name) and, on
    /// durable sessions, the shared flight recorder.
    fn instrument_shared(&self, name: &str, v: &SharedPmv) {
        v.attach_account(self.accounts.register(&Arc::from(name)));
        if let Some(fr) = &self.flight {
            v.attach_flight(Arc::clone(fr));
        }
    }

    /// Direct access for embedding (tests, examples).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The durability engine, when the session owns a data directory.
    pub fn durability(&self) -> Option<&Arc<Durability>> {
        self.durability.as_ref()
    }

    /// Execute one command line; returns the text to print.
    pub fn execute(&mut self, line: &str) -> Result<String, CliError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd.to_ascii_lowercase().as_str() {
            "help" => Ok(HELP.to_string()),
            "load" => self.cmd_load(rest),
            "tables" => self.cmd_tables(),
            "template" => self.cmd_template(rest),
            "pmv" => self.cmd_pmv(rest),
            "analyze" => self.cmd_analyze(rest),
            "query" => self.cmd_query(rest, Mode::Pmv),
            "plain" => self.cmd_query(rest, Mode::Plain),
            "explain" => self.cmd_query(rest, Mode::Explain),
            "stats" => self.cmd_stats(rest),
            "health" => self.cmd_health(),
            "metrics" => self.cmd_metrics(rest),
            "profile" => self.cmd_profile(rest),
            "trace" => self.cmd_trace(rest),
            "revalidate" => self.cmd_revalidate(rest),
            "checkpoint" => self.cmd_checkpoint(),
            "advisor" => self.cmd_advisor(),
            "quit" | "exit" => Err(CliError::Quit),
            other => Err(usage(format!("unknown command '{other}' (try: help)"))),
        }
    }

    fn cmd_load(&mut self, rest: &str) -> Result<String, CliError> {
        let mut parts = rest.split_whitespace();
        match parts.next() {
            Some("tpcr") => {
                let scale: f64 = parts
                    .next()
                    .unwrap_or("0.01")
                    .parse()
                    .map_err(|_| usage("bad scale factor"))?;
                tpcr::generate(
                    &mut self.db,
                    &TpcrConfig {
                        scale,
                        seed: 0xc0ffee,
                        pad: false,
                        date_supplier_pool: Some(2),
                    },
                )?;
                tpcr::standard_indexes(&mut self.db)?;
                let mut out = format!(
                    "loaded TPC-R at s={scale}: {} customers, {} orders, {} lineitems (indexed)",
                    self.db.len("customer")?,
                    self.db.len("orders")?,
                    self.db.len("lineitem")?,
                );
                // Bulk loads bypass the WAL (it carries commit deltas,
                // not DDL/loads), so a durable session checkpoints
                // immediately — the load is on disk before the prompt
                // returns.
                if self.durability.is_some() {
                    let note = self.cmd_checkpoint()?;
                    out.push('\n');
                    out.push_str(&note);
                }
                Ok(out)
            }
            _ => Err(usage("usage: load tpcr <scale>")),
        }
    }

    fn cmd_tables(&mut self) -> Result<String, CliError> {
        let mut out = String::new();
        for name in ["customer", "orders", "lineitem"] {
            if let Ok(n) = self.db.len(name) {
                let _ = writeln!(out, "{name}: {n} tuples");
            }
        }
        if out.is_empty() {
            out.push_str("(no known tables; use `load tpcr <scale>`)\n");
        }
        Ok(out)
    }

    fn cmd_template(&mut self, rest: &str) -> Result<String, CliError> {
        let (name, sql) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| usage("usage: template <name> <SQL>"))?;
        let t = parse_template(name, sql.trim(), &self.db)?;
        let summary = format!(
            "template '{}': {} relation(s), {} join(s), {} fixed pred(s), {} condition slot(s)",
            name,
            t.relations().len(),
            t.joins().len(),
            t.fixed_preds().len(),
            t.cond_count()
        );
        self.templates.insert(name.to_string(), t);
        // Kept so a later `pmv` + `checkpoint` can record the exact SQL
        // for re-parsing at recovery.
        self.template_sql
            .insert(name.to_string(), sql.trim().to_string());
        Ok(summary)
    }

    fn cmd_pmv(&mut self, rest: &str) -> Result<String, CliError> {
        let mut parts = rest.split_whitespace();
        let name = parts.next().ok_or_else(|| {
            usage("usage: pmv <template> [f=N] [l=N] [policy=...] [maint=delta-join|indexed|heavy-light] [heavy=N]")
        })?;
        let template = self
            .templates
            .get(name)
            .ok_or_else(|| usage(format!("unknown template '{name}'")))?
            .clone();
        let mut config = PmvConfig::default();
        for opt in parts {
            let (k, v) = opt
                .split_once('=')
                .ok_or_else(|| usage(format!("bad option '{opt}'")))?;
            match k {
                "f" => config.f = v.parse().map_err(|_| usage("bad f"))?,
                "l" => config.l = v.parse().map_err(|_| usage("bad l"))?,
                "policy" => config.policy = parse_policy(v)?,
                "maint" => {
                    config.maint_strategy = pmv_core::MaintStrategy::parse(v).ok_or_else(|| {
                        usage("bad maint (want delta-join, indexed, or heavy-light)")
                    })?;
                }
                "heavy" => config.heavy_threshold = v.parse().map_err(|_| usage("bad heavy"))?,
                other => return Err(usage(format!("unknown option '{other}'"))),
            }
        }
        // Interval-form conditions get a discretizer learned later (via
        // advisor) or a simple default grid here.
        let discretizers: Vec<Option<pmv_core::Discretizer>> = template
            .cond_templates()
            .iter()
            .map(|ct| match ct.form {
                CondForm::Equality => None,
                CondForm::Interval => Some(pmv_core::Discretizer::int_grid(0, 100, 64)),
            })
            .collect();
        let dividers: Vec<Option<Vec<Value>>> = discretizers
            .iter()
            .map(|d| d.as_ref().map(|x| x.dividers().to_vec()))
            .collect();
        let def = PartialViewDef::new(format!("pmv_{name}"), template, discretizers)?;
        let summary = format!(
            "PMV for '{}': F={}, L={}, policy={}, maint={}{}",
            name,
            config.f,
            config.l,
            config.policy.name(),
            config.maint_strategy.as_str(),
            if self.mode == SnapshotMode::Epoch {
                " (epoch serving)"
            } else {
                ""
            }
        );
        let mut spec = ViewSpec {
            name: name.to_string(),
            sql: self.template_sql.get(name).cloned().unwrap_or_default(),
            f: config.f,
            l: config.l,
            policy: policy_spec_name(config.policy).to_string(),
            shards: 0,
            dividers,
        };
        if self.mode == SnapshotMode::Epoch {
            let v = SharedPmv::new(def, config);
            spec.shards = v.shard_count();
            self.instrument_shared(name, &v);
            self.shared.insert(name.to_string(), v);
        } else {
            self.pmvs.insert(name.to_string(), Pmv::new(def, config));
        }
        self.view_specs.insert(name.to_string(), spec);
        Ok(summary)
    }

    /// Run the static verifier over a template with the same default
    /// discretizer choice `pmv` would make, without registering
    /// anything. `json` switches to the machine-readable rendering;
    /// `sarif` emits the same SARIF 2.1.0 document shape the
    /// `pmv-analyze` binary produces, so PMV001–PMV006 feed the same
    /// code-scanning surfaces as the source rules.
    fn cmd_analyze(&mut self, rest: &str) -> Result<String, CliError> {
        let mut parts = rest.split_whitespace();
        let name = parts.next().ok_or_else(|| {
            usage("usage: analyze <template> [f=N] [l=N] [budget=BYTES] [json|sarif]")
        })?;
        let template = self
            .templates
            .get(name)
            .ok_or_else(|| usage(format!("unknown template '{name}'")))?
            .clone();
        let mut config = PmvConfig::default();
        let mut opts = VerifyOptions::default();
        let mut json = false;
        let mut sarif = false;
        for opt in parts {
            if opt == "json" {
                json = true;
                continue;
            }
            if opt == "sarif" {
                sarif = true;
                continue;
            }
            let (k, v) = opt
                .split_once('=')
                .ok_or_else(|| usage(format!("bad option '{opt}'")))?;
            match k {
                "f" => config.f = v.parse().map_err(|_| usage("bad f"))?,
                "l" => config.l = v.parse().map_err(|_| usage("bad l"))?,
                "budget" => opts.byte_budget = Some(v.parse().map_err(|_| usage("bad budget"))?),
                other => return Err(usage(format!("unknown option '{other}'"))),
            }
        }
        let discretizers: Vec<_> = template
            .cond_templates()
            .iter()
            .map(|ct| match ct.form {
                CondForm::Equality => None,
                CondForm::Interval => Some(pmv_core::Discretizer::int_grid(0, 100, 64)),
            })
            .collect();
        let report = pmv_core::verify_parts(&template, &discretizers, &config, &opts);
        if sarif {
            return Ok(verifier_sarif(&report));
        }
        if json {
            return Ok(report.to_json());
        }
        let verdict = if report.denied() {
            "DENIED (registration would be rejected)"
        } else if report.diagnostics.is_empty() {
            "clean"
        } else {
            "accepted with warnings"
        };
        Ok(format!("analyze '{name}': {verdict}\n{report}"))
    }

    fn bind(&self, template: &Arc<QueryTemplate>, args: &str) -> Result<QueryInstance, CliError> {
        let bindings = parse_bindings(args).map_err(usage)?;
        if bindings.len() != template.cond_count() {
            return Err(usage(format!(
                "template has {} condition slot(s), got {} binding(s)",
                template.cond_count(),
                bindings.len()
            )));
        }
        let conds: Vec<Condition> = bindings
            .into_iter()
            .zip(template.cond_templates())
            .map(|(b, ct)| match (b, ct.form) {
                (Binding::Values(vs), CondForm::Equality) => Ok(Condition::Equality(vs)),
                (Binding::Ranges(rs), CondForm::Interval) => Ok(Condition::Intervals(rs)),
                (Binding::Values(_), CondForm::Interval) => {
                    Err(usage("interval slot needs [lo..hi] ranges"))
                }
                (Binding::Ranges(_), CondForm::Equality) => {
                    Err(usage("equality slot needs [v1,v2] values"))
                }
            })
            .collect::<Result<_, _>>()?;
        Ok(template.bind(conds)?)
    }

    fn cmd_query(&mut self, rest: &str, mode: Mode) -> Result<String, CliError> {
        let (name, args) = rest
            .split_once(char::is_whitespace)
            .map(|(n, a)| (n, a.trim()))
            .unwrap_or((rest, ""));
        let template = self
            .templates
            .get(name)
            .ok_or_else(|| usage(format!("unknown template '{name}'")))?
            .clone();
        let q = self.bind(&template, args)?;
        self.advisor.observe(&q);
        match mode {
            Mode::Explain => Ok(pmv_query::explain(&self.db, &q)),
            Mode::Plain => {
                let (rows, _, elapsed) = self.pipeline.run_plain(&self.db, &q)?;
                Ok(format!("{} row(s) in {elapsed:?} (no PMV)", rows.len()))
            }
            Mode::Pmv if self.mode == SnapshotMode::Epoch => {
                // Publish an incremental snapshot (amortized O(relations
                // touched since the last one) — untouched entries are
                // reused) and serve with no database lock.
                let snap = self.db.publish_snapshot();
                let shared = self
                    .shared
                    .get(name)
                    .ok_or_else(|| usage(format!("no PMV for '{name}' (use: pmv {name})")))?;
                let out = shared.run_pinned(&snap, &q)?;
                Ok(format_outcome(&out))
            }
            Mode::Pmv => {
                let pmv = self
                    .pmvs
                    .get_mut(name)
                    .ok_or_else(|| usage(format!("no PMV for '{name}' (use: pmv {name})")))?;
                let out = self.pipeline.run(&self.db, pmv, &q)?;
                Ok(format_outcome(&out))
            }
        }
    }

    fn cmd_health(&mut self) -> Result<String, CliError> {
        let mut out = String::new();
        for (name, pmv) in &self.pmvs {
            let s = pmv.stats();
            let b = pmv.breaker();
            let _ = writeln!(
                out,
                "{name}: {} (error rate {:.3}, trips {}, degraded queries {}, \
                 quarantine events {}, last verified {}ms ago{})",
                pmv.health(),
                b.error_rate(),
                b.trip_count(),
                s.degraded_queries,
                s.quarantine_events,
                pmv.last_verified_age().as_millis(),
                if pmv.store().is_quarantined() {
                    ", store DRAINED"
                } else {
                    ""
                },
            );
        }
        for (name, v) in &self.shared {
            let s = v.stats();
            let b = v.breaker();
            let _ = writeln!(
                out,
                "{name}: {} (error rate {:.3}, trips {}, degraded queries {}, \
                 quarantine events {}, last verified {}ms ago, {} shard(s) quarantined)",
                v.health(),
                b.error_rate(),
                b.trip_count(),
                s.degraded_queries,
                s.quarantine_events,
                v.staleness().as_millis(),
                v.quarantined_shards(),
            );
        }
        if out.is_empty() {
            out.push_str("(no PMVs yet)\n");
        }
        if let Some(dur) = &self.durability {
            let info = dur.recovery_info();
            let _ = writeln!(
                out,
                "durability: dir {}, durable lsn {}, {} WAL segment(s), {} active byte(s)",
                dur.dir().display(),
                dur.durable_lsn(),
                dur.segment_count(),
                dur.active_segment_bytes(),
            );
            let _ = writeln!(
                out,
                "recovery: checkpoint {} (lsn {}), {} record(s) / {} delta(s) replayed, \
                 torn tail: {}, corrupt checkpoints skipped: {}",
                if info.checkpoint_found {
                    "loaded"
                } else {
                    "none"
                },
                info.checkpoint_lsn,
                info.replayed_records,
                info.replayed_deltas,
                if info.torn_tail { "truncated" } else { "no" },
                info.checkpoints_skipped,
            );
        }
        Ok(out)
    }

    /// The exportable telemetry for every PMV, sorted by template name
    /// so script output is deterministic.
    fn view_metrics(&self) -> Vec<pmv_obs::ViewMetrics> {
        let mut names: Vec<&String> = self.pmvs.keys().collect();
        names.sort();
        let mut views: Vec<pmv_obs::ViewMetrics> = names
            .into_iter()
            .map(|name| {
                let pmv = &self.pmvs[name];
                let s = pmv.stats();
                pmv_obs::ViewMetrics {
                    name: pmv.def().name().to_string(),
                    health: pmv.health().as_str().to_string(),
                    error_rate: pmv.breaker().error_rate(),
                    trips: pmv.breaker().trip_count(),
                    last_verified_age_ms: pmv.last_verified_age().as_millis() as u64,
                    counters: s.as_pairs(),
                    gauges: vec![
                        ("hit_probability", s.hit_probability()),
                        ("serving_probability", s.serving_probability()),
                        ("degraded_query_rate", s.degraded_query_rate()),
                        ("store_bytes", pmv.store().byte_size() as f64),
                        ("occupancy", pmv.store().occupancy()),
                    ],
                    phases: pmv.obs().snapshots(),
                }
            })
            .collect();
        let mut names: Vec<&String> = self.shared.keys().collect();
        names.sort();
        views.extend(names.into_iter().map(|name| {
            let v = &self.shared[name];
            let s = v.stats();
            // Fold the per-template account into the counter export
            // (its bytes-resident gauge is refreshed here — sizing the
            // store is export-time work, not serving-path work).
            let mut counters = s.as_pairs();
            if let Some(acct) = self.accounts.get(name) {
                acct.set_bytes_resident(v.byte_size() as u64);
                counters.extend(acct.snapshot().as_pairs());
            }
            pmv_obs::ViewMetrics {
                name: v.def().name().to_string(),
                health: v.health().as_str().to_string(),
                error_rate: v.breaker().error_rate(),
                trips: v.breaker().trip_count(),
                last_verified_age_ms: v.staleness().as_millis() as u64,
                counters,
                gauges: vec![
                    ("hit_probability", s.hit_probability()),
                    ("serving_probability", s.serving_probability()),
                    ("degraded_query_rate", s.degraded_query_rate()),
                    ("store_bytes", v.byte_size() as f64),
                ],
                phases: v.obs().snapshots(),
            }
        }));
        // The durable path exports as a `__db` pseudo-view: WAL /
        // checkpoint / recovery phase timings from the durability
        // engine's registry plus snapshot-publish efficacy gauges.
        let ss = self.db.snap_stats();
        if self.durability.is_some() || ss.publishes > 0 {
            views.push(pmv_obs::ViewMetrics {
                name: "__db".to_string(),
                health: "healthy".to_string(),
                error_rate: 0.0,
                trips: 0,
                last_verified_age_ms: 0,
                counters: vec![
                    ("snap_publishes", ss.publishes),
                    ("snap_entries_reused", ss.reused),
                    ("snap_entries_recaptured", ss.recaptured),
                ],
                gauges: vec![("snap_reuse_ratio", ss.reuse_ratio())],
                phases: self
                    .durability
                    .as_ref()
                    .map(|d| d.obs().snapshots())
                    .unwrap_or_default(),
            });
        }
        views
    }

    /// `metrics [--format prometheus|json]` — default is a human
    /// summary; the other formats are scrape/pipe-ready.
    fn cmd_metrics(&mut self, rest: &str) -> Result<String, CliError> {
        let mut format = "human";
        let mut parts = rest.split_whitespace();
        while let Some(opt) = parts.next() {
            let value = match opt.strip_prefix("--format") {
                Some("") => parts
                    .next()
                    .ok_or_else(|| usage("usage: metrics [--format prometheus|json]"))?,
                Some(eq) => eq
                    .strip_prefix('=')
                    .ok_or_else(|| usage(format!("bad option '{opt}'")))?,
                None => opt,
            };
            match value {
                "prometheus" | "json" | "human" => format = value,
                other => return Err(usage(format!("unknown metrics format '{other}'"))),
            }
        }
        let views = self.view_metrics();
        if views.is_empty() {
            return Ok("(no PMVs yet)\n".to_string());
        }
        match format {
            "prometheus" => Ok(pmv_obs::to_prometheus(&views)),
            "json" => Ok(pmv_obs::to_json(&views)),
            _ => {
                let mut out = String::new();
                for v in &views {
                    let queries = v
                        .counters
                        .iter()
                        .find(|(n, _)| *n == "queries")
                        .map_or(0, |&(_, c)| c);
                    let _ = writeln!(
                        out,
                        "{} [{}] queries={queries} error_rate={:.3}",
                        v.name, v.health, v.error_rate
                    );
                    for (phase, snap) in &v.phases {
                        if snap.count() == 0 {
                            continue;
                        }
                        let _ = writeln!(
                            out,
                            "  {phase:<12} n={:<6} p50={:?} p90={:?} p99={:?} max={:?}",
                            snap.count(),
                            snap.quantile(0.5),
                            snap.quantile(0.9),
                            snap.quantile(0.99),
                            snap.max(),
                        );
                    }
                }
                Ok(out)
            }
        }
    }

    /// `profile [--json]` — a live profile report for this session:
    /// contention sites ranked by total lock wait, templates by
    /// serving+maintenance cost, pipeline stages by share of recorded
    /// time. The offline twin (`pmv-profile`) reads the same report
    /// shape back from flight dumps and bench JSON.
    fn cmd_profile(&mut self, rest: &str) -> Result<String, CliError> {
        let mut json = false;
        for opt in rest.split_whitespace() {
            match opt {
                "--json" | "json" => json = true,
                other => return Err(usage(format!("usage: profile [--json] (got '{other}')"))),
            }
        }
        let report = self.live_profile();
        Ok(if json {
            report.to_json()
        } else {
            report.render_human()
        })
    }

    /// Assemble the live [`pmv_obs::ProfileReport`]: merge every
    /// registry's phase histograms (per-view serving registries plus
    /// the durability engine's WAL registry), split them into
    /// contention vs pipeline, and rank the account table.
    fn live_profile(&self) -> pmv_obs::ProfileReport {
        let mut merged: Vec<(&'static str, pmv_obs::HistSnapshot)> = Vec::new();
        let mut registries: Vec<Vec<(&'static str, pmv_obs::HistSnapshot)>> = Vec::new();
        registries.extend(self.pmvs.values().map(|p| p.obs().snapshots()));
        registries.extend(self.shared.values().map(|v| v.obs().snapshots()));
        if let Some(dur) = &self.durability {
            registries.push(dur.obs().snapshots());
        }
        for phases in registries {
            for (name, snap) in phases {
                match merged.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, acc)) => acc.merge(&snap),
                    None => merged.push((name, snap)),
                }
            }
        }
        let (contention, pipeline) = pmv_obs::profile::split_phases(&merged);

        for (name, v) in &self.shared {
            if let Some(acct) = self.accounts.get(name) {
                acct.set_bytes_resident(v.byte_size() as u64);
            }
        }
        let templates = self
            .accounts
            .snapshot_all()
            .iter()
            .filter(|(_, s)| s.queries > 0 || s.maint_join_ns > 0)
            .map(|(name, s)| pmv_obs::TemplateCost::from_account(name, s))
            .collect();

        let mut notes = Vec::new();
        if let Some(fr) = &self.flight {
            notes.push(format!(
                "{} flight dump(s) written this session",
                fr.dumps_written()
            ));
        }
        let ss = self.db.snap_stats();
        if ss.publishes > 0 {
            notes.push(format!(
                "snapshot publishes: {} ({} entry reuse(s), {} recapture(s), reuse ratio {:.2})",
                ss.publishes,
                ss.reused,
                ss.recaptured,
                ss.reuse_ratio()
            ));
        }

        let mut report = pmv_obs::ProfileReport {
            source: "live session".to_string(),
            contention,
            templates,
            pipeline,
            notes,
        };
        report.rank();
        report
    }

    /// `trace [--tail N]` — the last N lifecycle traces per PMV
    /// (default 10), oldest first.
    fn cmd_trace(&mut self, rest: &str) -> Result<String, CliError> {
        let mut n = 10usize;
        let mut parts = rest.split_whitespace();
        while let Some(opt) = parts.next() {
            let value = match opt.strip_prefix("--tail") {
                Some("") => parts
                    .next()
                    .ok_or_else(|| usage("usage: trace [--tail N]"))?,
                Some(eq) => eq
                    .strip_prefix('=')
                    .ok_or_else(|| usage(format!("bad option '{opt}'")))?,
                None => opt,
            };
            n = value.parse().map_err(|_| usage("bad tail count"))?;
        }
        if self.pmvs.is_empty() && self.shared.is_empty() {
            return Ok("(no PMVs yet)\n".to_string());
        }
        let mut names: Vec<&String> = self.pmvs.keys().collect();
        names.sort();
        let mut out = String::new();
        for name in names {
            for trace in self.pmvs[name].obs().trace().tail(n) {
                // Display already ends each trace with a newline.
                let _ = write!(out, "{trace}");
            }
        }
        let mut names: Vec<&String> = self.shared.keys().collect();
        names.sort();
        for name in names {
            for trace in self.shared[name].obs().trace().tail(n) {
                let _ = write!(out, "{trace}");
            }
        }
        if out.is_empty() {
            out.push_str("(no traces recorded yet; run some queries)\n");
        }
        Ok(out)
    }

    fn cmd_revalidate(&mut self, rest: &str) -> Result<String, CliError> {
        let mut out = String::new();
        let mut names: Vec<String> = self.pmvs.keys().cloned().collect();
        names.sort();
        for name in names {
            if !rest.is_empty() && rest != name {
                continue;
            }
            let pmv = self.pmvs.get_mut(&name).expect("key from keys()");
            let removed = pmv.revalidate(&self.db)?;
            let _ = writeln!(
                out,
                "{name}: {removed} stale tuple(s) removed, now {}",
                pmv.health()
            );
        }
        let mut names: Vec<String> = self.shared.keys().cloned().collect();
        names.sort();
        for name in names {
            if !rest.is_empty() && rest != name {
                continue;
            }
            let v = &self.shared[&name];
            let removed = v.revalidate(&self.db)?;
            let _ = writeln!(
                out,
                "{name}: {removed} stale tuple(s) removed, now {}",
                v.health()
            );
        }
        if out.is_empty() {
            out.push_str("(no matching PMV)\n");
        }
        Ok(out)
    }

    /// `checkpoint` — serialize the current database (catalog, heaps
    /// with exact row ids, indexes, view specs) to the data directory
    /// via write-temp + atomic-rename, then prune WAL segments wholly
    /// behind the checkpoint LSN. Requires `--data-dir`.
    fn cmd_checkpoint(&mut self) -> Result<String, CliError> {
        let dur = self.durability.clone().ok_or_else(|| {
            CliError::Durability(
                "no data directory (start with --data-dir to enable checkpoints)".to_string(),
            )
        })?;
        let snap = self.db.snapshot();
        let mut views: Vec<ViewSpec> = self.view_specs.values().cloned().collect();
        views.sort_by(|a, b| a.name.cmp(&b.name));
        let meta = CheckpointMeta {
            lsn: dur.durable_lsn(),
            epoch: snap.epoch(),
            analyzed: {
                use pmv_query::DataView;
                snap.stats_view().is_some()
            },
            views,
        };
        let path = dur
            .checkpoint(&snap, &meta)
            .map_err(pmv_core::CoreError::from)?;
        Ok(format!(
            "checkpoint written: {} (lsn {}, {} view spec(s), {} WAL segment(s) live)",
            path.display(),
            meta.lsn,
            meta.views.len(),
            dur.segment_count(),
        ))
    }

    fn cmd_stats(&mut self, rest: &str) -> Result<String, CliError> {
        let mut out = String::new();
        for (name, pmv) in &self.pmvs {
            if !rest.is_empty() && rest != name {
                continue;
            }
            let s = pmv.stats();
            let _ = writeln!(
                out,
                "{name}: {} queries, hit {:.1}%, {} tuples served early, \
                 store {} entries / {} tuples / {} bytes, policy {}",
                s.queries,
                s.hit_probability() * 100.0,
                s.partial_tuples_served,
                pmv.store().entry_count(),
                pmv.store().tuple_count(),
                pmv.store().byte_size(),
                pmv.store().policy_name(),
            );
            out.push_str(&maintenance_line(pmv.config(), s));
        }
        for (name, v) in &self.shared {
            if !rest.is_empty() && rest != name {
                continue;
            }
            let s = v.stats();
            let _ = writeln!(
                out,
                "{name}: {} queries, hit {:.1}%, {} tuples served early, \
                 store {} entries / {} tuples / {} bytes, policy {}, {} shard(s)",
                s.queries,
                s.hit_probability() * 100.0,
                s.partial_tuples_served,
                v.entry_count(),
                v.tuple_count(),
                v.byte_size(),
                v.config().policy.name(),
                v.shard_count(),
            );
            out.push_str(&maintenance_line(v.config(), &s));
        }
        if out.is_empty() {
            out.push_str("(no PMVs yet)\n");
        }
        Ok(out)
    }

    fn cmd_advisor(&mut self) -> Result<String, CliError> {
        let recs = self.advisor.recommend(&AdvisorConfig {
            min_queries: 3,
            ..Default::default()
        })?;
        if recs.is_empty() {
            return Ok("no recommendations yet (run more queries)".to_string());
        }
        let mut out = String::new();
        for r in recs {
            let _ = writeln!(
                out,
                "recommend PMV '{}' for template '{}': F={}, L={}, observed {} queries (mean h {:.1})",
                r.def.name(),
                r.def.template().name(),
                r.config.f,
                r.config.l,
                r.queries,
                r.mean_h,
            );
        }
        Ok(out)
    }
}

/// One indented line of maintenance/upquery telemetry for `stats`:
/// which [`pmv_core::MaintStrategy`] the view runs and what the
/// delta-key-index / heavy-light / upquery paths have done so far.
fn maintenance_line(config: &PmvConfig, s: &pmv_core::PmvStats) -> String {
    format!(
        "  maint {}: {} index removals, {} heavy / {} light deltas \
         ({} joins coalesced, {} join rows), {} upqueries ({} rows refilled)\n",
        config.maint_strategy.as_str(),
        s.maint_index_removals,
        s.maint_heavy_deltas,
        s.maint_light_deltas,
        s.maint_coalesced_joins,
        s.maint_join_rows,
        s.upqueries,
        s.upquery_rows,
    )
}

enum Mode {
    Pmv,
    Plain,
    Explain,
}

/// Human rendering of a PMV query outcome, shared by both serving paths.
fn format_outcome(out: &QueryOutcome) -> String {
    let mut text = format!(
        "{} row(s) immediately in {:?}, {} after execution ({:?}); hit={}",
        out.partial.len(),
        out.timings.o2,
        out.remaining.len(),
        out.timings.exec,
        out.bcp_hit
    );
    if let Some(d) = &out.degraded {
        let _ = write!(
            text,
            "\n  DEGRADED ({}): partial results only, staleness ≤ {:?}",
            d.reason, d.staleness
        );
    }
    for t in out.partial.iter().take(5) {
        let _ = write!(text, "\n  early: {t}");
    }
    text
}

/// A parsed binding: values for an equality slot, ranges for an interval
/// slot.
#[derive(Debug, PartialEq)]
enum Binding {
    Values(Vec<Value>),
    Ranges(Vec<Interval>),
}

/// Parse `[1,2] ['a'] [10..20,30..40]` into bindings.
fn parse_bindings(args: &str) -> Result<Vec<Binding>, String> {
    let mut out = Vec::new();
    let mut rest = args.trim();
    while !rest.is_empty() {
        if !rest.starts_with('[') {
            return Err(format!("expected '[' at '{rest}'"));
        }
        let end = rest.find(']').ok_or("missing ']'")?;
        let inner = &rest[1..end];
        out.push(parse_binding(inner)?);
        rest = rest[end + 1..].trim_start();
    }
    Ok(out)
}

fn parse_binding(inner: &str) -> Result<Binding, String> {
    let items: Vec<&str> = inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if items.is_empty() {
        return Err("empty binding".to_string());
    }
    if items[0].contains("..") {
        let mut ranges = Vec::with_capacity(items.len());
        for item in items {
            let (lo, hi) = item.split_once("..").ok_or(format!("bad range '{item}'"))?;
            let lo = parse_value(lo.trim())?;
            let hi = parse_value(hi.trim())?;
            ranges.push(Interval {
                lo: std::ops::Bound::Included(lo),
                hi: std::ops::Bound::Excluded(hi),
            });
        }
        Ok(Binding::Ranges(ranges))
    } else {
        items
            .into_iter()
            .map(parse_value)
            .collect::<Result<_, _>>()
            .map(Binding::Values)
    }
}

fn parse_value(s: &str) -> Result<Value, String> {
    if let Some(stripped) = s.strip_prefix('\'').and_then(|x| x.strip_suffix('\'')) {
        return Ok(Value::str(stripped));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = s.parse::<f64>() {
        return Ok(Value::Double(f));
    }
    Err(format!("cannot parse value '{s}'"))
}

const HELP: &str = "\
commands:
  load tpcr <scale>                 generate TPC-R data
  tables                            list relations
  template <name> <SQL>             define a template (slots: col = ? | col BETWEEN ?)
  pmv <template> [f=N] [l=N] [policy=clock|2q|2qfull|lru|lru2]
  analyze <template> [f=N] [l=N] [budget=BYTES] [json|sarif]   static verifier (PMV001-PMV006)
  query <template> [v,..] [lo..hi,..]   run through the PMV
  plain <template> <bindings>       run without the PMV
  explain <template> <bindings>     show the plan
  stats [<template>]                PMV statistics
  health                            per-PMV circuit-breaker state
  metrics [--format prometheus|json]   per-phase latency + counter export
  profile [--json]                  contention / template-cost / stage profile
  trace [--tail N]                  last N query lifecycle traces per PMV
  revalidate [<template>]           re-derive cached tuples, lift quarantine
  checkpoint                        write a snapshot checkpoint (needs --data-dir)
  advisor                           recommend PMVs from the observed trace
  help | quit";

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_session() -> Session {
        let mut s = Session::new();
        s.execute("load tpcr 0.001").unwrap();
        s.execute(
            "template t1 SELECT * FROM orders, lineitem \
             WHERE orders.orderkey = lineitem.orderkey \
             AND orders.orderdate = ? AND lineitem.suppkey = ?",
        )
        .unwrap();
        s
    }

    #[test]
    fn full_session_flow() {
        let mut s = loaded_session();
        let out = s.execute("pmv t1 f=3 l=1000 policy=2q").unwrap();
        assert!(out.contains("F=3"));
        assert!(out.contains("2Q"));
        // Query twice: second should hit (2Q needs two admissions, so
        // warm three times).
        for _ in 0..3 {
            s.execute("query t1 [100] [1]").unwrap();
        }
        let out = s.execute("query t1 [100] [1]").unwrap();
        assert!(out.contains("hit="), "{out}");
        let stats = s.execute("stats").unwrap();
        assert!(stats.contains("t1:"), "{stats}");
        let plain = s.execute("plain t1 [100] [1]").unwrap();
        assert!(plain.contains("no PMV"));
    }

    #[test]
    fn epoch_mode_session_flow() {
        let mut s = Session::with_mode(SnapshotMode::Epoch);
        s.execute("load tpcr 0.001").unwrap();
        s.execute(
            "template t1 SELECT * FROM orders, lineitem \
             WHERE orders.orderkey = lineitem.orderkey \
             AND orders.orderdate = ? AND lineitem.suppkey = ?",
        )
        .unwrap();
        let out = s.execute("pmv t1 f=3 l=1000").unwrap();
        assert!(out.contains("epoch serving"), "{out}");
        // Sample a (orderdate, suppkey) combo that actually has rows, so
        // the hit serves a non-empty partial.
        let (date, supp) = {
            let db = s.database_mut();
            let oh = db.relation("orders").unwrap();
            let orders = oh.read();
            let (_, o) = orders.iter().next().unwrap();
            let okey = o.get(0).as_int().unwrap();
            let date = o.get(2).as_int().unwrap();
            let lh = db.relation("lineitem").unwrap();
            let lines = lh.read();
            let supp = lines
                .iter()
                .find(|(_, l)| l.get(0).as_int() == Some(okey))
                .unwrap()
                .1
                .get(1)
                .as_int()
                .unwrap();
            (date, supp)
        };
        // Early queries fill through the pinned snapshot (first
        // admissions are probationary), later ones hit.
        for _ in 0..3 {
            s.execute(&format!("query t1 [{date}] [{supp}]")).unwrap();
        }
        let out = s.execute(&format!("query t1 [{date}] [{supp}]")).unwrap();
        assert!(out.contains("hit=true"), "{out}");
        assert!(!out.starts_with("0 row(s)"), "hit must serve rows: {out}");
        let stats = s.execute("stats").unwrap();
        assert!(stats.contains("shard(s)"), "{stats}");
        let health = s.execute("health").unwrap();
        assert!(health.contains("t1: healthy"), "{health}");
        let metrics = s.execute("metrics").unwrap();
        assert!(metrics.contains("pmv_t1 [healthy] queries=4"), "{metrics}");
        let reval = s.execute("revalidate").unwrap();
        assert!(reval.contains("t1: 0 stale tuple(s) removed"), "{reval}");
        let trace = s.execute("trace").unwrap();
        assert!(trace.contains("query 'pmv_t1'"), "{trace}");
    }

    #[test]
    fn profile_command_reports_live_session() {
        let mut s = Session::with_mode(SnapshotMode::Epoch);
        s.execute("load tpcr 0.001").unwrap();
        s.execute(
            "template t1 SELECT * FROM orders, lineitem \
             WHERE orders.orderkey = lineitem.orderkey \
             AND orders.orderdate = ? AND lineitem.suppkey = ?",
        )
        .unwrap();
        s.execute("pmv t1 f=3 l=1000").unwrap();
        for _ in 0..3 {
            s.execute("query t1 [100] [1]").unwrap();
        }
        let out = s.execute("profile").unwrap();
        assert!(out.contains("pmv-profile report — live session"), "{out}");
        // The account table saw every query through the epoch path.
        assert!(out.contains("t1"), "{out}");
        assert!(out.contains("pipeline stage breakdown"), "{out}");
        assert!(out.contains("snapshot publishes: 3"), "{out}");
        let json = s.execute("profile --json").unwrap();
        assert!(json.starts_with("{\"source\":\"live session\""), "{json}");
        assert!(json.contains("\"template\":\"t1\""), "{json}");
        assert!(json.contains("\"queries\":3"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(matches!(
            s.execute("profile bogus"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn metrics_export_carries_accounts_and_db_pseudo_view() {
        let mut s = Session::with_mode(SnapshotMode::Epoch);
        s.execute("load tpcr 0.001").unwrap();
        s.execute(
            "template t1 SELECT * FROM orders, lineitem \
             WHERE orders.orderkey = lineitem.orderkey \
             AND orders.orderdate = ? AND lineitem.suppkey = ?",
        )
        .unwrap();
        s.execute("pmv t1").unwrap();
        s.execute("query t1 [100] [1]").unwrap();
        let prom = s.execute("metrics --format prometheus").unwrap();
        assert!(
            prom.contains("pmv_acct_queries_total{view=\"pmv_t1\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("pmv_snap_publishes_total{view=\"__db\"}"),
            "{prom}"
        );
        assert!(
            prom.contains("pmv_snap_reuse_ratio{view=\"__db\"}"),
            "{prom}"
        );
        let json = s.execute("metrics --format json").unwrap();
        assert!(json.contains("\"acct_o2_hit\""), "{json}");
        assert!(json.contains("\"name\":\"__db\""), "{json}");
    }

    #[test]
    fn explain_prints_plan() {
        let mut s = loaded_session();
        let out = s.execute("explain t1 [100] [1]").unwrap();
        assert!(out.contains("drive: orders"), "{out}");
        assert!(out.contains("join: lineitem"), "{out}");
    }

    #[test]
    fn analyze_reports_verdicts() {
        let mut s = loaded_session();
        // All-equality template with default config: clean.
        let out = s.execute("analyze t1").unwrap();
        assert!(out.contains("clean"), "{out}");
        // A one-byte budget cannot hold L·F·At: PMV004 denial.
        let out = s.execute("analyze t1 budget=1").unwrap();
        assert!(out.contains("DENIED"), "{out}");
        assert!(out.contains("PMV004"), "{out}");
        // JSON mode is machine-readable and carries the same code.
        let out = s.execute("analyze t1 budget=1 json").unwrap();
        assert!(out.starts_with("{\"denied\":true"), "{out}");
        assert!(out.contains("\"code\":\"PMV004\""), "{out}");
        // Unknown template is a usage error.
        assert!(matches!(s.execute("analyze nope"), Err(CliError::Usage(_))));
    }

    #[test]
    fn analyze_sarif_mode() {
        let mut s = loaded_session();
        let out = s.execute("analyze t1 budget=1 sarif").unwrap();
        assert!(out.contains("\"version\":\"2.1.0\""), "{out}");
        assert!(out.contains("\"name\":\"pmv-verify\""), "{out}");
        assert!(out.contains("\"ruleId\":\"PMV004\""), "{out}");
        assert!(out.contains("\"level\":\"error\""), "{out}");
        // Verifier results describe a definition, not a file: no
        // locations array may appear.
        assert!(!out.contains("physicalLocation"), "{out}");
        // Clean verdict still renders a document, with zero results.
        let out = s.execute("analyze t1 sarif").unwrap();
        assert!(out.contains("\"results\":[]"), "{out}");
    }

    #[test]
    fn advisor_recommends_after_queries() {
        let mut s = loaded_session();
        s.execute("pmv t1").unwrap();
        for i in 0..5 {
            s.execute(&format!("query t1 [{i}] [1]")).unwrap();
        }
        let out = s.execute("advisor").unwrap();
        assert!(out.contains("recommend PMV"), "{out}");
        assert!(out.contains("template 't1'"), "{out}");
    }

    #[test]
    fn binding_parser() {
        assert_eq!(
            parse_bindings("[1,2] ['x']").unwrap(),
            vec![
                Binding::Values(vec![Value::Int(1), Value::Int(2)]),
                Binding::Values(vec![Value::str("x")]),
            ]
        );
        let r = parse_bindings("[10..20,30..40]").unwrap();
        match &r[0] {
            Binding::Ranges(ivs) => {
                assert_eq!(ivs.len(), 2);
                assert!(ivs[0].contains(&Value::Int(10)));
                assert!(!ivs[0].contains(&Value::Int(20)));
            }
            other => panic!("expected ranges, got {other:?}"),
        }
        assert!(parse_bindings("[1").is_err());
        assert!(parse_bindings("nope").is_err());
        assert!(parse_bindings("[]").is_err());
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut s = Session::new();
        assert!(s.execute("bogus").is_err());
        assert!(s
            .execute("template t SELECT * FROM nosuch WHERE nosuch.x = ?")
            .is_err());
        assert!(s.execute("query missing [1]").is_err());
        assert!(s.execute("load tpcr abc").is_err());
        // Comments and blanks are fine.
        assert_eq!(s.execute("# a comment").unwrap(), "");
        assert_eq!(s.execute("   ").unwrap(), "");
        // Arity mismatch.
        let mut s = loaded_session();
        assert!(s.execute("query t1 [1]").is_err());
        // Interval binding on an equality slot.
        assert!(s.execute("query t1 [1..2] [1]").is_err());
    }

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pmv_cli_durable").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_session_roundtrips_through_checkpoint() {
        let dir = scratch_dir("roundtrip");
        {
            let (mut s, banner) = Session::with_data_dir(SnapshotMode::Locked, &dir).unwrap();
            assert!(banner.contains("initialized"), "{banner}");
            // The load auto-checkpoints so the data survives a crash
            // right after the prompt returns.
            let out = s.execute("load tpcr 0.001").unwrap();
            assert!(out.contains("checkpoint written"), "{out}");
            s.execute(
                "template t1 SELECT * FROM orders, lineitem \
                 WHERE orders.orderkey = lineitem.orderkey \
                 AND orders.orderdate = ? AND lineitem.suppkey = ?",
            )
            .unwrap();
            s.execute("pmv t1 f=3 l=500 policy=2q").unwrap();
            let out = s.execute("checkpoint").unwrap();
            assert!(out.contains("1 view spec(s)"), "{out}");
        }
        // Reopen: catalog, data, template, and PMV all come back without
        // re-running any setup command.
        let (mut s, banner) = Session::with_data_dir(SnapshotMode::Locked, &dir).unwrap();
        assert!(banner.contains("recovered from"), "{banner}");
        assert!(banner.contains("1 view(s) re-registered"), "{banner}");
        let tables = s.execute("tables").unwrap();
        assert!(tables.contains("orders:"), "{tables}");
        for _ in 0..3 {
            s.execute("query t1 [100] [1]").unwrap();
        }
        let stats = s.execute("stats").unwrap();
        assert!(stats.contains("policy 2Q"), "{stats}");
        let health = s.execute("health").unwrap();
        assert!(health.contains("durability: dir"), "{health}");
        assert!(health.contains("recovery: checkpoint loaded"), "{health}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_epoch_session_restores_shard_count() {
        let dir = scratch_dir("epoch_shards");
        {
            let (mut s, _) = Session::with_data_dir(SnapshotMode::Epoch, &dir).unwrap();
            s.execute("load tpcr 0.001").unwrap();
            s.execute(
                "template t1 SELECT * FROM orders, lineitem \
                 WHERE orders.orderkey = lineitem.orderkey \
                 AND orders.orderdate = ? AND lineitem.suppkey = ?",
            )
            .unwrap();
            s.execute("pmv t1 f=3 l=1000").unwrap();
            s.execute("checkpoint").unwrap();
        }
        let (mut s, _) = Session::with_data_dir(SnapshotMode::Epoch, &dir).unwrap();
        let before = s.execute("stats").unwrap();
        let (mut s2, _) = Session::with_data_dir(SnapshotMode::Epoch, &dir).unwrap();
        assert_eq!(before, s2.execute("stats").unwrap(), "shard count drifted");
        assert!(s.execute("query t1 [100] [1]").is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_session_opens_flight_spool() {
        let dir = scratch_dir("flight_spool");
        let (mut s, _) = Session::with_data_dir(SnapshotMode::Epoch, &dir).unwrap();
        assert!(dir.join("flight").is_dir(), "spool dir created at open");
        let out = s.execute("profile").unwrap();
        assert!(
            out.contains("0 flight dump(s) written this session"),
            "{out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_without_data_dir_is_a_durability_error() {
        let mut s = Session::new();
        let e = s.execute("checkpoint").unwrap_err();
        assert!(matches!(e, CliError::Durability(_)), "{e}");
        assert_eq!(e.exit_code(), 6);
        assert!(e.to_string().contains("--data-dir"), "{e}");
    }

    #[test]
    fn quit_signals_termination() {
        let mut s = Session::new();
        assert!(matches!(s.execute("quit").unwrap_err(), CliError::Quit));
    }

    #[test]
    fn errors_carry_distinct_exit_codes() {
        let mut s = Session::new();
        let e = s.execute("bogus").unwrap_err();
        assert!(matches!(e, CliError::Usage(_)));
        assert_eq!(e.exit_code(), 2);
        // Template over a missing relation: root cause is the catalog
        // lookup, so it classifies as a storage error.
        let e = s
            .execute("template t SELECT * FROM nosuch WHERE nosuch.x = ?")
            .unwrap_err();
        assert!(matches!(e, CliError::Storage(_)));
        assert_eq!(e.exit_code(), 3);
        assert!(matches!(CliError::Quit.exit_code(), 0));
        // Root-cause classification unwraps nested errors.
        let nested = CliError::from(pmv_core::CoreError::Query(pmv_query::QueryError::Storage(
            pmv_storage::StorageError::UnknownRelation("r".to_string()),
        )));
        assert!(matches!(nested, CliError::Storage(_)));
        assert_eq!(nested.exit_code(), 3);
    }

    #[test]
    fn metrics_command_formats() {
        let mut s = loaded_session();
        assert!(s.execute("metrics").unwrap().contains("no PMVs"));
        s.execute("pmv t1").unwrap();
        for _ in 0..3 {
            s.execute("query t1 [100] [1]").unwrap();
        }
        let human = s.execute("metrics").unwrap();
        assert!(human.contains("pmv_t1 [healthy] queries=3"), "{human}");
        assert!(human.contains("ttfr"), "{human}");
        let prom = s.execute("metrics --format prometheus").unwrap();
        assert!(
            prom.contains("pmv_queries_total{view=\"pmv_t1\"} 3"),
            "{prom}"
        );
        assert!(
            prom.contains("pmv_phase_latency_seconds_count{view=\"pmv_t1\",phase=\"full\"} 3"),
            "{prom}"
        );
        let json = s.execute("metrics --format=json").unwrap();
        assert!(json.contains("\"name\":\"pmv_t1\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(matches!(
            s.execute("metrics --format bogus"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn trace_command_tails_lifecycles() {
        let mut s = loaded_session();
        assert!(s.execute("trace").unwrap().contains("no PMVs"));
        s.execute("pmv t1").unwrap();
        for i in 0..4 {
            s.execute(&format!("query t1 [{i}] [1]")).unwrap();
        }
        let out = s.execute("trace --tail 2").unwrap();
        assert_eq!(
            out.lines().filter(|l| l.contains("query 'pmv_t1'")).count(),
            2,
            "{out}"
        );
        assert!(out.contains("FirstResults"), "{out}");
        let all = s.execute("trace").unwrap();
        assert_eq!(
            all.lines().filter(|l| l.contains("query 'pmv_t1'")).count(),
            4,
            "{all}"
        );
        assert!(matches!(
            s.execute("trace --tail nope"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn health_and_revalidate_commands() {
        let mut s = loaded_session();
        assert!(s.execute("health").unwrap().contains("no PMVs"));
        s.execute("pmv t1").unwrap();
        s.execute("query t1 [100] [1]").unwrap();
        let out = s.execute("health").unwrap();
        assert!(out.contains("t1: healthy"), "{out}");
        let out = s.execute("revalidate").unwrap();
        assert!(out.contains("t1: 0 stale tuple(s) removed"), "{out}");
        assert!(s
            .execute("revalidate nope")
            .unwrap()
            .contains("no matching"));
    }
}
