//! Model-based property test for [`ClockPolicy`].
//!
//! `ClockPolicy` keeps a key→position map and repairs the clock hand
//! in-place on `remove` (swap-remove of the frame ring). Both are easy to
//! get subtly wrong — the seed reset the hand with `hand %= len`, which
//! teleported it to frame 0 whenever it pointed at the last frame, letting
//! it skip unswept frames and re-sweep ones that had already spent their
//! second chance. This test replays arbitrary operation sequences against
//! [`ModelClock`], an obviously-correct reference written with linear
//! scans and case-by-case hand repair, and demands identical observable
//! behavior (admit outcomes, residency, counts) after every step.

use pmv_cache::{ClockPolicy, ReplacementPolicy};
use proptest::collection;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Admit(u8),
    Touch(u8),
    Remove(u8),
}

/// Reference CLOCK: the same abstract machine as `ClockPolicy` (a frame
/// ring stored in a vector, swap-remove on removal) with no incremental
/// bookkeeping to go stale — positions are found by linear search and the
/// hand repair on removal is spelled out case by case.
struct ModelClock {
    /// (key, referenced) frames in ring order.
    frames: Vec<(u8, bool)>,
    hand: usize,
    capacity: usize,
}

impl ModelClock {
    fn new(capacity: usize) -> Self {
        ModelClock {
            frames: Vec::new(),
            hand: 0,
            capacity,
        }
    }

    fn pos_of(&self, key: u8) -> Option<usize> {
        self.frames.iter().position(|f| f.0 == key)
    }

    fn touch(&mut self, key: u8) {
        if let Some(p) = self.pos_of(key) {
            self.frames[p].1 = true;
        }
    }

    fn admit(&mut self, key: u8) -> Vec<u8> {
        if let Some(p) = self.pos_of(key) {
            self.frames[p].1 = true;
            return vec![];
        }
        if self.frames.len() < self.capacity {
            self.frames.push((key, true));
            return vec![];
        }
        loop {
            let pos = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[pos].1 {
                self.frames[pos].1 = false;
            } else {
                let victim = self.frames[pos].0;
                self.frames[pos] = (key, true);
                return vec![victim];
            }
        }
    }

    fn remove(&mut self, key: u8) {
        let Some(pos) = self.pos_of(key) else {
            return;
        };
        let last = self.frames.len() - 1;
        self.frames.swap(pos, last);
        self.frames.pop();
        // Positions below `last` still hold the same frames, so a hand
        // below `last` needs no repair. A hand at `last` pointed either
        // at the frame that was swapped down into `pos` (follow it), or
        // — when `pos == last` — at the removed frame itself, whose ring
        // successor is frame 0.
        if self.hand == last {
            self.hand = if pos < self.frames.len() { pos } else { 0 };
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn clock_matches_model(
        capacity in 1usize..6,
        ops in collection::vec(
            prop_oneof![
                (0u8..12).prop_map(Op::Admit),
                (0u8..12).prop_map(Op::Touch),
                (0u8..12).prop_map(Op::Remove),
            ],
            0..200,
        ),
    ) {
        let mut real = ClockPolicy::new(capacity);
        let mut model = ModelClock::new(capacity);
        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Admit(k) => {
                    let got = real.admit(*k).evicted().to_vec();
                    let want = model.admit(*k);
                    prop_assert_eq!(
                        &got, &want,
                        "step {} {:?}: evicted {:?} but model evicts {:?}",
                        step, op, got, want
                    );
                }
                Op::Touch(k) => {
                    real.touch(k);
                    model.touch(*k);
                }
                Op::Remove(k) => {
                    real.remove(k);
                    model.remove(*k);
                }
            }
            prop_assert_eq!(real.resident_count(), model.frames.len());
            prop_assert!(real.resident_count() <= capacity);
            let mut keys = real.resident_keys();
            keys.sort_unstable();
            let mut model_keys: Vec<u8> = model.frames.iter().map(|f| f.0).collect();
            model_keys.sort_unstable();
            prop_assert_eq!(&keys, &model_keys, "step {}: residents diverged", step);
            keys.dedup();
            prop_assert_eq!(keys.len(), real.resident_count(), "duplicate resident key");
            for k in 0u8..12 {
                prop_assert_eq!(real.contains(&k), model.pos_of(k).is_some());
            }
        }
    }
}
