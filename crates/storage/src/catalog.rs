//! Catalog of named relations.
//!
//! The catalog owns every base relation behind a copy-on-write handle:
//! `Arc<RwLock<Arc<HeapRelation>>>`. The outer `Arc` is the shared
//! handle, the `RwLock` guards only the *pointer slot*, and the inner
//! `Arc` is the immutable published version of the relation. Readers
//! take the read lock just long enough to clone the inner `Arc`
//! ([`relation_snapshot`]) and then scan with no lock held at all — the
//! lock-free serving path. Writers mutate through [`with_relation_mut`],
//! which uses `Arc::make_mut`: while no snapshot pins the old version
//! this is an in-place mutation (refcount 1, zero copies, the classic
//! single-writer fast path); when a reader still pins it, the writer
//! transparently clones and builds the next version off-path — exactly
//! the copy-on-write discipline the epoch snapshot layer in `pmv-query`
//! relies on.
//!
//! [`relation_snapshot`]: crate::relation_snapshot
//! [`with_relation_mut`]: crate::with_relation_mut

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::StorageError;
use crate::relation::HeapRelation;
use crate::schema::Schema;

/// Shared copy-on-write handle to one relation (see module docs).
pub type RelationHandle = Arc<RwLock<Arc<HeapRelation>>>;

/// Clone the current published version out of a handle: a brief read
/// lock around one `Arc::clone`, never blocking on in-progress readers
/// and never copying tuple data. The returned snapshot is immutable and
/// valid forever (it simply stops receiving new versions).
pub fn relation_snapshot(handle: &RelationHandle) -> Arc<HeapRelation> {
    Arc::clone(&handle.read())
}

/// Mutate a relation through its copy-on-write handle. Takes the write
/// lock on the pointer slot and hands `f` a `&mut HeapRelation` via
/// `Arc::make_mut`: in-place when unshared, clone-on-write when a
/// snapshot still pins the current version.
pub fn with_relation_mut<T>(handle: &RelationHandle, f: impl FnOnce(&mut HeapRelation) -> T) -> T {
    let mut slot = handle.write();
    f(Arc::make_mut(&mut slot))
}

/// Named collection of relations.
#[derive(Default)]
pub struct Catalog {
    relations: BTreeMap<String, RelationHandle>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Create a relation with the given schema.
    pub fn create_relation(&mut self, schema: Schema) -> Result<RelationHandle, StorageError> {
        let name = schema.name().to_string();
        if self.relations.contains_key(&name) {
            return Err(StorageError::DuplicateRelation(name));
        }
        let handle = Arc::new(RwLock::new(Arc::new(HeapRelation::new(schema))));
        self.relations.insert(name, Arc::clone(&handle));
        Ok(handle)
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Result<RelationHandle, StorageError> {
        self.relations
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// True if the named relation exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Drop a relation.
    pub fn drop_relation(&mut self, name: &str) -> Result<(), StorageError> {
        self.relations
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};
    use crate::tuple;

    fn schema(name: &str) -> Schema {
        Schema::new(name, vec![Column::new("a", ColumnType::Int)])
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        c.create_relation(schema("r")).unwrap();
        assert!(c.contains("r"));
        let h = c.relation("r").unwrap();
        with_relation_mut(&h, |r| r.insert(tuple![1i64])).unwrap();
        assert_eq!(c.relation("r").unwrap().read().len(), 1);
    }

    #[test]
    fn duplicate_creation_fails() {
        let mut c = Catalog::new();
        c.create_relation(schema("r")).unwrap();
        assert!(matches!(
            c.create_relation(schema("r")),
            Err(StorageError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn missing_relation_errors() {
        let c = Catalog::new();
        assert!(matches!(
            c.relation("nope"),
            Err(StorageError::UnknownRelation(_))
        ));
    }

    #[test]
    fn drop_removes() {
        let mut c = Catalog::new();
        c.create_relation(schema("r")).unwrap();
        c.drop_relation("r").unwrap();
        assert!(!c.contains("r"));
        assert!(c.drop_relation("r").is_err());
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.create_relation(schema("z")).unwrap();
        c.create_relation(schema("a")).unwrap();
        assert_eq!(c.relation_names(), vec!["a".to_string(), "z".to_string()]);
    }

    #[test]
    fn handles_share_state() {
        let mut c = Catalog::new();
        let h1 = c.create_relation(schema("r")).unwrap();
        let h2 = c.relation("r").unwrap();
        with_relation_mut(&h1, |r| r.insert(tuple![5i64])).unwrap();
        assert_eq!(h2.read().len(), 1);
    }

    #[test]
    fn snapshots_are_immutable_versions() {
        let mut c = Catalog::new();
        let h = c.create_relation(schema("r")).unwrap();
        with_relation_mut(&h, |r| r.insert(tuple![1i64])).unwrap();
        let snap = relation_snapshot(&h);
        // Writer builds the next version off-path (copy-on-write: the
        // pinned snapshot forces a clone) …
        with_relation_mut(&h, |r| r.insert(tuple![2i64])).unwrap();
        // … so the pinned snapshot still sees the old version while new
        // readers see the new one.
        assert_eq!(snap.len(), 1);
        assert_eq!(relation_snapshot(&h).len(), 2);
    }
}
