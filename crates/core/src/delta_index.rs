//! Delta-key index: the partial-state maintenance operator.
//!
//! The maintenance filter (Section 3.4, [`crate::maint_filter`]) only
//! *counts* cached projections — it can skip a ΔR join, but when the
//! projection is present it still has to run the full `ΔR_i ⋈ R_j`
//! recompute to find which view tuples die. This index closes that gap:
//! for each base relation `R_i` it maps the projection of `R_i`'s
//! `Ls'` columns directly to the resident view tuples carrying those
//! values, so a delete removes exactly the supported tuples in
//! O(|Δ| · fanout) with **no base-relation join at all**.
//!
//! Soundness argument (same as the filter's): every view tuple `v`
//! derived from a base tuple `t ∈ R_i` *contains* `t`'s `Ls'`-relevant
//! columns, so all derivations of `v` from `R_i` project to
//! `view_key(v)` and a delete of `t` can only affect tuples filed under
//! `base_key(t)`. The index may *over*-remove: if two distinct base
//! tuples share a projection (multiplicity `m_i > 1`), removing one
//! still removes every supported view tuple. Removal-only
//! over-approximation is sound for a partial view — the cache never
//! lies, it merely under-serves — and the lost slice is repaired by the
//! next fill or a targeted upquery. Because the indexed path consults
//! only the *view* side, never current base state, it is naturally
//! correct for transactions deleting matching tuples from several base
//! relations (the cross-relation case that trips sequential ΔR joins).
//!
//! The index also subsumes the filter's skip test: an absent projection
//! means no cached tuple can be affected, so the join (and now even the
//! indexed walk) is skipped.

use std::sync::Arc;

use crate::bcp::BcpKey;
use crate::fasthash::{FxBuildHasher, FxHashMap};
use crate::maint_filter::RelSpec;
use pmv_query::QueryTemplate;
use pmv_storage::{Tuple, Value};

/// One supported view tuple: the bcp it is filed under and the shared
/// tuple itself.
pub type Supported = (BcpKey, Arc<Tuple>);

/// Per-view index from base-relation projection keys to the resident
/// view tuples they support, one map per base relation.
pub struct DeltaKeyIndex {
    specs: Vec<RelSpec>,
    /// `maps[i]`: projection of cached view tuples onto relation i's
    /// `Ls'` columns → every cached (bcp, tuple) with that projection.
    maps: Vec<FxHashMap<Box<[Value]>, Vec<Supported>>>,
    /// ΔR joins skipped because the projection was absent.
    joins_avoided: u64,
}

impl DeltaKeyIndex {
    /// Build the (empty) index for a template.
    pub fn new(template: &QueryTemplate) -> Self {
        let specs = RelSpec::for_template(template);
        let n = specs.len();
        DeltaKeyIndex {
            specs,
            maps: (0..n).map(|_| FxHashMap::default()).collect(),
            joins_avoided: 0,
        }
    }

    /// Register a cached view tuple under its bcp.
    pub fn add(&mut self, bcp: &BcpKey, tuple: &Arc<Tuple>) {
        for rel in 0..self.specs.len() {
            let key = self.specs[rel].view_key(tuple);
            self.maps[rel]
                .entry(key)
                .or_default()
                .push((bcp.clone(), Arc::clone(tuple)));
        }
    }

    /// Unregister one occurrence of a cached view tuple.
    pub fn remove(&mut self, view_tuple: &Tuple) {
        for rel in 0..self.specs.len() {
            let key = self.specs[rel].view_key(view_tuple);
            match self.maps[rel].get_mut(&key) {
                Some(entries) => {
                    if let Some(pos) = entries.iter().position(|(_, t)| **t == *view_tuple) {
                        entries.swap_remove(pos);
                        if entries.is_empty() {
                            self.maps[rel].remove(&key);
                        }
                    } else {
                        debug_assert!(false, "index missing tuple for relation {rel}");
                    }
                }
                None => debug_assert!(false, "index underflow for relation {rel}"),
            }
        }
    }

    /// Could deleting `base_tuple` from relation `rel` affect any cached
    /// tuple? `false` means all maintenance work for this delta can be
    /// skipped (sound: never a false negative). Relations contributing
    /// no `Ls'` attribute always answer `true` (no information).
    pub fn may_affect(&mut self, rel: usize, base_tuple: &Tuple) -> bool {
        let hit = self.check(rel, base_tuple);
        if !hit {
            self.joins_avoided += 1;
        }
        hit
    }

    /// Read-only form of [`Self::may_affect`] (no skip counting).
    pub fn check(&self, rel: usize, base_tuple: &Tuple) -> bool {
        if self.specs[rel].view_positions.is_empty() {
            return true;
        }
        let key = self.specs[rel].base_key(base_tuple);
        self.maps[rel].contains_key(&key)
    }

    /// The cached view tuples supported by `base_tuple` in relation
    /// `rel` — exactly the tuples a delete of `base_tuple` must remove.
    /// Cloned out so the caller can mutate the store (which mutates this
    /// index) while iterating. Empty when the relation has no `Ls'`
    /// columns (the caller must fall back to the join — the index has
    /// nothing to key on).
    pub fn supported(&self, rel: usize, base_tuple: &Tuple) -> Vec<Supported> {
        if self.specs[rel].view_positions.is_empty() {
            return Vec::new();
        }
        let key = self.specs[rel].base_key(base_tuple);
        self.maps[rel].get(&key).cloned().unwrap_or_default()
    }

    /// Whether relation `rel` projects at least one `Ls'` column — the
    /// precondition for the indexed removal path.
    pub fn indexable(&self, rel: usize) -> bool {
        !self.specs[rel].view_positions.is_empty()
    }

    /// Stable hash of `base_tuple`'s projection key for relation `rel`
    /// — the heavy-hitter sketch's input. The (rel, key) pair is folded
    /// together so equal values in different relations stay distinct.
    pub fn base_key_hash(&self, rel: usize, base_tuple: &Tuple) -> u64 {
        use std::hash::{BuildHasher, Hash, Hasher};
        let mut h = FxBuildHasher::default().build_hasher();
        rel.hash(&mut h);
        for &c in &self.specs[rel].base_columns {
            base_tuple.get(c).hash(&mut h);
        }
        h.finish()
    }

    /// The `(Ls' positions, base columns)` projection spec for one
    /// relation — audited by the static verifier exactly like the
    /// maintenance filter's (`PMV005 UnsoundMaintFilter`).
    pub fn rel_spec(&self, rel: usize) -> (&[usize], &[usize]) {
        let spec = &self.specs[rel];
        (&spec.view_positions, &spec.base_columns)
    }

    /// Number of ΔR joins the index has skipped.
    pub fn joins_avoided(&self) -> u64 {
        self.joins_avoided
    }

    /// Drop every tracked projection (store drained, e.g. quarantine).
    /// The skip counter survives — cumulative history.
    pub fn clear(&mut self) {
        for m in &mut self.maps {
            m.clear();
        }
    }

    /// Total distinct projections tracked (diagnostic).
    pub fn key_count(&self) -> usize {
        self.maps.iter().map(FxHashMap::len).sum()
    }

    /// Compare against the full cached-tuple multiset, returning a
    /// violation message per drifted relation. Never panics.
    pub fn check_against(&self, cached: &[Tuple]) -> Vec<String> {
        use std::collections::HashMap;
        let mut violations = Vec::new();
        for rel in 0..self.specs.len() {
            let mut expect: HashMap<Box<[Value]>, usize> = HashMap::new();
            for t in cached {
                *expect.entry(self.specs[rel].view_key(t)).or_insert(0) += 1;
            }
            let got: HashMap<Box<[Value]>, usize> = self.maps[rel]
                .iter()
                .map(|(k, v)| (k.clone(), v.len()))
                .collect();
            if expect != got {
                violations.push(format!("delta-key index drifted for relation {rel}"));
            }
        }
        violations
    }

    /// Validate against the full cached-tuple multiset (test helper).
    pub fn validate(&self, cached: &[Tuple]) {
        let violations = self.check_against(cached);
        assert!(violations.is_empty(), "{violations:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcp::BcpDim;
    use pmv_query::TemplateBuilder;
    use pmv_storage::{tuple, Column, ColumnType, Schema};

    fn template() -> std::sync::Arc<QueryTemplate> {
        TemplateBuilder::new("t")
            .relation(Schema::new(
                "r",
                vec![
                    Column::new("a", ColumnType::Int),
                    Column::new("c", ColumnType::Int),
                    Column::new("f", ColumnType::Int),
                ],
            ))
            .relation(Schema::new(
                "s",
                vec![
                    Column::new("d", ColumnType::Int),
                    Column::new("e", ColumnType::Int),
                    Column::new("g", ColumnType::Int),
                ],
            ))
            .join("r", "c", "s", "d")
            .unwrap()
            .select("r", "a")
            .unwrap()
            .select("s", "e")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .cond_eq("s", "g")
            .unwrap()
            .build()
            .unwrap()
    }

    fn bcp(f: i64, g: i64) -> BcpKey {
        BcpKey::new(vec![BcpDim::Eq(Value::Int(f)), BcpDim::Eq(Value::Int(g))])
    }

    // Ls' layout for this template: (r.a, s.e, r.f, s.g).

    #[test]
    fn supported_returns_exactly_the_affected_tuples() {
        let t = template();
        let mut idx = DeltaKeyIndex::new(&t);
        let v1 = Arc::new(tuple![1i64, 2i64, 1i64, 7i64]);
        let v2 = Arc::new(tuple![1i64, 3i64, 1i64, 7i64]);
        let v3 = Arc::new(tuple![9i64, 2i64, 5i64, 7i64]);
        idx.add(&bcp(1, 7), &v1);
        idx.add(&bcp(1, 7), &v2);
        idx.add(&bcp(5, 7), &v3);
        // Deleting r-tuple (a=1, c=4, f=1): projection (1, 1) supports
        // v1 and v2, not v3.
        let hit = idx.supported(0, &tuple![1i64, 4i64, 1i64]);
        assert_eq!(hit.len(), 2);
        assert!(hit.iter().all(|(b, _)| *b == bcp(1, 7)));
        // s-side delete (d=4, e=2, g=7): projection (2, 7) supports v1
        // and v3.
        let hit = idx.supported(1, &tuple![4i64, 2i64, 7i64]);
        assert_eq!(hit.len(), 2);
        // Unrelated delete: nothing, and may_affect counts the skip.
        assert!(idx.supported(0, &tuple![8i64, 0i64, 8i64]).is_empty());
        assert!(!idx.may_affect(0, &tuple![8i64, 0i64, 8i64]));
        assert_eq!(idx.joins_avoided(), 1);
    }

    #[test]
    fn remove_drops_one_occurrence() {
        let t = template();
        let mut idx = DeltaKeyIndex::new(&t);
        let v = Arc::new(tuple![1i64, 2i64, 1i64, 7i64]);
        idx.add(&bcp(1, 7), &v);
        idx.add(&bcp(1, 7), &v);
        idx.remove(&v);
        assert_eq!(idx.supported(0, &tuple![1i64, 0i64, 1i64]).len(), 1);
        idx.remove(&v);
        assert!(idx.supported(0, &tuple![1i64, 0i64, 1i64]).is_empty());
        assert_eq!(idx.key_count(), 0);
    }

    #[test]
    fn validate_matches_multiset_and_clear_empties() {
        let t = template();
        let mut idx = DeltaKeyIndex::new(&t);
        let tuples = [
            tuple![1i64, 2i64, 1i64, 7i64],
            tuple![1i64, 2i64, 1i64, 7i64],
            tuple![7i64, 8i64, 3i64, 9i64],
        ];
        for tu in &tuples {
            idx.add(&bcp(0, 0), &Arc::new(tu.clone()));
        }
        idx.validate(&tuples);
        idx.remove(&tuples[0]);
        idx.validate(&tuples[1..]);
        idx.clear();
        idx.validate(&[]);
    }

    #[test]
    fn base_key_hash_distinguishes_relations_and_keys() {
        let t = template();
        let idx = DeltaKeyIndex::new(&t);
        let r_tuple = tuple![1i64, 4i64, 1i64];
        let h1 = idx.base_key_hash(0, &r_tuple);
        assert_eq!(h1, idx.base_key_hash(0, &tuple![1i64, 99i64, 1i64]));
        assert_ne!(h1, idx.base_key_hash(0, &tuple![2i64, 4i64, 1i64]));
        assert_ne!(h1, idx.base_key_hash(1, &r_tuple));
    }
}
