//! LRU-K (we default to K = 2): evicts the entry whose K-th most recent
//! access is oldest, which resists the one-shot-scan pollution CLOCK and
//! LRU suffer from. Included as an extra point in the paper's future-work
//! ablation of bcp-management policies.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

use crate::{AdmitOutcome, ReplacementPolicy};

/// Per-key access history (most recent at the back).
struct History {
    accesses: VecDeque<u64>,
    /// Priority currently registered in the eviction order.
    priority: (u64, u64),
}

/// LRU-K replacement.
pub struct LruKPolicy<K> {
    entries: HashMap<K, History>,
    /// (k-distance stamp, tiebreak stamp) → key. Lowest priority evicts
    /// first; keys with fewer than K accesses use stamp 0 so they evict
    /// before any fully-observed key, ordered among themselves by their
    /// oldest access.
    order: BTreeSet<((u64, u64), K)>,
    clock: u64,
    capacity: usize,
    k: usize,
}

impl<K: Clone + Eq + Hash + Ord + Debug> LruKPolicy<K> {
    fn priority_of(&self, h: &VecDeque<u64>) -> (u64, u64) {
        if h.len() >= self.k {
            // K-th most recent access.
            (h[h.len() - self.k], *h.back().expect("non-empty"))
        } else {
            (0, *h.front().expect("non-empty"))
        }
    }

    fn record_access(&mut self, key: &K) {
        self.clock += 1;
        let clock = self.clock;
        let k = self.k;
        if let Some(h) = self.entries.get_mut(key) {
            let old_priority = h.priority;
            h.accesses.push_back(clock);
            while h.accesses.len() > k {
                h.accesses.pop_front();
            }
            let new_priority = if h.accesses.len() >= k {
                (h.accesses[h.accesses.len() - k], clock)
            } else {
                (0, *h.accesses.front().expect("non-empty"))
            };
            h.priority = new_priority;
            self.order.remove(&(old_priority, key.clone()));
            self.order.insert((new_priority, key.clone()));
        }
    }
}

impl<K: Clone + Eq + Hash + Ord + Debug> LruKPolicy<K> {
    /// LRU-K with `capacity` entries, tracking the last `k` accesses.
    pub fn new(capacity: usize, k: usize) -> Self {
        assert!(capacity > 0, "LRU-K capacity must be positive");
        assert!(k >= 1, "K must be at least 1");
        LruKPolicy {
            entries: HashMap::with_capacity(capacity),
            order: BTreeSet::new(),
            clock: 0,
            capacity,
            k,
        }
    }
}

impl<K: Clone + Eq + Hash + Ord + Debug + 'static> ReplacementPolicy<K> for LruKPolicy<K> {
    fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    fn touch(&mut self, key: &K) {
        self.record_access(key);
    }

    fn admit(&mut self, key: K) -> AdmitOutcome<K> {
        if self.entries.contains_key(&key) {
            self.record_access(&key);
            return AdmitOutcome::Resident { evicted: vec![] };
        }
        let mut evicted = Vec::new();
        if self.entries.len() == self.capacity {
            let victim = self
                .order
                .iter()
                .next()
                .map(|(_, k)| k.clone())
                .expect("non-empty at capacity");
            let h = self.entries.remove(&victim).expect("entry exists");
            self.order.remove(&(h.priority, victim.clone()));
            evicted.push(victim);
        }
        self.clock += 1;
        let mut accesses = VecDeque::with_capacity(self.k);
        accesses.push_back(self.clock);
        let priority = self.priority_of(&accesses);
        self.order.insert((priority, key.clone()));
        self.entries.insert(key, History { accesses, priority });
        AdmitOutcome::Resident { evicted }
    }

    fn remove(&mut self, key: &K) {
        if let Some(h) = self.entries.remove(key) {
            self.order.remove(&(h.priority, key.clone()));
        }
    }

    fn resident_count(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resident_keys(&self) -> Vec<K> {
        self.entries.keys().cloned().collect()
    }

    fn name(&self) -> &'static str {
        "LRU-2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_keys_evict_before_hot_keys() {
        let mut l = LruKPolicy::new(3, 2);
        l.admit(1u32);
        l.touch(&1); // 1 has 2 accesses
        l.admit(2); // 2 has 1 access
        l.admit(3); // 3 has 1 access
                    // 2 is the coldest once-accessed key (oldest first access).
        let out = l.admit(4);
        assert_eq!(out.evicted(), &[2]);
        assert!(l.contains(&1));
    }

    #[test]
    fn k_distance_orders_hot_keys() {
        let mut l = LruKPolicy::new(2, 2);
        l.admit(1u32); // accesses [1]
        l.touch(&1); // accesses [1,2]
        l.admit(2); // accesses [3]
        l.touch(&2); // accesses [3,4]
        l.touch(&1); // accesses [2,5]
                     // 1's 2nd-most-recent access (2) is older than 2's (3): despite 1
                     // being the most recently *touched*, LRU-2 evicts 1.
        let out = l.admit(3);
        assert_eq!(out.evicted(), &[1]);
        // A further touch pattern flips it: make 2 hot again.
        let mut l = LruKPolicy::new(2, 2);
        l.admit(1u32);
        l.touch(&1);
        l.admit(2);
        l.touch(&2);
        l.touch(&2); // 2's 2nd-most-recent (4) beats 1's (1)
        let out = l.admit(3);
        assert_eq!(out.evicted(), &[1]);
    }

    #[test]
    fn remove_unregisters() {
        let mut l = LruKPolicy::new(2, 2);
        l.admit(1u32);
        l.remove(&1);
        assert_eq!(l.resident_count(), 0);
        l.admit(2u32);
        l.admit(3u32);
        assert_eq!(l.admit(4).evicted().len(), 1);
        assert_eq!(l.resident_count(), 2);
    }

    #[test]
    fn history_is_bounded_by_k() {
        let mut l = LruKPolicy::new(1, 2);
        l.admit(1u32);
        for _ in 0..100 {
            l.touch(&1);
        }
        assert!(l.entries[&1].accesses.len() <= 2);
    }

    #[test]
    fn touch_on_absent_key_is_noop() {
        let mut l = LruKPolicy::new(2, 2);
        l.touch(&99u32);
        assert_eq!(l.resident_count(), 0);
    }
}
