//! Slotted in-memory heap relations with stable row ids.
//!
//! A [`HeapRelation`] stores tuples in slots. Deleting a tuple frees its
//! slot (reused by later inserts), but a live tuple's [`RowId`] never
//! changes — indexes and deltas can therefore refer to rows by id, just as
//! the paper's PostgreSQL prototype refers to heap TIDs.

use crate::error::StorageError;
use crate::schema::Schema;
use crate::size::HeapSize;
use crate::tuple::Tuple;

/// Stable identifier of a tuple slot within one relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

impl RowId {
    /// Slot number as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An in-memory heap relation.
#[derive(Clone, Debug)]
pub struct HeapRelation {
    schema: Schema,
    slots: Vec<Option<Tuple>>,
    free: Vec<u32>,
    live: usize,
    /// Monotone counter bumped on every mutation; cheap change detection
    /// for layers that cache derived state.
    version: u64,
}

impl HeapRelation {
    /// Create an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        HeapRelation {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            version: 0,
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Relation name (from the schema).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live tuples exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Mutation counter; bumps on insert/delete/update.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Insert a tuple, validating it against the schema. Returns its id.
    pub fn insert(&mut self, tuple: Tuple) -> Result<RowId, StorageError> {
        self.schema.check(tuple.values())?;
        self.version += 1;
        self.live += 1;
        let id = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(tuple);
                RowId(slot)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("relation exceeds u32 slots");
                self.slots.push(Some(tuple));
                RowId(slot)
            }
        };
        Ok(id)
    }

    /// Insert a tuple into the *specific* slot `id`, extending the slot
    /// array (and free list) as needed. Errors if the slot is already
    /// occupied.
    ///
    /// This is the WAL-replay primitive: logged deltas refer to rows by
    /// id (deletes and updates name their victim's `RowId`), so recovery
    /// must reproduce the exact slot layout the log was written against,
    /// not merely an equal multiset of tuples.
    pub fn insert_at(&mut self, id: RowId, tuple: Tuple) -> Result<(), StorageError> {
        self.schema.check(tuple.values())?;
        let idx = id.index();
        if idx >= self.slots.len() {
            // Holes opened by the extension become free slots, matching
            // what a sequence of inserts+deletes would have left behind.
            for gap in self.slots.len()..idx {
                self.free.push(gap as u32);
            }
            self.slots.resize(idx + 1, None);
        } else if self.slots[idx].is_some() {
            return Err(StorageError::SlotOccupied {
                relation: self.schema.name().to_string(),
                slot: id.0,
            });
        } else {
            // Reusing a hole: drop it from the free list so a later
            // plain insert cannot land on the same slot.
            if let Some(pos) = self.free.iter().rposition(|&s| s == id.0) {
                self.free.swap_remove(pos);
            }
        }
        self.slots[idx] = Some(tuple);
        self.live += 1;
        self.version += 1;
        Ok(())
    }

    /// Delete the tuple at `id`, returning it.
    pub fn delete(&mut self, id: RowId) -> Result<Tuple, StorageError> {
        let slot = self
            .slots
            .get_mut(id.index())
            .and_then(Option::take)
            .ok_or_else(|| StorageError::RowNotFound {
                relation: self.schema.name().to_string(),
                slot: id.0,
            })?;
        self.free.push(id.0);
        self.live -= 1;
        self.version += 1;
        Ok(slot)
    }

    /// Replace the tuple at `id`, returning the old tuple.
    pub fn update(&mut self, id: RowId, new: Tuple) -> Result<Tuple, StorageError> {
        self.schema.check(new.values())?;
        let slot = self
            .slots
            .get_mut(id.index())
            .ok_or_else(|| StorageError::RowNotFound {
                relation: self.schema.name().to_string(),
                slot: id.0,
            })?;
        match slot {
            Some(t) => {
                let old = std::mem::replace(t, new);
                self.version += 1;
                Ok(old)
            }
            None => Err(StorageError::RowNotFound {
                relation: self.schema.name().to_string(),
                slot: id.0,
            }),
        }
    }

    /// Tuple at `id`, if live.
    ///
    /// This is the executor's row-fetch path, so it carries a soft fault
    /// site (latency / panic injection only — the `Option` return has no
    /// error channel).
    pub fn get(&self, id: RowId) -> Option<&Tuple> {
        pmv_faultinject::fire_soft(pmv_faultinject::Site::StorageRead);
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Iterate over `(RowId, &Tuple)` for all live tuples.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Tuple)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (RowId(i as u32), t)))
    }

    /// Average total tuple size in bytes (the paper's `At`), or 0 if empty.
    pub fn avg_tuple_bytes(&self) -> usize {
        if self.live == 0 {
            return 0;
        }
        let total: usize = self
            .iter()
            .map(|(_, t)| std::mem::size_of::<Tuple>() + t.heap_size())
            .sum();
        total / self.live
    }
}

impl HeapSize for HeapRelation {
    fn heap_size(&self) -> usize {
        self.slots.heap_size()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.schema.name().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};
    use crate::tuple;

    fn rel() -> HeapRelation {
        HeapRelation::new(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Str),
            ],
        ))
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut r = rel();
        let id = r.insert(tuple![1i64, "x"]).unwrap();
        assert_eq!(r.get(id), Some(&tuple![1i64, "x"]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn insert_validates_schema() {
        let mut r = rel();
        assert!(r.insert(tuple![1i64]).is_err());
        assert!(r.insert(tuple!["wrong", "x"]).is_err());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut r = rel();
        let id1 = r.insert(tuple![1i64, "x"]).unwrap();
        let id2 = r.insert(tuple![2i64, "y"]).unwrap();
        let removed = r.delete(id1).unwrap();
        assert_eq!(removed, tuple![1i64, "x"]);
        assert_eq!(r.get(id1), None);
        assert_eq!(r.len(), 1);
        // New insert reuses the freed slot.
        let id3 = r.insert(tuple![3i64, "z"]).unwrap();
        assert_eq!(id3, id1);
        assert_ne!(id3, id2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn double_delete_errors() {
        let mut r = rel();
        let id = r.insert(tuple![1i64, "x"]).unwrap();
        r.delete(id).unwrap();
        assert!(matches!(
            r.delete(id),
            Err(StorageError::RowNotFound { .. })
        ));
    }

    #[test]
    fn update_replaces_in_place() {
        let mut r = rel();
        let id = r.insert(tuple![1i64, "x"]).unwrap();
        let old = r.update(id, tuple![9i64, "y"]).unwrap();
        assert_eq!(old, tuple![1i64, "x"]);
        assert_eq!(r.get(id), Some(&tuple![9i64, "y"]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn update_validates_schema() {
        let mut r = rel();
        let id = r.insert(tuple![1i64, "x"]).unwrap();
        assert!(r.update(id, tuple!["bad", "y"]).is_err());
        assert_eq!(r.get(id), Some(&tuple![1i64, "x"]));
    }

    #[test]
    fn iter_skips_deleted() {
        let mut r = rel();
        let a = r.insert(tuple![1i64, "a"]).unwrap();
        let _b = r.insert(tuple![2i64, "b"]).unwrap();
        r.delete(a).unwrap();
        let rows: Vec<_> = r.iter().map(|(_, t)| t.get(0).clone()).collect();
        assert_eq!(rows, vec![crate::value::Value::Int(2)]);
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut r = rel();
        let v0 = r.version();
        let id = r.insert(tuple![1i64, "a"]).unwrap();
        let v1 = r.version();
        r.update(id, tuple![2i64, "b"]).unwrap();
        let v2 = r.version();
        r.delete(id).unwrap();
        let v3 = r.version();
        assert!(v0 < v1 && v1 < v2 && v2 < v3);
    }

    #[test]
    fn insert_at_reproduces_slot_layout() {
        let mut r = rel();
        // Replay-style population: slot 2 first, then slot 0.
        r.insert_at(RowId(2), tuple![2i64, "c"]).unwrap();
        r.insert_at(RowId(0), tuple![0i64, "a"]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(RowId(2)), Some(&tuple![2i64, "c"]));
        // Slot 1 is a hole: a plain insert fills it, not a fresh slot.
        let id = r.insert(tuple![1i64, "b"]).unwrap();
        assert_eq!(id, RowId(1));
        // Occupied slot is rejected; schema still validated.
        assert!(matches!(
            r.insert_at(RowId(0), tuple![9i64, "x"]),
            Err(StorageError::SlotOccupied { .. })
        ));
        assert!(r.insert_at(RowId(7), tuple!["bad", "y"]).is_err());
    }

    #[test]
    fn insert_at_into_freed_slot_unlinks_free_list() {
        let mut r = rel();
        let a = r.insert(tuple![1i64, "a"]).unwrap();
        let _b = r.insert(tuple![2i64, "b"]).unwrap();
        r.delete(a).unwrap();
        r.insert_at(a, tuple![3i64, "c"]).unwrap();
        // The freed slot was consumed by insert_at; a new insert must
        // open a fresh slot rather than clobber it.
        let c = r.insert(tuple![4i64, "d"]).unwrap();
        assert_ne!(c, a);
        assert_eq!(r.get(a), Some(&tuple![3i64, "c"]));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn avg_tuple_bytes_reasonable() {
        let mut r = rel();
        r.insert(tuple![1i64, "abcd"]).unwrap();
        assert!(r.avg_tuple_bytes() > 4);
        let empty = rel();
        assert_eq!(empty.avg_tuple_bytes(), 0);
    }
}
