//! Static template verifier — registration-time analysis of a PMV
//! definition *without executing anything*.
//!
//! The paper's correctness story rests on invariants that the runtime
//! only checks dynamically (or not at all):
//!
//! * `Cselect` decomposes into equality disjunctions / disjoint interval
//!   disjunctions (Section 2.1) — otherwise O1 is meaningless;
//! * the basic-interval grid partitions each interval dimension
//!   (Section 3.1) — otherwise probes misroute and cells overlap;
//! * storage respects `UB ≤ L × F × At` (Section 3.2) — otherwise the
//!   "many PMVs fit in memory" argument collapses at runtime;
//! * the maintenance filter over-approximates on every `Ls'`/`Cjoin`
//!   attribute (Section 3.4) — otherwise deletes can be skipped that
//!   actually affect cached tuples, silently serving stale results.
//!
//! [`verify_parts`] checks all of these statically and emits typed
//! [`Diagnostic`]s with stable codes `PMV001..PMV006`. The verifier is
//! wired into [`crate::manager::PmvManager::register`] deny-by-default
//! (override per code via [`VerifyPolicy`]) and surfaced through the CLI
//! `analyze` command; the `pmv-analysis` crate re-exports this module as
//! the first layer of the static-analysis subsystem.

use std::fmt;
use std::sync::Arc;

use pmv_query::{CondForm, QueryTemplate};
use pmv_storage::{ColumnType, Value};

use crate::bcp::Discretizer;
use crate::maint_filter::MaintFilter;
use crate::view::{PartialViewDef, PmvConfig};

/// How a diagnostic is acted upon at registration time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Recorded but never blocks registration.
    Allow,
    /// Reported; blocks only when the caller escalates warnings.
    Warn,
    /// Blocks registration.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Stable diagnostic codes. Each guards one paper invariant; the mapping
/// to paper sections is documented per variant and in DESIGN.md §12.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// PMV001 — a selection condition cannot be discretized as declared:
    /// an interval-form condition has no [`Discretizer`], or an
    /// equality-form condition was given one (Sections 2.1, 3.1).
    NonDiscretizablePredicate,
    /// PMV002 — a dimension's dividers are not in normalized form
    /// (strictly increasing under the half-open convention), so basic
    /// intervals overlap or collapse to empty cells (Section 3.1).
    OverlappingBasicIntervals,
    /// PMV003 — a divider lies outside the condition attribute's value
    /// domain (wrong type), so the grid fails to actually divide the
    /// dimension: every domain value lands in one edge cell and the
    /// declared grid has a gap over the real domain (Section 3.1).
    GridGapOnDimension,
    /// PMV004 — the configured `L × F × At` storage bound exceeds the
    /// byte budget (Section 3.2).
    StorageBoundExceeded,
    /// PMV005 — the maintenance filter's projection misses or mismatches
    /// an `Ls'`/`Cjoin` attribute, voiding the Section 3.4 skip-the-join
    /// soundness argument.
    UnsoundMaintFilter,
    /// PMV006 — unreachable bcp cells: a `Cjoin` fixed predicate pins a
    /// condition attribute, so every cell not containing the pinned
    /// value can never hold a result tuple (Sections 3.1, 3.3).
    DeadBcp,
}

impl DiagCode {
    /// Every code, in numeric order.
    pub const ALL: [DiagCode; 6] = [
        DiagCode::NonDiscretizablePredicate,
        DiagCode::OverlappingBasicIntervals,
        DiagCode::GridGapOnDimension,
        DiagCode::StorageBoundExceeded,
        DiagCode::UnsoundMaintFilter,
        DiagCode::DeadBcp,
    ];

    /// Stable code string (`PMV001`..`PMV006`).
    pub fn code(&self) -> &'static str {
        match self {
            DiagCode::NonDiscretizablePredicate => "PMV001",
            DiagCode::OverlappingBasicIntervals => "PMV002",
            DiagCode::GridGapOnDimension => "PMV003",
            DiagCode::StorageBoundExceeded => "PMV004",
            DiagCode::UnsoundMaintFilter => "PMV005",
            DiagCode::DeadBcp => "PMV006",
        }
    }

    /// Human name matching the issue/DESIGN.md vocabulary.
    pub fn name(&self) -> &'static str {
        match self {
            DiagCode::NonDiscretizablePredicate => "NonDiscretizablePredicate",
            DiagCode::OverlappingBasicIntervals => "OverlappingBasicIntervals",
            DiagCode::GridGapOnDimension => "GridGapOnDimension",
            DiagCode::StorageBoundExceeded => "StorageBoundExceeded",
            DiagCode::UnsoundMaintFilter => "UnsoundMaintFilter",
            DiagCode::DeadBcp => "DeadBcp",
        }
    }

    /// Paper section the code guards (for reports).
    pub fn paper_section(&self) -> &'static str {
        match self {
            DiagCode::NonDiscretizablePredicate => "2.1/3.1",
            DiagCode::OverlappingBasicIntervals => "3.1",
            DiagCode::GridGapOnDimension => "3.1",
            DiagCode::StorageBoundExceeded => "3.2",
            DiagCode::UnsoundMaintFilter => "3.4",
            DiagCode::DeadBcp => "3.1/3.3",
        }
    }

    fn index(&self) -> usize {
        match self {
            DiagCode::NonDiscretizablePredicate => 0,
            DiagCode::OverlappingBasicIntervals => 1,
            DiagCode::GridGapOnDimension => 2,
            DiagCode::StorageBoundExceeded => 3,
            DiagCode::UnsoundMaintFilter => 4,
            DiagCode::DeadBcp => 5,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// One finding from the template verifier.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which invariant is violated.
    pub code: DiagCode,
    /// Effective severity under the policy that produced the report.
    pub severity: Severity,
    /// Human-readable explanation with the offending values.
    pub message: String,
    /// Condition-dimension index, when the finding is per-dimension.
    pub dimension: Option<usize>,
    /// Relation index, when the finding is per-relation.
    pub relation: Option<usize>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.code.code(),
            self.code.name(),
            self.message
        )
    }
}

/// Per-code severity policy. Every code denies by default; callers can
/// downgrade (or re-upgrade) individual codes.
#[derive(Clone, Debug, Default)]
pub struct VerifyPolicy {
    overrides: [Option<Severity>; 6],
}

impl VerifyPolicy {
    /// The default deny-everything policy.
    pub fn deny_by_default() -> Self {
        VerifyPolicy::default()
    }

    /// Override one code's severity (e.g. downgrade `PMV006` to `Warn`
    /// for a template that intentionally pins a condition attribute).
    pub fn with_override(mut self, code: DiagCode, severity: Severity) -> Self {
        self.overrides[code.index()] = Some(severity);
        self
    }

    /// Effective severity for a code.
    pub fn effective(&self, code: DiagCode) -> Severity {
        self.overrides[code.index()].unwrap_or(Severity::Deny)
    }
}

/// The maintenance-filter projection under analysis: for each relation,
/// the `(Ls' position, base column)` pairs its key is built from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilterSpec {
    /// One `(view_positions, base_columns)` pair per template relation.
    pub per_relation: Vec<(Vec<usize>, Vec<usize>)>,
}

impl FilterSpec {
    /// The spec [`MaintFilter::new`] derives for a template — the sound
    /// reference the verifier compares a candidate spec against.
    pub fn for_template(template: &QueryTemplate) -> Self {
        let n = template.relations().len();
        let mut per_relation = vec![(Vec::new(), Vec::new()); n];
        for (pos, attr) in template.expanded_list().iter().enumerate() {
            per_relation[attr.relation].0.push(pos);
            per_relation[attr.relation].1.push(attr.column);
        }
        FilterSpec { per_relation }
    }

    /// Extract the spec a live filter is actually keyed on.
    pub fn of_filter(filter: &MaintFilter, template: &QueryTemplate) -> Self {
        let n = template.relations().len();
        let mut per_relation = Vec::with_capacity(n);
        for rel in 0..n {
            let (views, bases) = filter.rel_spec(rel);
            per_relation.push((views.to_vec(), bases.to_vec()));
        }
        FilterSpec { per_relation }
    }
}

/// Inputs to the verifier beyond the template itself.
#[derive(Clone, Debug, Default)]
pub struct VerifyOptions {
    /// Byte budget for `PMV004`. `None` disables the storage-bound check
    /// (the manager's runtime shed budget is a different, soft knob).
    pub byte_budget: Option<usize>,
    /// Average tuple size `At` override; estimated from the schema when
    /// `None`.
    pub avg_tuple_bytes: Option<usize>,
    /// Maintenance-filter spec to audit for `PMV005`. `None` audits the
    /// spec [`MaintFilter::new`] would derive (sound by construction).
    pub filter: Option<FilterSpec>,
    /// Per-code severity policy.
    pub policy: VerifyPolicy,
}

/// Outcome of a verification run.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Findings, in code order.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// Whether any finding carries deny severity.
    pub fn denied(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Whether a specific code fired (any severity).
    pub fn has(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The distinct codes that fired, in report order.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for d in &self.diagnostics {
            if !out.contains(&d.code.code()) {
                out.push(d.code.code());
            }
        }
        out
    }

    /// Machine-readable rendering for the CLI `analyze --json` mode and
    /// tooling. Self-contained (the workspace's `serde_json` shim has no
    /// serializer derive, and the payload is flat).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("{\"denied\":");
        out.push_str(if self.denied() { "true" } else { "false" });
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"paper_section\":\"{}\",\
                 \"dimension\":{},\"relation\":{},\"message\":\"{}\"}}",
                d.code.code(),
                d.code.name(),
                d.severity,
                d.code.paper_section(),
                d.dimension.map_or("null".into(), |v| v.to_string()),
                d.relation.map_or("null".into(), |v| v.to_string()),
                esc(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return f.write_str("clean (no diagnostics)");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Estimate the average view-tuple size `At` in bytes from the expanded
/// select list's column types (fixed-width scalars plus a conservative
/// string and per-tuple overhead allowance).
pub fn estimate_tuple_bytes(template: &QueryTemplate) -> usize {
    const TUPLE_OVERHEAD: usize = 16;
    const STR_ESTIMATE: usize = 24;
    let mut bytes = TUPLE_OVERHEAD;
    for attr in template.expanded_list() {
        bytes += match template.schema(attr.relation).column(attr.column).ty {
            ColumnType::Int | ColumnType::Double => 8,
            ColumnType::Str => STR_ESTIMATE,
        };
    }
    bytes
}

/// Verify a prospective PMV from raw parts, before a
/// [`PartialViewDef`] is even constructed (so form mismatches that the
/// constructor would reject are reportable as `PMV001`).
pub fn verify_parts(
    template: &Arc<QueryTemplate>,
    discretizers: &[Option<Discretizer>],
    config: &PmvConfig,
    opts: &VerifyOptions,
) -> VerifyReport {
    let mut report = VerifyReport::default();
    let mut emit =
        |code: DiagCode, message: String, dimension: Option<usize>, relation: Option<usize>| {
            let severity = opts.policy.effective(code);
            report.diagnostics.push(Diagnostic {
                code,
                severity,
                message,
                dimension,
                relation,
            });
        };

    // PMV001 — every condition must be discretizable as declared.
    if discretizers.len() != template.cond_count() {
        emit(
            DiagCode::NonDiscretizablePredicate,
            format!(
                "template '{}' has {} selection conditions but {} discretizer slots",
                template.name(),
                template.cond_count(),
                discretizers.len()
            ),
            None,
            None,
        );
    }
    for (i, ct) in template.cond_templates().iter().enumerate() {
        let d = discretizers.get(i).and_then(|d| d.as_ref());
        match (ct.form, d) {
            (CondForm::Interval, None) => emit(
                DiagCode::NonDiscretizablePredicate,
                format!(
                    "interval condition {i} on {} has no discretizer — the dimension cannot \
                     be cut into basic intervals",
                    attr_name(template, ct.attr.relation, ct.attr.column)
                ),
                Some(i),
                Some(ct.attr.relation),
            ),
            (CondForm::Equality, Some(_)) => emit(
                DiagCode::NonDiscretizablePredicate,
                format!(
                    "equality condition {i} on {} carries a discretizer — equality \
                     dimensions are keyed by value, not by basic interval",
                    attr_name(template, ct.attr.relation, ct.attr.column)
                ),
                Some(i),
                Some(ct.attr.relation),
            ),
            _ => {}
        }
    }

    // Per-dimension grid checks on interval conditions.
    for (i, ct) in template.cond_templates().iter().enumerate() {
        let Some(d) = discretizers.get(i).and_then(|d| d.as_ref()) else {
            continue;
        };
        if ct.form != CondForm::Interval {
            continue; // already PMV001 above
        }
        let col_ty = template.schema(ct.attr.relation).column(ct.attr.column).ty;
        let dividers = d.dividers();

        // PMV002 — normalized form: strictly increasing dividers. A
        // duplicate collapses a cell to empty; a descending pair makes
        // the flanking cells overlap.
        for (k, w) in dividers.windows(2).enumerate() {
            if w[0] >= w[1] {
                emit(
                    DiagCode::OverlappingBasicIntervals,
                    format!(
                        "dimension {i}: dividers not in normalized form (strictly \
                         increasing): dividers[{k}]={} !< dividers[{}]={} — basic \
                         intervals overlap or are empty under the half-open convention",
                        w[0],
                        k + 1,
                        w[1]
                    ),
                    Some(i),
                    None,
                );
            }
        }
        // Semantic double-check: any two non-empty basic intervals must
        // be disjoint.
        let cells: Vec<_> = (0..d.interval_count() as u32)
            .map(|id| d.interval_of(id))
            .collect();
        'overlap: for a in 0..cells.len() {
            for b in (a + 1)..cells.len() {
                if !cells[a].is_empty() && !cells[b].is_empty() && cells[a].overlaps(&cells[b]) {
                    emit(
                        DiagCode::OverlappingBasicIntervals,
                        format!(
                            "dimension {i}: basic intervals {a} and {b} overlap ({} vs {})",
                            cells[a], cells[b]
                        ),
                        Some(i),
                        None,
                    );
                    break 'overlap;
                }
            }
        }

        // PMV003 — every divider must lie in the condition attribute's
        // value domain; an off-type divider never splits the real domain,
        // so the declared grid has a gap over it (all actual values pile
        // into one edge cell).
        for (k, v) in dividers.iter().enumerate() {
            if !col_ty.admits(v) || matches!(v, Value::Null) {
                emit(
                    DiagCode::GridGapOnDimension,
                    format!(
                        "dimension {i}: divider[{k}]={v:?} is outside the {col_ty:?} domain \
                         of {} — the grid never cuts the dimension there, leaving a gap",
                        attr_name(template, ct.attr.relation, ct.attr.column)
                    ),
                    Some(i),
                    None,
                );
            }
        }

        // PMV006 — a Cjoin fixed predicate pinning the condition
        // attribute makes every cell not containing the pinned value
        // unreachable.
        for fp in template.fixed_preds() {
            if fp.attr == ct.attr {
                let live = d.id_of(&fp.value);
                let dead = d.interval_count().saturating_sub(1);
                if dead > 0 {
                    emit(
                        DiagCode::DeadBcp,
                        format!(
                            "dimension {i}: fixed predicate pins {} = {:?}; only basic \
                             interval {live} is reachable, the other {dead} cells are dead",
                            attr_name(template, ct.attr.relation, ct.attr.column),
                            fp.value
                        ),
                        Some(i),
                        None,
                    );
                }
            }
        }
    }
    // PMV006 on equality dimensions: a pinned equality attribute leaves
    // exactly one live cell in an unbounded key space.
    for (i, ct) in template.cond_templates().iter().enumerate() {
        if ct.form != CondForm::Equality {
            continue;
        }
        for fp in template.fixed_preds() {
            if fp.attr == ct.attr {
                emit(
                    DiagCode::DeadBcp,
                    format!(
                        "dimension {i}: fixed predicate pins equality attribute {} = {:?}; \
                         every bcp with a different key value is dead",
                        attr_name(template, ct.attr.relation, ct.attr.column),
                        fp.value
                    ),
                    Some(i),
                    None,
                );
            }
        }
    }

    // PMV004 — L × F × At against the byte budget.
    if let Some(budget) = opts.byte_budget {
        let at = opts
            .avg_tuple_bytes
            .unwrap_or_else(|| estimate_tuple_bytes(template));
        let ub = config.l.saturating_mul(config.f).saturating_mul(at);
        if ub > budget {
            emit(
                DiagCode::StorageBoundExceeded,
                format!(
                    "UB = L·F·At = {}·{}·{} = {ub} bytes exceeds the {budget}-byte budget \
                     (Section 3.2 sizing)",
                    config.l, config.f, at
                ),
                None,
                None,
            );
        }
    }

    // PMV005 — audit the maintenance-filter projection against the
    // template-derived reference spec.
    if config.maint_filter {
        let reference = FilterSpec::for_template(template);
        let candidate = opts.filter.as_ref().unwrap_or(&reference);
        if candidate.per_relation.len() != reference.per_relation.len() {
            emit(
                DiagCode::UnsoundMaintFilter,
                format!(
                    "filter covers {} relations, template has {}",
                    candidate.per_relation.len(),
                    reference.per_relation.len()
                ),
                None,
                None,
            );
        } else {
            for (rel, (cand, want)) in candidate
                .per_relation
                .iter()
                .zip(reference.per_relation.iter())
                .enumerate()
            {
                if cand != want {
                    let pairs = |s: &(Vec<usize>, Vec<usize>)| {
                        s.0.iter()
                            .zip(s.1.iter())
                            .map(|(v, b)| format!("Ls'[{v}]↔col{b}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    };
                    emit(
                        DiagCode::UnsoundMaintFilter,
                        format!(
                            "relation {rel} ('{}'): filter keys on [{}] but Ls'/Cjoin \
                             coverage requires [{}] — a delete may be skipped while it \
                             still affects cached tuples",
                            template.relations()[rel],
                            pairs(cand),
                            pairs(want)
                        ),
                        None,
                        Some(rel),
                    );
                }
            }
        }
    }

    report
        .diagnostics
        .sort_by_key(|d| (d.code.index(), d.dimension, d.relation));
    report
}

/// Verify a constructed [`PartialViewDef`] (the registration path).
pub fn verify_def(def: &PartialViewDef, config: &PmvConfig, opts: &VerifyOptions) -> VerifyReport {
    let template = def.template().clone();
    let discretizers: Vec<Option<Discretizer>> = (0..template.cond_count())
        .map(|i| def.discretizer(i).cloned())
        .collect();
    verify_parts(&template, &discretizers, config, opts)
}

fn attr_name(template: &QueryTemplate, rel: usize, col: usize) -> String {
    format!(
        "{}.{}",
        template.relations()[rel],
        template.schema(rel).column(col).name
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_cache::PolicyKind;
    use pmv_query::TemplateBuilder;
    use pmv_storage::{Column, ColumnType, Schema};

    fn schema() -> Schema {
        Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        )
    }

    fn interval_template() -> Arc<QueryTemplate> {
        TemplateBuilder::new("t")
            .relation(schema())
            .select("r", "a")
            .unwrap()
            .cond_interval("r", "f")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn clean_template_is_clean() {
        let t = interval_template();
        let d = vec![Some(Discretizer::int_grid(0, 100, 10))];
        let report = verify_parts(&t, &d, &PmvConfig::default(), &VerifyOptions::default());
        assert!(!report.denied(), "{report}");
        assert!(report.diagnostics.is_empty(), "{report}");
    }

    #[test]
    fn missing_discretizer_is_pmv001() {
        let t = interval_template();
        let report = verify_parts(
            &t,
            &[None],
            &PmvConfig::default(),
            &VerifyOptions::default(),
        );
        assert!(report.denied());
        assert!(report.has(DiagCode::NonDiscretizablePredicate));
    }

    #[test]
    fn policy_downgrade_clears_denial() {
        let t = interval_template();
        let opts = VerifyOptions {
            policy: VerifyPolicy::deny_by_default()
                .with_override(DiagCode::NonDiscretizablePredicate, Severity::Warn),
            ..Default::default()
        };
        let report = verify_parts(&t, &[None], &PmvConfig::default(), &opts);
        assert!(!report.denied());
        assert!(report.has(DiagCode::NonDiscretizablePredicate));
    }

    #[test]
    fn storage_bound_is_pmv004() {
        let t = interval_template();
        let d = vec![Some(Discretizer::int_grid(0, 100, 10))];
        let opts = VerifyOptions {
            byte_budget: Some(64),
            ..Default::default()
        };
        let config = PmvConfig::new(2, 1000, PolicyKind::Clock);
        let report = verify_parts(&t, &d, &config, &opts);
        assert!(report.denied());
        assert!(report.has(DiagCode::StorageBoundExceeded));
        // A generous budget passes.
        let opts = VerifyOptions {
            byte_budget: Some(1 << 30),
            ..Default::default()
        };
        assert!(!verify_parts(&t, &d, &config, &opts).denied());
    }
}
