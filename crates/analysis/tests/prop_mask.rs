//! Property test for `mask_comments_and_strings` (ISSUE 8 satellite).
//!
//! Every downstream analysis — byte offsets, line mapping, brace-depth
//! scope tracking, call-site extraction — assumes three invariants of
//! the masked text:
//!
//! 1. **length** is preserved byte-for-byte;
//! 2. **newline positions** are identical (line numbers stay true);
//! 3. **brace visibility**: exactly the braces that are real code
//!    survive — braces inside strings, char literals and comments are
//!    blanked, braces in code are not.
//!
//! The generator concatenates random sequences from a vocabulary of
//! self-delimiting adversarial snippets: escaped char literals
//! (`'\''`, `'\\'`), brace char literals, lifetimes in the positions
//! that historically confused the char-literal heuristic, nested block
//! comments, raw strings, and strings with embedded escapes/newlines.
//! Each token carries the number of *code* braces it contributes, so
//! the expected visible-brace census is computable without re-lexing.

use pmv_analysis::lint::mask_comments_and_strings;
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

/// (snippet, code `{` count, code `}` count). Every snippet is
/// self-delimiting: it closes every literal/comment it opens, so any
/// concatenation (space-joined) is a lexically valid token stream.
const VOCAB: &[(&str, usize, usize)] = &[
    ("let x = 1;", 0, 0),
    ("{", 1, 0),
    ("}", 0, 1),
    ("fn f() { g(); }", 1, 1),
    // Char literals: braces and quotes inside must vanish.
    ("'{'", 0, 0),
    ("'}'", 0, 0),
    ("'a'", 0, 0),
    ("b'x'", 0, 0),
    // The two escaped forms that used to desync the lexer.
    ("'\\''", 0, 0),
    ("'\\\\'", 0, 0),
    ("'\\n'", 0, 0),
    ("b'\\''", 0, 0),
    // Lifetimes — must NOT be eaten as char literals.
    ("&'static str", 0, 0),
    ("fn g<'a>(x: &'a str) -> &'a str { x }", 1, 1),
    ("impl<'de> Visit<'de> for V {}", 1, 1),
    ("if x < 'a' { y() }", 1, 1),
    // Strings: braces, escapes, embedded newline.
    ("\"{ not a brace }\"", 0, 0),
    ("\"esc \\\" quote\"", 0, 0),
    ("\"back \\\\ slash\"", 0, 0),
    ("\"line1\nline2\"", 0, 0),
    ("r#\"raw \" with { brace \"#", 0, 0),
    // Comments: line (self-terminating via newline) and nested block.
    ("// line with 'quote and { brace\n", 0, 0),
    ("/* block } comment { */", 0, 0),
    ("/* nested /* inner */ outer */", 0, 0),
    ("match c { '\\'' => 1, '{' => 2, _ => 0 }", 1, 1),
];

fn assemble(picks: &[usize]) -> (String, usize, usize) {
    let mut src = String::new();
    let (mut opens, mut closes) = (0usize, 0usize);
    for &p in picks {
        let (tok, o, c) = VOCAB[p % VOCAB.len()];
        src.push_str(tok);
        src.push(' ');
        opens += o;
        closes += c;
    }
    (src, opens, closes)
}

fn newline_positions(s: &str) -> Vec<usize> {
    s.bytes()
        .enumerate()
        .filter(|(_, b)| *b == b'\n')
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mask_preserves_length_newlines_and_code_braces(
        picks in prop_vec(0usize..VOCAB.len(), 0..40),
    ) {
        let (src, opens, closes) = assemble(&picks);
        let masked = mask_comments_and_strings(&src);

        prop_assert_eq!(masked.len(), src.len(), "length drifted for {:?}", src);
        prop_assert_eq!(
            newline_positions(&masked),
            newline_positions(&src),
            "newline positions drifted for {:?}",
            src
        );
        let open_count = masked.bytes().filter(|b| *b == b'{').count();
        let close_count = masked.bytes().filter(|b| *b == b'}').count();
        prop_assert_eq!(
            (open_count, close_count),
            (opens, closes),
            "brace visibility drifted for {:?} -> {:?}",
            src,
            masked
        );
    }
}
