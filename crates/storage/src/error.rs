//! Storage-layer errors.

use std::fmt;

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A tuple's arity or value types do not match the relation schema.
    SchemaMismatch {
        /// Relation whose schema was violated.
        relation: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A row id does not refer to a live tuple.
    RowNotFound {
        /// Relation searched.
        relation: String,
        /// Offending slot number.
        slot: u32,
    },
    /// A named relation is missing from the catalog.
    UnknownRelation(String),
    /// A named column is missing from a schema.
    UnknownColumn {
        /// Relation searched.
        relation: String,
        /// Offending column name.
        column: String,
    },
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// `insert_at` targeted a slot that already holds a live tuple —
    /// WAL replay diverged from the layout the log was written against.
    SlotOccupied {
        /// Relation targeted.
        relation: String,
        /// Occupied slot number.
        slot: u32,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::SchemaMismatch { relation, detail } => {
                write!(f, "schema mismatch on relation '{relation}': {detail}")
            }
            StorageError::RowNotFound { relation, slot } => {
                write!(f, "row {slot} not found in relation '{relation}'")
            }
            StorageError::UnknownRelation(name) => write!(f, "unknown relation '{name}'"),
            StorageError::UnknownColumn { relation, column } => {
                write!(f, "unknown column '{column}' in relation '{relation}'")
            }
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation '{name}' already exists")
            }
            StorageError::SlotOccupied { relation, slot } => {
                write!(f, "slot {slot} already occupied in relation '{relation}'")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::UnknownColumn {
            relation: "orders".into(),
            column: "bogus".into(),
        };
        assert_eq!(e.to_string(), "unknown column 'bogus' in relation 'orders'");
        let e = StorageError::RowNotFound {
            relation: "r".into(),
            slot: 9,
        };
        assert!(e.to_string().contains("row 9"));
    }
}
