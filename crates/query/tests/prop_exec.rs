//! Property test: the index-nested-loop executor agrees with the naive
//! full-scan oracle on arbitrary small databases and arbitrary queries
//! from the Section 2.1 template class (equality and interval forms,
//! one- and two-relation templates, with and without indexes).

use pmv_index::IndexDef;
use pmv_query::{execute, execute_scan, Condition, Database, Interval, TemplateBuilder};
use pmv_storage::{Column, ColumnType, Schema, Tuple, Value};
use proptest::prelude::*;

fn small_db(r_rows: &[(i64, i64, i64)], s_rows: &[(i64, i64)], with_indexes: bool) -> Database {
    let mut db = Database::new();
    db.create_relation(Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("c", ColumnType::Int),
            Column::new("f", ColumnType::Int),
        ],
    ))
    .unwrap();
    db.create_relation(Schema::new(
        "s",
        vec![
            Column::new("d", ColumnType::Int),
            Column::new("g", ColumnType::Int),
        ],
    ))
    .unwrap();
    for &(a, c, f) in r_rows {
        db.insert(
            "r",
            Tuple::new(vec![Value::Int(a), Value::Int(c), Value::Int(f)]),
        )
        .unwrap();
    }
    for &(d, g) in s_rows {
        db.insert("s", Tuple::new(vec![Value::Int(d), Value::Int(g)]))
            .unwrap();
    }
    if with_indexes {
        db.create_index(IndexDef::btree("r", vec![2])).unwrap();
        db.create_index(IndexDef::btree("s", vec![0])).unwrap();
        db.create_index(IndexDef::hash("s", vec![1])).unwrap();
    }
    db
}

fn rows_r() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec((0i64..6, 0i64..5, 0i64..6), 0..25)
}

fn rows_s() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..5, 0i64..6), 0..25)
}

fn eq_values() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::btree_set(0i64..6, 1..4).prop_map(|s| s.into_iter().collect())
}

fn disjoint_intervals() -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::btree_set(-1i64..8, 2..6).prop_map(|cuts| {
        let cuts: Vec<i64> = cuts.into_iter().collect();
        cuts.chunks(2)
            .filter(|c| c.len() == 2 && c[0] < c[1])
            .map(|c| Interval::half_open(c[0], c[1]))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn join_template_matches_oracle(
        r in rows_r(),
        s in rows_s(),
        fs in eq_values(),
        gs in eq_values(),
        with_indexes in any::<bool>(),
    ) {
        let db = small_db(&r, &s, with_indexes);
        let t = TemplateBuilder::new("p")
            .relation(db.schema("r").unwrap())
            .relation(db.schema("s").unwrap())
            .join("r", "c", "s", "d").unwrap()
            .select("r", "a").unwrap()
            .cond_eq("r", "f").unwrap()
            .cond_eq("s", "g").unwrap()
            .build().unwrap();
        let q = t.bind(vec![
            Condition::Equality(fs.into_iter().map(Value::Int).collect()),
            Condition::Equality(gs.into_iter().map(Value::Int).collect()),
        ]).unwrap();
        let (mut fast, stats) = execute(&db, &q).unwrap();
        let mut slow = execute_scan(&db, &q).unwrap();
        fast.sort();
        slow.sort();
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(stats.results, fast.len());
        if with_indexes {
            prop_assert_eq!(stats.fallback_scans, 0, "indexes must be used");
        }
    }

    #[test]
    fn interval_template_matches_oracle(
        r in rows_r(),
        ivs in disjoint_intervals(),
        with_indexes in any::<bool>(),
    ) {
        prop_assume!(!ivs.is_empty());
        let db = small_db(&r, &[], with_indexes);
        let t = TemplateBuilder::new("iv")
            .relation(db.schema("r").unwrap())
            .select("r", "a").unwrap()
            .select("r", "c").unwrap()
            .cond_interval("r", "f").unwrap()
            .build().unwrap();
        let q = t.bind(vec![Condition::Intervals(ivs)]).unwrap();
        let (mut fast, _) = execute(&db, &q).unwrap();
        let mut slow = execute_scan(&db, &q).unwrap();
        fast.sort();
        slow.sort();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn fixed_predicates_match_oracle(
        r in rows_r(),
        s in rows_s(),
        fixed_g in 0i64..6,
        fs in eq_values(),
    ) {
        let db = small_db(&r, &s, true);
        let t = TemplateBuilder::new("fx")
            .relation(db.schema("r").unwrap())
            .relation(db.schema("s").unwrap())
            .join("r", "c", "s", "d").unwrap()
            .fixed("s", "g", fixed_g).unwrap()
            .select("r", "a").unwrap()
            .cond_eq("r", "f").unwrap()
            .build().unwrap();
        let q = t.bind(vec![
            Condition::Equality(fs.into_iter().map(Value::Int).collect()),
        ]).unwrap();
        let (mut fast, _) = execute(&db, &q).unwrap();
        let mut slow = execute_scan(&db, &q).unwrap();
        fast.sort();
        slow.sort();
        prop_assert_eq!(fast, slow);
    }

    /// `join_from` (the maintenance ΔR join) agrees with recomputing the
    /// full join before/after deletion.
    #[test]
    fn join_from_matches_full_join_difference(
        r in rows_r(),
        s in rows_s(),
        victim_idx in 0usize..25,
    ) {
        prop_assume!(!r.is_empty());
        let mut db = small_db(&r, &s, true);
        let t = TemplateBuilder::new("jf")
            .relation(db.schema("r").unwrap())
            .relation(db.schema("s").unwrap())
            .join("r", "c", "s", "d").unwrap()
            .select("r", "a").unwrap()
            .select("s", "g").unwrap()
            .cond_eq("r", "f").unwrap()
            .build().unwrap();
        let (before, _) = pmv_query::exec::full_join(&db, &t).unwrap();

        // Delete one r row and ask join_from for its contribution.
        let victims: Vec<_> = {
            let handle = db.relation("r").unwrap();
            let guard = handle.read();
            guard.iter().map(|(row, _)| row).collect()
        };
        let victim = victims[victim_idx % victims.len()];
        let deleted = match db.delete("r", victim).unwrap() {
            pmv_storage::Delta::Delete { tuple, .. } => tuple,
            _ => unreachable!(),
        };
        let (after, _) = pmv_query::exec::full_join(&db, &t).unwrap();
        let mut contributed = pmv_query::exec::join_from(&db, &t, 0, &deleted).unwrap();

        // before = after ⊎ contributed (multiset equality).
        let mut recombined = after.clone();
        recombined.append(&mut contributed);
        let mut before_sorted = before;
        before_sorted.sort();
        recombined.sort();
        prop_assert_eq!(before_sorted, recombined);
    }
}
