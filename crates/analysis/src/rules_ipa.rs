//! Interprocedural protocol rules over the workspace call graph.
//!
//! [`analyze_tree`] is a strict superset of the file-local lint pass:
//! it first runs every [`crate::lint`] rule per file (depth-0), then
//! adds call-graph findings (depth ≥ 1) for the contracts that span
//! functions:
//!
//! | rule | contract (DESIGN.md §17) |
//! |------|--------------------------|
//! | `write_guard_across_exec` | a call made under a live shard write guard must not transitively reach an executor entry point (§10) |
//! | `lock_in_catch_unwind` | a call inside a `catch_unwind` closure must not transitively acquire a shard lock (§11) |
//! | `lock_order` | a call made under a live shard guard must not transitively acquire the DB master lock (§10) |
//! | `pin_reaches_blocking_lock` | no function transitively reachable from an epoch pin region may acquire a blocking lock (§14) |
//! | `dio_funnel_reach` | production code in `crates/{core,storage,wal}/src` must not transitively reach a raw `std::fs` write except through `wal::dio` (§16) |
//! | `durable_before_visible` | in any function that publishes the group-commit snapshot, a WAL append (reaching fsync) lexically dominates the publish, and every append error arm reaches `undo_delta_exact` and returns before it (§15–§16) |
//!
//! Depth ≥ 1 findings report only in production code: test functions
//! deliberately exercise the protocols from outside (pinned readers
//! surviving commits, crash harnesses writing scratch files), and the
//! file-local tripwires still cover their bodies. The same
//! `pmv::allow(rule)` escape comments suppress and count findings.

use std::io;
use std::path::PathBuf;

use crate::graph::{brace_match, Call, Workspace};
use crate::lint::{
    allow_covers, find_all, guard_scope_end, let_binding_name, lint_source, prev_is_ident,
    shard_guard_bindings, statement_around, AllowUse, Finding, Level, LintReport,
};
use crate::summaries::{
    Summaries, BLOCKING, DB_LOCK, EXEC, EXEC_NAMES, FSYNC, RAW_FS, SHARD_LOCK, UNDO,
};

/// The interprocedural rules this module adds on top of
/// [`crate::lint::RULES`].
pub const IPA_RULES: [(&str, Level); 6] = [
    ("write_guard_across_exec", Level::Error),
    ("lock_in_catch_unwind", Level::Error),
    ("lock_order", Level::Error),
    ("pin_reaches_blocking_lock", Level::Error),
    ("dio_funnel_reach", Level::Error),
    ("durable_before_visible", Level::Error),
];

/// Outcome of a whole-program analysis run.
#[derive(Debug, Default)]
pub struct AnalyzeReport {
    /// Unsuppressed findings (file-local and interprocedural).
    pub findings: Vec<Finding>,
    /// Escape-hatch entries that suppressed a finding.
    pub allows_used: Vec<AllowUse>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `fn` items indexed into the call graph.
    pub fns_indexed: usize,
}

impl AnalyzeReport {
    /// Whether the run fails: any error, or any finding at all under
    /// `deny_warnings`.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.findings
            .iter()
            .any(|f| f.level == Level::Error || deny_warnings)
    }
}

/// Analyze every `.rs` file under the given roots.
pub fn analyze_tree(roots: &[PathBuf]) -> io::Result<AnalyzeReport> {
    let ws = Workspace::scan(roots)?;
    Ok(analyze_workspace(&ws))
}

/// Analyze an already-scanned workspace.
pub fn analyze_workspace(ws: &Workspace) -> AnalyzeReport {
    let sums = Summaries::compute(ws);
    let mut report = AnalyzeReport {
        files_scanned: ws.files.len(),
        fns_indexed: ws.fns.len(),
        ..AnalyzeReport::default()
    };

    // Depth-0: the file-local lint pass, verbatim.
    let mut lint_rep = LintReport::default();
    for file in &ws.files {
        lint_source(&file.path, &file.source, &mut lint_rep);
    }
    report.findings.extend(lint_rep.findings);
    report.allows_used.extend(lint_rep.allows_used);

    // Depth ≥ 1: raw (file, rule, line, message) findings, deduped by
    // (rule, file, line) — one site can sit in overlapping regions.
    let mut raw: Vec<(usize, &'static str, usize, String)> = Vec::new();
    let calls_by_file = index_calls_by_file(ws);

    rule_guard_across_exec_ipa(ws, &sums, &calls_by_file, &mut raw);
    rule_catch_unwind_ipa(ws, &sums, &calls_by_file, &mut raw);
    rule_lock_order_ipa(ws, &sums, &calls_by_file, &mut raw);
    rule_pin_reaches_blocking_lock(ws, &sums, &calls_by_file, &mut raw);
    rule_dio_funnel_reach(ws, &sums, &mut raw);
    rule_durable_before_visible(ws, &sums, &calls_by_file, &mut raw);

    raw.sort_by(|a, b| (a.0, a.2, a.1).cmp(&(b.0, b.2, b.1)));
    raw.dedup_by(|a, b| (a.0, a.1, a.2) == (b.0, b.1, b.2));

    for (fid, rule, line, message) in raw {
        let file = &ws.files[fid];
        let lines: Vec<&str> = file.source.lines().collect();
        let level = IPA_RULES
            .iter()
            .find(|(r, _)| *r == rule)
            .map(|(_, l)| *l)
            .unwrap_or(Level::Error);
        if let Some(allow_line) = allow_covers(&lines, rule, line) {
            report.allows_used.push(AllowUse {
                rule: rule.to_string(),
                file: file.path.clone(),
                line: allow_line,
            });
        } else {
            report.findings.push(Finding {
                rule,
                level,
                file: file.path.clone(),
                line,
                message,
            });
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

/// Per-file call ids, sorted by offset.
fn index_calls_by_file(ws: &Workspace) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); ws.files.len()];
    for (id, call) in ws.calls.iter().enumerate() {
        out[call.file].push(id);
    }
    for v in &mut out {
        v.sort_by_key(|&id| ws.calls[id].offset);
    }
    out
}

/// Calls within `[start, end)` of a file, production callers only.
fn prod_calls_in<'a>(
    ws: &'a Workspace,
    calls_by_file: &'a [Vec<usize>],
    fid: usize,
    start: usize,
    end: usize,
) -> impl Iterator<Item = &'a Call> + 'a {
    calls_by_file[fid]
        .iter()
        .map(move |&id| &ws.calls[id])
        .filter(move |c| c.offset >= start && c.offset < end && !ws.fns[c.caller].is_test)
}

fn rule_guard_across_exec_ipa(
    ws: &Workspace,
    sums: &Summaries,
    calls_by_file: &[Vec<usize>],
    raw: &mut Vec<(usize, &'static str, usize, String)>,
) {
    for (fid, file) in ws.files.iter().enumerate() {
        for (pos, scope_end, var) in shard_guard_bindings(&file.masked, ".write()") {
            for call in prod_calls_in(ws, calls_by_file, fid, pos, scope_end) {
                // The direct `execute(…)`-under-guard case is depth-0:
                // the lint pass already reports it.
                if EXEC_NAMES.contains(&call.name.as_str()) {
                    continue;
                }
                if let Some(&t) = call
                    .targets
                    .iter()
                    .find(|&&t| sums.reach_through(ws, t) & EXEC != 0)
                {
                    let chain = sums.chain_to(ws, t, EXEC);
                    raw.push((
                        fid,
                        "write_guard_across_exec",
                        ws.line_at(fid, call.offset),
                        format!(
                            "`{}` called while shard write guard `{}` (line {}) is live \
                             reaches an executor entry point: {} — compute first, lock second",
                            call.name,
                            var.unwrap_or("_"),
                            ws.line_at(fid, pos),
                            sums.describe_chain(ws, &chain, EXEC)
                        ),
                    ));
                }
            }
        }
    }
}

fn rule_catch_unwind_ipa(
    ws: &Workspace,
    sums: &Summaries,
    calls_by_file: &[Vec<usize>],
    raw: &mut Vec<(usize, &'static str, usize, String)>,
) {
    for (fid, file) in ws.files.iter().enumerate() {
        let masked = &file.masked;
        for pos in find_all(masked, "catch_unwind") {
            let Some(open_rel) = masked[pos..].find('(') else {
                continue;
            };
            let open = pos + open_rel;
            let end = paren_match(masked, open);
            for call in prod_calls_in(ws, calls_by_file, fid, open, end) {
                if let Some(&t) = call
                    .targets
                    .iter()
                    .find(|&&t| sums.reach[t] & SHARD_LOCK != 0)
                {
                    let chain = sums.chain_to(ws, t, SHARD_LOCK);
                    raw.push((
                        fid,
                        "lock_in_catch_unwind",
                        ws.line_at(fid, call.offset),
                        format!(
                            "`{}` called inside the `catch_unwind` closure starting on \
                             line {} acquires a shard lock: {} — acquire the guard outside \
                             so the quarantine handler can reach the store after a panic",
                            call.name,
                            ws.line_at(fid, pos),
                            sums.describe_chain(ws, &chain, SHARD_LOCK)
                        ),
                    ));
                }
            }
        }
    }
}

fn rule_lock_order_ipa(
    ws: &Workspace,
    sums: &Summaries,
    calls_by_file: &[Vec<usize>],
    raw: &mut Vec<(usize, &'static str, usize, String)>,
) {
    for (fid, file) in ws.files.iter().enumerate() {
        for acquire in [".write()", ".read()"] {
            for (pos, scope_end, var) in shard_guard_bindings(&file.masked, acquire) {
                for call in prod_calls_in(ws, calls_by_file, fid, pos, scope_end) {
                    if let Some(&t) = call.targets.iter().find(|&&t| sums.reach[t] & DB_LOCK != 0) {
                        let chain = sums.chain_to(ws, t, DB_LOCK);
                        raw.push((
                            fid,
                            "lock_order",
                            ws.line_at(fid, call.offset),
                            format!(
                                "`{}` called while shard guard `{}` (line {}) is live \
                                 acquires the DB master lock: {} — lock order is DB guard \
                                 first, then shard guard, never the reverse",
                                call.name,
                                var.unwrap_or("_"),
                                ws.line_at(fid, pos),
                                sums.describe_chain(ws, &chain, DB_LOCK)
                            ),
                        ));
                    }
                }
            }
        }
    }
}

fn rule_pin_reaches_blocking_lock(
    ws: &Workspace,
    sums: &Summaries,
    calls_by_file: &[Vec<usize>],
    raw: &mut Vec<(usize, &'static str, usize, String)>,
) {
    let mut regions: Vec<(usize, usize, usize, String)> = Vec::new(); // (fid, start, end, what)
    for (fid, file) in ws.files.iter().enumerate() {
        let masked = &file.masked;
        for pos in find_all(masked, ".pin()") {
            let (_, stmt) = statement_around(masked, pos);
            if !stmt.contains("let ") {
                continue;
            }
            let Some(var) = let_binding_name(stmt) else {
                continue;
            };
            let end = guard_scope_end(masked, pos + ".pin()".len(), Some(var));
            regions.push((fid, pos, end, format!("epoch pin `{var}`")));
        }
    }
    for f in &ws.fns {
        if f.name.starts_with("run_pinned") && !f.is_test {
            if let Some((open, close)) = f.body {
                regions.push((f.file, open, close, format!("`fn {}`", f.name)));
            }
        }
    }
    for (fid, start, end, what) in regions {
        for call in prod_calls_in(ws, calls_by_file, fid, start, end) {
            // Calls into another pin-region function are not re-flagged
            // here: that body is a region of its own and carries its
            // own verdicts (and escapes).
            if call.name.starts_with("run_pinned") {
                continue;
            }
            if let Some(&t) = call
                .targets
                .iter()
                .find(|&&t| sums.reach[t] & BLOCKING != 0)
            {
                let chain = sums.chain_to(ws, t, BLOCKING);
                raw.push((
                    fid,
                    "pin_reaches_blocking_lock",
                    ws.line_at(fid, call.offset),
                    format!(
                        "`{}` called while {} (line {}) is live transitively acquires a \
                         blocking lock: {} — the pinned serving path must not wait on any \
                         lock",
                        call.name,
                        what,
                        ws.line_at(fid, start),
                        sums.describe_chain(ws, &chain, BLOCKING)
                    ),
                ));
            }
        }
    }
}

fn rule_dio_funnel_reach(
    ws: &Workspace,
    sums: &Summaries,
    raw: &mut Vec<(usize, &'static str, usize, String)>,
) {
    for call in &ws.calls {
        let file = &ws.files[call.file];
        if !file.in_durable_src || file.is_dio || ws.fns[call.caller].is_test {
            continue;
        }
        if let Some(&t) = call
            .targets
            .iter()
            .find(|&&t| sums.reach_through(ws, t) & RAW_FS != 0)
        {
            let chain = sums.chain_to(ws, t, RAW_FS);
            raw.push((
                call.file,
                "dio_funnel_reach",
                ws.line_at(call.file, call.offset),
                format!(
                    "`{}` transitively reaches a raw filesystem write outside `pmv_wal::dio`: \
                     {} — route the write through the dio layer so fault injection and the \
                     crash kill-point matrix cover it",
                    call.name,
                    sums.describe_chain(ws, &chain, RAW_FS)
                ),
            ));
        }
    }
}

fn rule_durable_before_visible(
    ws: &Workspace,
    sums: &Summaries,
    calls_by_file: &[Vec<usize>],
    raw: &mut Vec<(usize, &'static str, usize, String)>,
) {
    for f in &ws.fns {
        if f.is_test {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        let fid = f.file;
        let masked = &ws.files[fid].masked;
        let body = &masked[open..close.min(masked.len())];
        let appends: Vec<usize> = call_offsets(body, "append_commit")
            .into_iter()
            .map(|p| open + p)
            .collect();
        let publishes: Vec<usize> = find_all(body, "published.publish(")
            .into_iter()
            .filter(|&p| !prev_is_ident(body.as_bytes(), p))
            .map(|p| open + p)
            .collect();
        if publishes.is_empty() && appends.is_empty() {
            continue;
        }
        if appends.is_empty() {
            for &p in &publishes {
                raw.push((
                    fid,
                    "durable_before_visible",
                    ws.line_at(fid, p),
                    format!(
                        "`{}` publishes the group-commit snapshot without a dominating WAL \
                         append+fsync — §16 requires every publish to follow a durable append \
                         on the same path",
                        ws.fn_name_of(f)
                    ),
                ));
            }
            continue;
        }
        let first_append = *appends.iter().min().unwrap();
        for &p in &publishes {
            if p < first_append {
                raw.push((
                    fid,
                    "durable_before_visible",
                    ws.line_at(fid, p),
                    "snapshot publish lexically precedes the WAL append — durability must \
                     dominate visibility"
                        .to_string(),
                ));
            }
        }
        for &a in &appends {
            // The append callee must reach an fsync. Unresolvable calls
            // pass leniently (documented approximation).
            if let Some(call) = calls_by_file[fid]
                .iter()
                .map(|&id| &ws.calls[id])
                .find(|c| c.offset == a)
            {
                if !call.targets.is_empty()
                    && !call.targets.iter().any(|&t| sums.reach[t] & FSYNC != 0)
                {
                    raw.push((
                        fid,
                        "durable_before_visible",
                        ws.line_at(fid, a),
                        "WAL append does not reach an fsync — the record is not durable \
                         when the snapshot publishes"
                            .to_string(),
                    ));
                }
            }
            let (_, stmt) = statement_around(masked, a);
            if !stmt.contains("if let Err") && !stmt.contains("match ") {
                raw.push((
                    fid,
                    "durable_before_visible",
                    ws.line_at(fid, a),
                    "WAL append result is not checked — a failed append must roll back \
                     the round (exact inverses) and return before any publish"
                        .to_string(),
                ));
                continue;
            }
            let Some(rel) = masked[a..].find('{') else {
                continue;
            };
            let bopen = a + rel;
            let bclose = brace_match(masked, bopen);
            let block = &masked[bopen..bclose.min(masked.len())];
            let has_undo = !call_offsets(block, "undo_delta_exact").is_empty()
                || prod_calls_in(ws, calls_by_file, fid, bopen, bclose)
                    .any(|c| c.targets.iter().any(|&t| sums.reach[t] & UNDO != 0));
            if !has_undo {
                raw.push((
                    fid,
                    "durable_before_visible",
                    ws.line_at(fid, a),
                    "WAL append error arm does not reach the exact-inverse rollback \
                     (`undo_delta_exact`)"
                        .to_string(),
                ));
            }
            if !contains_word(block, "return") {
                raw.push((
                    fid,
                    "durable_before_visible",
                    ws.line_at(fid, a),
                    "WAL append error arm does not return before the snapshot publish".to_string(),
                ));
            }
            if let Some(&p) = publishes.iter().filter(|&&p| p > a).min() {
                if bclose > p {
                    raw.push((
                        fid,
                        "durable_before_visible",
                        ws.line_at(fid, p),
                        "snapshot publish sits inside the WAL append error arm".to_string(),
                    ));
                }
            }
        }
    }
}

/// Whole-ident call offsets of `name(` in `body` (no definitions).
fn call_offsets(body: &str, name: &str) -> Vec<usize> {
    let pat = format!("{name}(");
    let bytes = body.as_bytes();
    find_all(body, &pat)
        .into_iter()
        .filter(|&pos| !prev_is_ident(bytes, pos) && !body[..pos].trim_end().ends_with("fn"))
        .collect()
}

/// Whole-word containment.
fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    find_all(text, word).into_iter().any(|pos| {
        let end = pos + word.len();
        !prev_is_ident(bytes, pos)
            && (end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_'))
    })
}

/// Byte offset just past the `)` matching the `(` at `open`.
fn paren_match(masked: &str, open: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0i64;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    bytes.len()
}

impl Workspace {
    fn fn_name_of(&self, f: &crate::graph::FnDef) -> String {
        match &f.impl_of {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    }
}
