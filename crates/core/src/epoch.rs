//! Epoch-published database snapshots — the write side of the lock-free
//! serving path.
//!
//! [`EpochDb`] pairs the mutable [`Database`] (behind a
//! `parking_lot::RwLock`) with a published immutable [`DbSnapshot`] in a
//! [`LeftRight`] cell. Readers *pin* the current snapshot with one
//! wait-free [`LeftRight::load`] — no database lock, no reference
//! counting beyond the `Arc` clone — and run entire queries against it
//! ([`SharedPmv::run_pinned`]); relations and indexes inside the
//! snapshot are copy-on-write `Arc`s, so pinning is O(1) regardless of
//! data size.
//!
//! # The commit protocol
//!
//! [`EpochDb::commit`] is the only place new database states become
//! visible, and it orders the three steps the correctness argument
//! (DESIGN.md §14) needs:
//!
//! 1. **Mutate** under the write lock (bumping the database version —
//!    the epoch).
//! 2. **Maintain** every registered PMV against the new state, still
//!    under the write lock. This evicts cached tuples the Δ
//!    invalidated and advances each view's `maint_epoch`.
//! 3. **Publish** the new snapshot, then release the lock.
//!
//! Because maintenance completes *before* the snapshot publishes, any
//! reader pinned at epoch `e` sees shard views whose surviving tuples
//! with `fill_epoch ≤ e` are true results at `e` — maintenance is
//! removal-only, so later commits can only make a pinned reader
//! under-serve, never lie. That is the paper's Section 3.6 S-lock
//! guarantee, recovered without the lock.
//!
//! In-flight readers keep their pinned snapshot alive through its
//! `Arc`; memory is reclaimed when the last pinned query drops it.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::{RwLock, RwLockReadGuard};
use pmv_obs::Phase;
use pmv_query::{Database, DbSnapshot, QueryInstance};
use pmv_storage::DeltaBatch;
use pmv_sync::LeftRight;

use crate::concurrent::SharedPmv;
use crate::pipeline::QueryOutcome;
use crate::Result;

/// A database with an epoch-published snapshot for lock-free serving.
pub struct EpochDb {
    db: RwLock<Database>,
    published: LeftRight<DbSnapshot>,
}

impl EpochDb {
    /// Wrap `db` and publish its current state as the first snapshot.
    pub fn new(db: Database) -> Self {
        let snap = Arc::new(db.snapshot());
        EpochDb {
            db: RwLock::new(db),
            published: LeftRight::new(snap),
        }
    }

    /// Pin the current published snapshot: one wait-free load plus an
    /// `Arc` clone. The returned snapshot stays valid (and its memory
    /// alive) for as long as the caller holds it, no matter how many
    /// commits happen meanwhile.
    pub fn pin(&self) -> Arc<DbSnapshot> {
        self.published.load()
    }

    /// Shared read access to the live database, for locked-mode serving
    /// ([`SharedPmv::run`]) and inspection. Blocks commits while held.
    pub fn read(&self) -> RwLockReadGuard<'_, Database> {
        self.db.read()
    }

    /// Commit one transaction: `f` mutates the database and returns the
    /// delta batches it produced (e.g. from
    /// `pmv_query::Transaction::commit`); every view in `views` is then
    /// maintained and the new snapshot published, all before the write
    /// lock is released — the maintain-before-publish protocol the
    /// epoch serving path's correctness rests on (module docs).
    pub fn commit<T>(
        &self,
        views: &[&SharedPmv],
        f: impl FnOnce(&mut Database) -> Result<(T, Vec<DeltaBatch>)>,
    ) -> Result<T> {
        let mut guard = self.db.write();
        let (out, batches) = f(&mut guard)?;
        for view in views {
            view.maintain_all(&guard, &batches)?;
        }
        self.published.publish(Arc::new(guard.snapshot()));
        Ok(out)
    }

    /// Exclusive setup access (schema, bulk loads, index builds) with a
    /// snapshot republish on exit. Unlike [`EpochDb::commit`] this runs
    /// no maintenance — use it only before views are serving, or for
    /// changes views are maintained against separately.
    pub fn with_write<T>(&self, f: impl FnOnce(&mut Database) -> T) -> T {
        let mut guard = self.db.write();
        let out = f(&mut guard);
        self.published.publish(Arc::new(guard.snapshot()));
        out
    }

    /// Serve one query on the epoch path: pin the published snapshot
    /// (recorded as [`Phase::epoch_pin`]) and run it through
    /// [`SharedPmv::run_pinned`]. Takes no lock anywhere on the read
    /// path.
    pub fn query(&self, pmv: &SharedPmv, q: &QueryInstance) -> Result<QueryOutcome> {
        let t0 = Instant::now();
        let snap = self.pin();
        pmv.obs().record(Phase::epoch_pin, t0.elapsed());
        pmv.run_pinned(&*snap, q)
    }

    /// Epoch (database version) of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        use pmv_query::DataView;
        self.pin().view_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{PartialViewDef, PmvConfig};
    use pmv_cache::PolicyKind;
    use pmv_index::IndexDef;
    use pmv_query::{Condition, TemplateBuilder, Transaction};
    use pmv_storage::{tuple, Column, ColumnType, Schema, Value};

    fn setup() -> (EpochDb, SharedPmv) {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
        for i in 0..200i64 {
            db.insert("r", tuple![i, i % 10]).unwrap();
        }
        db.create_index(IndexDef::btree("r", vec![1])).unwrap();
        let t = TemplateBuilder::new("t")
            .relation(db.schema("r").unwrap())
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .build()
            .unwrap();
        let def = PartialViewDef::all_equality("epoch", t).unwrap();
        let pmv = SharedPmv::with_shards(def, PmvConfig::new(4, 16, PolicyKind::Clock), 4);
        (EpochDb::new(db), pmv)
    }

    #[test]
    fn pinned_queries_match_locked_queries() {
        let (edb, pmv) = setup();
        let t = pmv.def().template().clone();
        for round in 0..3 {
            for f in 0..10i64 {
                let q = t
                    .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                    .unwrap();
                let pinned = edb.query(&pmv, &q).unwrap();
                assert_eq!(pinned.ds_leftover, 0);
                let guard = edb.read();
                let locked = pmv.run(&guard, &q).unwrap();
                let mut a = pinned.all_results();
                let mut b = locked.all_results();
                a.sort();
                b.sort();
                assert_eq!(a, b, "round {round} f={f}");
            }
        }
        pmv.debug_validate();
        assert!(pmv.stats().bcp_hit_queries > 0, "epoch fills must serve");
        assert!(pmv.obs().snapshot(Phase::epoch_pin).count() >= 30);
        assert!(pmv.obs().snapshot(Phase::snapshot_swap).count() >= 1);
    }

    #[test]
    fn pinned_reader_survives_commits() {
        let (edb, pmv) = setup();
        let t = pmv.def().template().clone();
        let q = t
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        // Warm the cache, then pin BEFORE a delete commits. (The row to
        // delete is found before pinning: `lock_in_pin_region` bans
        // blocking acquisitions while a pin is live, even in tests.)
        let row = {
            let guard = edb.read();
            let handle = guard.relation("r").unwrap();
            let rel = handle.read();
            let row = rel
                .iter()
                .find(|(_, tu)| tu.get(1) == &Value::Int(3))
                .map(|(r, _)| r)
                .unwrap();
            row
        };
        edb.query(&pmv, &q).unwrap();
        let pinned = edb.pin();
        let before = edb.query(&pmv, &q).unwrap().all_results().len();
        edb.commit(&[&pmv], |db| {
            let mut txn = Transaction::begin(db);
            txn.delete("r", row).unwrap();
            Ok(((), txn.commit()))
        })
        .unwrap();
        // The old pin still answers from the pre-delete state.
        let stale = pmv.run_pinned(&*pinned, &q).unwrap();
        assert_eq!(stale.all_results().len(), before);
        assert_eq!(stale.ds_leftover, 0);
        // A fresh pin sees the delete.
        let fresh = edb.query(&pmv, &q).unwrap();
        assert_eq!(fresh.all_results().len(), before - 1);
        assert_eq!(fresh.ds_leftover, 0);
        pmv.debug_validate();
    }

    #[test]
    fn epoch_advances_on_commit() {
        let (edb, pmv) = setup();
        let e0 = edb.epoch();
        edb.commit(&[&pmv], |db| {
            let mut txn = Transaction::begin(db);
            txn.insert("r", tuple![900i64, 3i64]).unwrap();
            Ok(((), txn.commit()))
        })
        .unwrap();
        assert!(edb.epoch() > e0);
    }

    #[test]
    fn stale_pin_never_writes_back_past_maintenance() {
        let (edb, pmv) = setup();
        let t = pmv.def().template().clone();
        let q = t
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        let row = {
            let guard = edb.read();
            let handle = guard.relation("r").unwrap();
            let rel = handle.read();
            let row = rel
                .iter()
                .find(|(_, tu)| tu.get(1) == &Value::Int(3))
                .map(|(r, _)| r)
                .unwrap();
            row
        };
        let pinned = edb.pin();
        // Maintenance completes at a later epoch…
        edb.commit(&[&pmv], |db| {
            let mut txn = Transaction::begin(db);
            txn.delete("r", row).unwrap();
            Ok(((), txn.commit()))
        })
        .unwrap();
        // …so the stale pin's results (which still contain the deleted
        // row) must not be cached.
        let stale = pmv.run_pinned(&*pinned, &q).unwrap();
        assert_eq!(stale.ds_leftover, 0);
        assert_eq!(pmv.tuple_count(), 0, "stale fill must be gated off");
        // And the fresh pin's results may be.
        edb.query(&pmv, &q).unwrap();
        assert!(pmv.tuple_count() > 0);
        pmv.debug_validate();
    }
}
