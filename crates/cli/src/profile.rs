//! The file-reading half of `pmv-profile`: parse flight-recorder spool
//! dumps, bench JSON (`BENCH_pmv.json`), and already-rendered profile
//! reports back into the [`ProfileReport`] model from `pmv-obs`.
//!
//! Input classification is structural, not by file name:
//!
//! * a `pmv_flight_dump` sentinel marks a flight-recorder dump (the
//!   format `pmv_obs::spool::compose_dump` writes) — its `metrics.phases`
//!   member carries the quantized per-phase histograms;
//! * a `profile` member marks a bench document (`concurrent_scaling
//!   --json`) embedding a report;
//! * `contention` + `pipeline` members mark a report document itself
//!   (the output of `pmv-profile --json` or the CLI `profile --json`).
//!
//! Dumps are cumulative registry snapshots, so when several dumps from
//! the same view are given only the latest (highest `seq`) contributes
//! series — earlier dumps' data is a strict subset. Torn or otherwise
//! unparsable files are skipped with a note; the run fails only when
//! *no* input was usable.

use pmv_obs::profile::CONTENTION_PHASES;
use pmv_obs::{ContentionSite, PipelineStage, ProfileReport, TemplateCost};
use serde_json::Value;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// One parsed flight dump, pre-assembly.
struct FlightDump {
    view: String,
    seq: u64,
    reason: String,
    contention: Vec<ContentionSite>,
    pipeline: Vec<PipelineStage>,
}

fn num(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn fnum(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

fn text(v: &Value, key: &str) -> String {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string()
}

/// Parse one flight-dump document (`None` if `v` is not one).
fn parse_flight_dump(v: &Value) -> Option<FlightDump> {
    v.get("pmv_flight_dump")?;
    let phases = v.get("metrics")?.get("phases")?.as_object()?;
    let mut dump = FlightDump {
        view: text(v, "view"),
        seq: num(v, "seq"),
        reason: text(v, "reason"),
        contention: Vec::new(),
        pipeline: Vec::new(),
    };
    for (name, p) in phases.iter() {
        let count = num(p, "count");
        if count == 0 {
            continue;
        }
        if CONTENTION_PHASES.contains(&name.as_str()) {
            dump.contention.push(ContentionSite {
                site: name.clone(),
                count,
                wait_p50_us: num(p, "p50_us"),
                wait_p99_us: num(p, "p99_us"),
                wait_max_us: num(p, "max_us"),
                total_wait_us: num(p, "sum_us"),
            });
        } else if name != "ttfr" && name != "full" {
            dump.pipeline.push(PipelineStage {
                stage: name.clone(),
                count,
                p50_us: num(p, "p50_us"),
                p99_us: num(p, "p99_us"),
                total_us: num(p, "sum_us"),
                share_pct: 0.0,
            });
        }
    }
    Some(dump)
}

/// Absorb a report-shaped document (`contention`/`templates`/`pipeline`
/// /`notes` members) into `report`. Returns whether anything was taken.
fn absorb_report_fragment(v: &Value, report: &mut ProfileReport) -> bool {
    let mut took = false;
    if let Some(sites) = v.get("contention").and_then(Value::as_array) {
        for c in sites {
            report.contention.push(ContentionSite {
                site: text(c, "site"),
                count: num(c, "count"),
                wait_p50_us: num(c, "wait_p50_us"),
                wait_p99_us: num(c, "wait_p99_us"),
                wait_max_us: num(c, "wait_max_us"),
                total_wait_us: num(c, "total_wait_us"),
            });
            took = true;
        }
    }
    if let Some(templates) = v.get("templates").and_then(Value::as_array) {
        for t in templates {
            report.templates.push(TemplateCost {
                template: text(t, "template"),
                queries: num(t, "queries"),
                hit_rate: fnum(t, "hit_rate"),
                ttfr_p50_us: num(t, "ttfr_p50_us"),
                ttfr_p99_us: num(t, "ttfr_p99_us"),
                full_p99_us: num(t, "full_p99_us"),
                o3_rows_scanned: num(t, "o3_rows_scanned"),
                maint_join_us: num(t, "maint_join_us"),
                bytes_resident: num(t, "bytes_resident"),
                cost_us: num(t, "cost_us"),
            });
            took = true;
        }
    }
    if let Some(stages) = v.get("pipeline").and_then(Value::as_array) {
        for s in stages {
            report.pipeline.push(PipelineStage {
                stage: text(s, "stage"),
                count: num(s, "count"),
                p50_us: num(s, "p50_us"),
                p99_us: num(s, "p99_us"),
                total_us: num(s, "total_us"),
                share_pct: 0.0,
            });
            took = true;
        }
    }
    if let Some(notes) = v.get("notes").and_then(Value::as_array) {
        for n in notes.iter().filter_map(Value::as_str) {
            report.notes.push(n.to_string());
            took = true;
        }
    }
    took
}

/// Absorb one parsed document of any supported shape. Returns whether
/// the document was recognized.
fn absorb(v: &Value, report: &mut ProfileReport, dumps: &mut Vec<FlightDump>) -> bool {
    if let Some(dump) = parse_flight_dump(v) {
        dumps.push(dump);
        return true;
    }
    if let Some(profile) = v.get("profile") {
        // A bench document embedding a report; keep the headline number
        // alongside so the report stays self-explanatory.
        let took = absorb_report_fragment(profile, report);
        if took {
            if let Some(qps) = v.get("aggregate_qps").and_then(Value::as_f64) {
                report.notes.push(format!("bench aggregate: {qps:.0} qps"));
            }
        }
        return took;
    }
    absorb_report_fragment(v, report)
}

/// Fold the collected flight dumps into the report: per view only the
/// latest (highest-`seq`) dump contributes series — dumps snapshot the
/// same cumulative registry — and a note summarizes what fired.
fn fold_dumps(mut dumps: Vec<FlightDump>, report: &mut ProfileReport) {
    if dumps.is_empty() {
        return;
    }
    let mut reasons: HashMap<String, u64> = HashMap::new();
    for d in &dumps {
        *reasons.entry(d.reason.clone()).or_insert(0) += 1;
    }
    let mut reasons: Vec<(String, u64)> = reasons.into_iter().collect();
    reasons.sort();
    let summary = reasons
        .iter()
        .map(|(r, n)| format!("{r} x{n}"))
        .collect::<Vec<_>>()
        .join(", ");
    report
        .notes
        .push(format!("{} flight dump(s): {summary}", dumps.len()));

    dumps.sort_by(|a, b| a.view.cmp(&b.view).then(b.seq.cmp(&a.seq)));
    let mut views: Vec<String> = dumps.iter().map(|d| d.view.clone()).collect();
    views.dedup();
    let multi = views.len() > 1;
    let mut seen: Vec<&str> = Vec::new();
    for d in &dumps {
        if seen.contains(&d.view.as_str()) {
            continue; // an older dump of a view already taken
        }
        seen.push(&d.view);
        for mut c in d.contention.clone() {
            if multi {
                c.site = format!("{} ({})", c.site, d.view);
            }
            report.contention.push(c);
        }
        for mut s in d.pipeline.clone() {
            if multi {
                s.stage = format!("{} ({})", s.stage, d.view);
            }
            report.pipeline.push(s);
        }
    }
}

/// Expand an input path: a directory yields its `flight-*.json` files
/// in name (= sequence) order, a file yields itself.
fn expand(path: &Path) -> std::io::Result<Vec<PathBuf>> {
    if !path.is_dir() {
        return Ok(vec![path.to_path_buf()]);
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(path)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Build a ranked report from spool directories, dump files, bench
/// JSON, and/or report JSON. Errs when a path is unreadable or when no
/// input yields any profile data.
pub fn report_from_paths(paths: &[PathBuf]) -> Result<ProfileReport, String> {
    let mut report = ProfileReport {
        source: paths
            .iter()
            .map(|p| p.display().to_string())
            .collect::<Vec<_>>()
            .join(", "),
        ..Default::default()
    };
    let mut dumps = Vec::new();
    let mut used = 0usize;
    let mut total = 0usize;
    for path in paths {
        let files = expand(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        for file in files {
            total += 1;
            let raw = match std::fs::read_to_string(&file) {
                Ok(raw) => raw,
                Err(e) => return Err(format!("cannot read {}: {e}", file.display())),
            };
            let parsed = match serde_json::from_str(&raw) {
                Ok(v) => v,
                Err(_) => {
                    // Torn dump (fault-injected or crashed mid-write).
                    report
                        .notes
                        .push(format!("skipped {}: not valid JSON", file.display()));
                    continue;
                }
            };
            if absorb(&parsed, &mut report, &mut dumps) {
                used += 1;
            } else {
                report.notes.push(format!(
                    "skipped {}: not a flight dump, bench JSON, or profile report",
                    file.display()
                ));
            }
        }
    }
    if used == 0 {
        return Err(format!(
            "no usable profile input among {total} file(s) (want flight dumps, \
             bench --json output, or profile reports)"
        ));
    }
    fold_dumps(dumps, &mut report);
    report.rank();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_obs::spool::{compose_dump, metrics_json_from};
    use pmv_obs::{HistSnapshot, LatencyHistogram, TriggerReason};
    use std::time::Duration;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pmv_profile_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn phase(values_us: &[u64]) -> HistSnapshot {
        let h = LatencyHistogram::new();
        for &us in values_us {
            h.record(Duration::from_micros(us));
        }
        h.snapshot()
    }

    #[test]
    fn flight_dump_round_trips_into_a_report() {
        let dir = scratch("roundtrip");
        let metrics = metrics_json_from(
            &[("queries", 12)],
            &[
                ("o2_probe", phase(&[40, 60])),
                ("lock_master_commit", phase(&[800, 9_000])),
                ("ttfr", phase(&[100])),
                ("lock_shard_probe", HistSnapshot::empty()),
            ],
        );
        let dump = compose_dump(
            3,
            TriggerReason::BreakerTrip,
            "pmv_t1",
            9_000,
            &[],
            &metrics,
        );
        std::fs::write(dir.join("flight-000003.json"), &dump).unwrap();

        let report = report_from_paths(std::slice::from_ref(&dir)).unwrap();
        assert_eq!(report.top_contention().unwrap().site, "lock_master_commit");
        assert_eq!(report.top_contention().unwrap().count, 2);
        assert!(report.top_contention().unwrap().wait_p99_us >= 800);
        let stages: Vec<&str> = report.pipeline.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(stages, ["o2_probe"], "ttfr and empty phases excluded");
        assert!(
            report.notes.iter().any(|n| n.contains("breaker_trip x1")),
            "{:?}",
            report.notes
        );
        let text = report.render_human();
        assert!(
            text.contains("top contention site: lock_master_commit"),
            "{text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn only_the_latest_dump_per_view_contributes() {
        let dir = scratch("latest");
        for (seq, us) in [(0u64, 100u64), (1, 100), (2, 100)] {
            let metrics = metrics_json_from(
                &[],
                // Cumulative registry: each dump has one more sample.
                &[("lock_shard_fill", phase(&vec![us; seq as usize + 1]))],
            );
            let dump = compose_dump(seq, TriggerReason::Degraded, "pmv_t1", us, &[], &metrics);
            std::fs::write(dir.join(format!("flight-{seq:06}.json")), &dump).unwrap();
        }
        let report = report_from_paths(std::slice::from_ref(&dir)).unwrap();
        assert_eq!(report.contention.len(), 1, "{:?}", report.contention);
        assert_eq!(report.contention[0].count, 3, "latest dump wins");
        assert!(report.notes.iter().any(|n| n.contains("3 flight dump(s)")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_dump_is_skipped_not_fatal() {
        let dir = scratch("torn");
        let metrics = metrics_json_from(&[], &[("lock_shard_maint", phase(&[50]))]);
        let good = compose_dump(0, TriggerReason::Quarantine, "v", 1, &[], &metrics);
        std::fs::write(dir.join("flight-000000.json"), &good).unwrap();
        // A torn write persists a prefix: no closing brace.
        std::fs::write(dir.join("flight-000001.json"), &good[..good.len() / 2]).unwrap();

        let report = report_from_paths(std::slice::from_ref(&dir)).unwrap();
        assert_eq!(report.contention.len(), 1);
        assert!(
            report.notes.iter().any(|n| n.contains("not valid JSON")),
            "{:?}",
            report.notes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_json_with_embedded_profile_parses() {
        let dir = scratch("bench");
        let bench = r#"{"bench":"concurrent_scaling","aggregate_qps":51234.5,
            "profile":{"contention":[
                {"site":"lock_master_commit","count":40,"wait_p50_us":90,
                 "wait_p99_us":4000,"wait_max_us":9000,"total_wait_us":52000},
                {"site":"lock_shard_probe","count":800,"wait_p50_us":2,
                 "wait_p99_us":40,"wait_max_us":90,"total_wait_us":4000}],
             "templates":[{"template":"t1","queries":5000,"hit_rate":0.82,
                 "ttfr_p50_us":30,"ttfr_p99_us":400,"full_p99_us":2000,
                 "o3_rows_scanned":91000,"maint_join_us":8000,
                 "bytes_resident":65536,"cost_us":420000}],
             "pipeline":[{"stage":"o3_exec","count":900,"p50_us":300,
                 "p99_us":1800,"total_us":310000},
                 {"stage":"o2_probe","count":5000,"p50_us":8,"p99_us":60,
                 "total_us":52000}]}}"#;
        let path = dir.join("bench.json");
        std::fs::write(&path, bench).unwrap();

        let report = report_from_paths(&[path]).unwrap();
        assert_eq!(report.top_contention().unwrap().site, "lock_master_commit");
        assert_eq!(report.templates[0].template, "t1");
        assert_eq!(report.pipeline[0].stage, "o3_exec", "ranked by total");
        assert!(report.pipeline[0].share_pct > report.pipeline[1].share_pct);
        assert!(
            report.notes.iter().any(|n| n.contains("51234 qps")),
            "{:?}",
            report.notes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_usable_inputs_is_an_error() {
        let dir = scratch("unusable");
        std::fs::write(dir.join("flight-000000.json"), "{\"other\":1}").unwrap();
        let err = report_from_paths(std::slice::from_ref(&dir)).unwrap_err();
        assert!(err.contains("no usable profile input"), "{err}");
        assert!(report_from_paths(&[dir.join("missing.json")]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
