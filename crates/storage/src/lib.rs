//! Storage substrate for the Partial Materialized View (PMV) reproduction.
//!
//! The paper (Luo, "Partial Materialized Views", ICDE 2007) prototypes its
//! technique inside PostgreSQL. This crate provides the storage layer of the
//! in-memory RDBMS substrate we build instead: typed values, relation
//! schemas, tuples, slotted heap relations with stable row identifiers, a
//! catalog, and delta capture for change propagation (the paper's `ΔR`).
//!
//! Everything is deliberately simple and allocation-conscious: tuples are
//! boxed slices of [`Value`]s, strings are reference-counted so tuple clones
//! are cheap, and every structure can report its heap footprint so the PMV
//! layer can enforce the paper's storage bound `UB`.

pub mod catalog;
pub mod delta;
pub mod error;
pub mod relation;
pub mod schema;
pub mod size;
pub mod tuple;
pub mod value;

pub use catalog::{relation_snapshot, with_relation_mut, Catalog, RelationHandle};
pub use delta::{Delta, DeltaBatch};
pub use error::StorageError;
pub use relation::{HeapRelation, RowId};
pub use schema::{Column, ColumnType, Schema};
pub use size::HeapSize;
pub use tuple::Tuple;
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
