//! Plain LRU, included for the paper's stated future work ("identify other
//! algorithms that perform better than both CLOCK and 2Q", Section 4.1).

use std::collections::{BTreeMap, HashMap};
use std::fmt::Debug;
use std::hash::Hash;

use crate::{AdmitOutcome, ReplacementPolicy};

/// Least-recently-used over a logical access clock.
pub struct LruPolicy<K> {
    /// key → last-access stamp.
    stamps: HashMap<K, u64>,
    /// stamp → key (stamps are unique).
    order: BTreeMap<u64, K>,
    clock: u64,
    capacity: usize,
}

impl<K: Clone + Eq + Hash + Debug> LruPolicy<K> {
    /// LRU with `capacity` resident entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruPolicy {
            stamps: HashMap::with_capacity(capacity),
            order: BTreeMap::new(),
            clock: 0,
            capacity,
        }
    }

    fn bump(&mut self, key: &K) {
        if let Some(stamp) = self.stamps.get_mut(key) {
            self.order.remove(stamp);
            self.clock += 1;
            *stamp = self.clock;
            self.order.insert(self.clock, key.clone());
        }
    }
}

impl<K: Clone + Eq + Hash + Debug> ReplacementPolicy<K> for LruPolicy<K> {
    fn contains(&self, key: &K) -> bool {
        self.stamps.contains_key(key)
    }

    fn touch(&mut self, key: &K) {
        self.bump(key);
    }

    fn admit(&mut self, key: K) -> AdmitOutcome<K> {
        if self.stamps.contains_key(&key) {
            self.bump(&key);
            return AdmitOutcome::Resident { evicted: vec![] };
        }
        let mut evicted = Vec::new();
        if self.stamps.len() == self.capacity {
            let (&oldest, _) = self.order.iter().next().expect("non-empty at capacity");
            let victim = self.order.remove(&oldest).expect("stamp present");
            self.stamps.remove(&victim);
            evicted.push(victim);
        }
        self.clock += 1;
        self.stamps.insert(key.clone(), self.clock);
        self.order.insert(self.clock, key);
        AdmitOutcome::Resident { evicted }
    }

    fn remove(&mut self, key: &K) {
        if let Some(stamp) = self.stamps.remove(key) {
            self.order.remove(&stamp);
        }
    }

    fn resident_count(&self) -> usize {
        self.stamps.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resident_keys(&self) -> Vec<K> {
        self.order.values().cloned().collect()
    }

    fn name(&self) -> &'static str {
        "LRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recent() {
        let mut l = LruPolicy::new(2);
        l.admit(1u32);
        l.admit(2);
        let out = l.admit(3);
        assert_eq!(out.evicted(), &[1]);
        assert!(l.contains(&2) && l.contains(&3));
    }

    #[test]
    fn touch_refreshes_recency() {
        let mut l = LruPolicy::new(2);
        l.admit(1u32);
        l.admit(2);
        l.touch(&1);
        let out = l.admit(3);
        assert_eq!(out.evicted(), &[2]);
    }

    #[test]
    fn readmit_refreshes_without_eviction() {
        let mut l = LruPolicy::new(2);
        l.admit(1u32);
        l.admit(2);
        assert_eq!(l.admit(1), AdmitOutcome::Resident { evicted: vec![] });
        let out = l.admit(3);
        assert_eq!(out.evicted(), &[2]);
    }

    #[test]
    fn remove_then_refill() {
        let mut l = LruPolicy::new(2);
        l.admit(1u32);
        l.admit(2);
        l.remove(&1);
        assert_eq!(l.resident_count(), 1);
        assert_eq!(l.admit(3).evicted(), &[] as &[u32]);
    }

    #[test]
    fn resident_keys_in_lru_order() {
        let mut l = LruPolicy::new(3);
        l.admit(1u32);
        l.admit(2);
        l.admit(3);
        l.touch(&1);
        assert_eq!(l.resident_keys(), vec![2, 3, 1]);
    }
}
