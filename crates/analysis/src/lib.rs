//! # pmv-analysis — static analysis for the PMV system
//!
//! This crate is the analysis umbrella described in DESIGN.md §12. It
//! has two halves:
//!
//! 1. **Template verifier** (`verify` — re-exported from
//!    [`pmv_core::verify`]). Registration-time checks that a
//!    [`pmv_core::ViewDef`]'s template, discretizers and maintenance
//!    filter satisfy the paper's soundness preconditions *without
//!    executing anything*, producing typed diagnostics PMV001–PMV006.
//!    The verifier lives in `pmv-core` so `PmvManager::register` can
//!    call it without a dependency cycle; this crate re-exports it as
//!    the analysis entry point and houses the corpus and property
//!    tests that pin its behaviour.
//!
//! 2. **Source lint pass** ([`lint`], driven by the `pmv-lint` binary).
//!    Repo-specific concurrency rules over `crates/**` source text:
//!    no shard write guard held across executor calls, no lock
//!    acquisition inside `catch_unwind` closures, DB-before-shard lock
//!    order, and no `Relaxed` atomics outside designated statistics
//!    modules.
//!
//! 3. **Interprocedural protocol analyzer** ([`rules_ipa`], driven by
//!    the `pmv-analyze` binary). Builds a workspace call graph
//!    ([`graph`]) and per-function fact summaries ([`summaries`]), then
//!    verifies the lock/pin/durability contracts *across* function
//!    boundaries: every file-local rule re-checked one-or-more calls
//!    deep, plus `pin_reaches_blocking_lock`, `dio_funnel_reach` and
//!    `durable_before_visible` (DESIGN.md §17). Reports render as text
//!    or SARIF 2.1.0 ([`sarif`]).
//!
//! Run the passes with:
//!
//! ```text
//! cargo run -p pmv-analysis --bin pmv-lint    -- [--json] [--deny-warnings] [paths…]
//! cargo run -p pmv-analysis --bin pmv-analyze -- [--json] [--sarif FILE] [--deny-warnings] [paths…]
//! ```

pub mod graph;
pub mod lint;
pub mod rules_ipa;
pub mod sarif;
pub mod summaries;

pub use pmv_core::verify::{
    estimate_tuple_bytes, verify_def, verify_parts, DiagCode, Diagnostic, FilterSpec, Severity,
    VerifyOptions, VerifyPolicy, VerifyReport,
};
