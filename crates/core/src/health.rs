//! Failure model: per-view circuit breaker and degradation semantics.
//!
//! The PMV's value proposition is answering in microseconds from the
//! cache even when the full query (O3) is slow — which makes the serving
//! path *least* allowed to fail exactly when the underlying executor is
//! misbehaving. This module gives every view an explicit health state
//! machine instead of letting errors surface as panics or poisoned locks:
//!
//! ```text
//!            error rate ≥ degrade        error rate ≥ quarantine
//!  Healthy ───────────────────▶ Degraded ──────────────────────▶ Quarantined
//!     ▲ ◀──────────────────────────┘                                  │
//!     │        rate recovers                                          │
//!     └──────────────────────── revalidate (reset) ◀──────────────────┘
//! ```
//!
//! * **Healthy** — serve partials, fill the cache, business as usual.
//! * **Degraded** — still serving, but the windowed error rate crossed
//!   the degrade threshold; operators should look. Recovers on its own
//!   when the rate falls back under the threshold.
//! * **Quarantined** — the error rate crossed the quarantine threshold
//!   (or a shard was drained after a panic). **No partial results are
//!   ever served from a quarantined view** and nothing is cached; queries
//!   still get full, correct answers straight from O3. Quarantine is
//!   sticky: only an explicit [`CircuitBreaker::reset`] — issued by the
//!   `revalidate` repair path once the cache is known-consistent again —
//!   returns the view to Healthy.
//!
//! The breaker is driven by per-query success/failure events recorded
//! with relaxed atomics; it is statistics, not synchronization, so a
//! racy read deciding one query's state a moment late is acceptable —
//! except for the quarantine bit, which only ever rises until reset, so
//! "never serve from Quarantined" holds under any interleaving.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// Health of one view (or one shard group) as seen by the breaker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViewHealth {
    /// Normal operation.
    Healthy,
    /// Elevated error rate; serving continues, flagged.
    Degraded,
    /// Serving from the cache is disabled until revalidation.
    Quarantined,
}

impl ViewHealth {
    /// Stable lowercase name (CLI / report output).
    pub fn as_str(&self) -> &'static str {
        match self {
            ViewHealth::Healthy => "healthy",
            ViewHealth::Degraded => "degraded",
            ViewHealth::Quarantined => "quarantined",
        }
    }
}

impl std::fmt::Display for ViewHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tuning for the [`CircuitBreaker`].
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Rolling window length in events; once reached, counts are halved
    /// so old history decays instead of pinning the rate forever.
    pub window: u64,
    /// Windowed error fraction at which Healthy trips to Degraded.
    pub degrade_threshold: f64,
    /// Windowed error fraction at which the view trips to Quarantined.
    pub quarantine_threshold: f64,
    /// Minimum events before any trip decision (avoids quarantining a
    /// fresh view on its first hiccup).
    pub min_events: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 64,
            degrade_threshold: 0.1,
            quarantine_threshold: 0.5,
            min_events: 8,
        }
    }
}

const STATE_HEALTHY: u8 = 0;
const STATE_DEGRADED: u8 = 1;
const STATE_QUARANTINED: u8 = 2;

/// Error-rate-driven state machine guarding one view's serving path.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: AtomicU8,
    events: AtomicU64,
    errors: AtomicU64,
    /// Times the breaker entered Quarantined.
    trips: AtomicU64,
}

impl CircuitBreaker {
    /// Fresh breaker in the Healthy state.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: AtomicU8::new(STATE_HEALTHY),
            events: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            trips: AtomicU64::new(0),
        }
    }

    /// Current state.
    pub fn state(&self) -> ViewHealth {
        match self.state.load(Ordering::Relaxed) {
            STATE_HEALTHY => ViewHealth::Healthy,
            STATE_DEGRADED => ViewHealth::Degraded,
            _ => ViewHealth::Quarantined,
        }
    }

    /// May the cache serve partial results right now? `false` iff
    /// Quarantined.
    pub fn allow_serve(&self) -> bool {
        self.state.load(Ordering::Relaxed) != STATE_QUARANTINED
    }

    /// Windowed error fraction (diagnostic).
    pub fn error_rate(&self) -> f64 {
        let events = self.events.load(Ordering::Relaxed);
        if events == 0 {
            0.0
        } else {
            self.errors.load(Ordering::Relaxed) as f64 / events as f64
        }
    }

    /// Times the breaker has entered Quarantined.
    pub fn trip_count(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Record a successful query.
    pub fn record_ok(&self) {
        self.record(true);
    }

    /// Record a failed/degraded query.
    pub fn record_error(&self) {
        self.record(false);
    }

    /// Jump straight to Quarantined (e.g. a shard was drained after a
    /// panic and the cached working set is gone).
    pub fn force_quarantine(&self) {
        if self.state.swap(STATE_QUARANTINED, Ordering::Relaxed) != STATE_QUARANTINED {
            self.trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Return to Healthy with cleared counters. Only the revalidation
    /// path may call this — it is the one operation that re-establishes
    /// cache consistency.
    pub fn reset(&self) {
        self.events.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.state.store(STATE_HEALTHY, Ordering::Relaxed);
    }

    fn record(&self, ok: bool) {
        let events = self.events.fetch_add(1, Ordering::Relaxed) + 1;
        let errors = if ok {
            self.errors.load(Ordering::Relaxed)
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed) + 1
        };
        if events >= self.config.min_events {
            let rate = errors as f64 / events as f64;
            if rate >= self.config.quarantine_threshold {
                self.force_quarantine();
            } else if rate >= self.config.degrade_threshold {
                // Only Healthy → Degraded; never lowers Quarantined.
                let _ = self.state.compare_exchange(
                    STATE_HEALTHY,
                    STATE_DEGRADED,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            } else {
                // Rate recovered; Degraded heals, Quarantined stays.
                let _ = self.state.compare_exchange(
                    STATE_DEGRADED,
                    STATE_HEALTHY,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
        }
        // Decay: halving keeps the rate a rolling estimate.
        if events >= self.config.window {
            self.events.store(events / 2, Ordering::Relaxed);
            self.errors.store(errors / 2, Ordering::Relaxed);
        }
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

/// Why a query outcome is flagged degraded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// O3 ran past its wall-clock deadline.
    Deadline,
    /// O3 hit its tuple-examination cap.
    TupleBudget,
    /// The executor panicked mid-O3 (caught; no lock poisoned).
    ExecPanic,
    /// The executor returned a transient error.
    ExecError,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DegradeReason::Deadline => "deadline",
            DegradeReason::TupleBudget => "tuple-budget",
            DegradeReason::ExecPanic => "exec-panic",
            DegradeReason::ExecError => "exec-error",
        };
        f.write_str(s)
    }
}

/// Attached to a [`crate::pipeline::QueryOutcome`] whose `remaining` half
/// is missing: O3 did not complete, so the caller got only the cached
/// partial results (which are always a sub-multiset of the true answer —
/// sound, but possibly incomplete).
#[derive(Clone, Copy, Debug)]
pub struct Degradation {
    /// What cut O3 short.
    pub reason: DegradeReason,
    /// `true`: only O2 partials were returned; the remaining results are
    /// absent. (Always true today; kept explicit for future modes that
    /// return a truncated O3 prefix.)
    pub partial_only: bool,
    /// Upper bound on how stale the served partials may be: time since
    /// the view last completed maintenance or revalidation. Under the
    /// maintain-before-visibility contract this is an upper bound, not an
    /// observed staleness.
    pub staleness: Duration,
}

/// One shard's (or store's) invariant-check result.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index (0 for an unsharded store).
    pub shard: usize,
    /// Whether the shard is currently quarantined (drained).
    pub quarantined: bool,
    /// Invariant violations found; empty means consistent.
    pub violations: Vec<String>,
}

/// Typed result of a non-panicking consistency check across a view.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// Per-shard findings.
    pub shards: Vec<ShardReport>,
}

impl ValidationReport {
    /// True when no shard reported a violation.
    pub fn is_consistent(&self) -> bool {
        self.shards.iter().all(|s| s.violations.is_empty())
    }

    /// Total violations across shards.
    pub fn violation_count(&self) -> usize {
        self.shards.iter().map(|s| s.violations.len()).sum()
    }

    /// Shards currently quarantined.
    pub fn quarantined_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.quarantined).count()
    }
}

impl std::fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_consistent() {
            write!(
                f,
                "consistent ({} shards, {} quarantined)",
                self.shards.len(),
                self.quarantined_shards()
            )
        } else {
            writeln!(f, "{} violation(s):", self.violation_count())?;
            for s in &self.shards {
                for v in &s.violations {
                    writeln!(f, "  shard {}: {}", s.shard, v)?;
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_until_min_events() {
        let b = CircuitBreaker::new(BreakerConfig {
            min_events: 8,
            ..Default::default()
        });
        for _ in 0..7 {
            b.record_error();
        }
        assert_eq!(b.state(), ViewHealth::Healthy, "below min_events");
        b.record_error();
        assert_eq!(b.state(), ViewHealth::Quarantined);
        assert_eq!(b.trip_count(), 1);
    }

    #[test]
    fn degraded_heals_on_recovery() {
        let b = CircuitBreaker::new(BreakerConfig {
            window: 16,
            degrade_threshold: 0.2,
            quarantine_threshold: 0.9,
            min_events: 4,
        });
        for _ in 0..3 {
            b.record_ok();
        }
        b.record_error();
        assert_eq!(b.state(), ViewHealth::Degraded); // 1/4 ≥ 0.2
        for _ in 0..20 {
            b.record_ok();
        }
        assert_eq!(b.state(), ViewHealth::Healthy);
    }

    #[test]
    fn quarantine_is_sticky_until_reset() {
        let b = CircuitBreaker::default();
        b.force_quarantine();
        assert!(!b.allow_serve());
        for _ in 0..1000 {
            b.record_ok();
        }
        assert_eq!(
            b.state(),
            ViewHealth::Quarantined,
            "ok events never lift it"
        );
        assert!(!b.allow_serve());
        b.reset();
        assert_eq!(b.state(), ViewHealth::Healthy);
        assert!(b.allow_serve());
        assert_eq!(b.error_rate(), 0.0);
    }

    #[test]
    fn window_decay_halves_counts() {
        let b = CircuitBreaker::new(BreakerConfig {
            window: 8,
            degrade_threshold: 2.0, // never trip in this test
            quarantine_threshold: 2.0,
            min_events: 1,
        });
        for _ in 0..8 {
            b.record_error();
        }
        // Counts halved at the window boundary: rate still 1.0.
        assert!((b.error_rate() - 1.0).abs() < 1e-9);
        for _ in 0..4 {
            b.record_ok();
        }
        assert!(b.error_rate() < 1.0);
    }

    #[test]
    fn report_formats() {
        let mut r = ValidationReport::default();
        r.shards.push(ShardReport {
            shard: 0,
            quarantined: false,
            violations: vec![],
        });
        assert!(r.is_consistent());
        assert!(r.to_string().contains("consistent"));
        r.shards.push(ShardReport {
            shard: 1,
            quarantined: true,
            violations: vec!["entry over F".into()],
        });
        assert!(!r.is_consistent());
        assert_eq!(r.violation_count(), 1);
        assert_eq!(r.quarantined_shards(), 1);
        assert!(r.to_string().contains("shard 1"));
    }
}
