//! Read views over the database: the abstraction the executor runs on.
//!
//! The executor does not care whether it reads the live [`Database`]
//! (single-writer callers, the locked escape hatch) or an immutable
//! [`DbSnapshot`] published by the epoch serving path — it only needs
//! relation versions, index handles, and statistics. [`DataView`]
//! captures exactly that surface. Both implementations hand out
//! `Arc<HeapRelation>` / `Arc<AnyIndex>` versions, so once the executor
//! has resolved its inputs **no lock is held for the rest of the
//! query**: O3 runs entirely on immutable data.
//!
//! A [`DbSnapshot`] additionally carries the database's `version` as its
//! **epoch**: the number the serving path pins, gates cache fills by,
//! and reasons about staleness with (DESIGN.md §14).

use std::collections::BTreeMap;
use std::sync::Arc;

use pmv_index::{AnyIndex, IndexDef};
use pmv_storage::{HeapRelation, Schema, StorageError};

use crate::engine::Database;
use crate::table_stats::TableStats;
use crate::Result;

/// A consistent read surface: everything the executor needs to run a
/// query, resolvable to immutable `Arc` versions.
pub trait DataView {
    /// Current published version of `relation`. The returned `Arc` is
    /// immutable; scanning it requires no lock.
    fn relation_version(&self, relation: &str) -> Result<Arc<HeapRelation>>;

    /// `Arc` handle to the first index on exactly `(relation, columns)`.
    fn index_arc(&self, relation: &str, columns: &[usize]) -> Option<Arc<AnyIndex>>;

    /// Table statistics, if collected.
    fn stats_view(&self) -> Option<&TableStats>;

    /// The version/epoch this view reads at.
    fn view_epoch(&self) -> u64;

    /// Declared unique keys of `relation` (column-index sets), empty
    /// when none are declared or the view carries no key metadata.
    /// Views that do carry it let the serving path prove a template
    /// emits duplicate-free results
    /// ([`crate::QueryTemplate::emits_unique_rows`]).
    fn unique_keys_view(&self, relation: &str) -> &[Vec<usize>] {
        let _ = relation;
        &[]
    }
}

impl DataView for Database {
    fn relation_version(&self, relation: &str) -> Result<Arc<HeapRelation>> {
        let handle = self.relation(relation)?;
        Ok(pmv_storage::relation_snapshot(&handle))
    }

    fn index_arc(&self, relation: &str, columns: &[usize]) -> Option<Arc<AnyIndex>> {
        Database::index_arc(self, relation, columns)
    }

    fn stats_view(&self) -> Option<&TableStats> {
        self.table_stats()
    }

    fn view_epoch(&self) -> u64 {
        self.version()
    }

    fn unique_keys_view(&self, relation: &str) -> &[Vec<usize>] {
        self.unique_keys(relation)
    }
}

/// An immutable snapshot of the whole database at one version: the unit
/// the epoch serving path publishes and queries pin. The relation map
/// and index list are themselves behind `Arc`s, so cloning a snapshot —
/// and, more importantly, publishing a new one that reuses the previous
/// snapshot's entries for untouched relations
/// ([`Database::publish_snapshot`]) — costs a handful of pointer clones
/// regardless of how many relations the catalog holds.
#[derive(Clone)]
pub struct DbSnapshot {
    relations: Arc<BTreeMap<String, Arc<HeapRelation>>>,
    indexes: Arc<Vec<(IndexDef, Arc<AnyIndex>)>>,
    unique_keys: Arc<BTreeMap<String, Vec<Vec<usize>>>>,
    stats: Option<Arc<TableStats>>,
    epoch: u64,
}

impl DbSnapshot {
    pub(crate) fn new(
        relations: Arc<BTreeMap<String, Arc<HeapRelation>>>,
        indexes: Arc<Vec<(IndexDef, Arc<AnyIndex>)>>,
        unique_keys: Arc<BTreeMap<String, Vec<Vec<usize>>>>,
        stats: Option<Arc<TableStats>>,
        epoch: u64,
    ) -> Self {
        DbSnapshot {
            relations,
            indexes,
            unique_keys,
            stats,
            epoch,
        }
    }

    /// The database version this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Schema of `relation`.
    pub fn schema(&self, relation: &str) -> Result<Schema> {
        Ok(self.relation_version(relation)?.schema().clone())
    }

    /// Number of live tuples in `relation`.
    pub fn len(&self, relation: &str) -> Result<usize> {
        Ok(self.relation_version(relation)?.len())
    }

    /// True when the snapshot holds no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Definitions of every index captured by the snapshot. Checkpoint
    /// serialization records these (indexes themselves are derived
    /// state, rebuilt on recovery).
    pub fn index_defs(&self) -> Vec<IndexDef> {
        self.indexes.iter().map(|(d, _)| d.clone()).collect()
    }

    /// Shared handle to the relation map (incremental publish reuses it).
    pub(crate) fn relations_arc(&self) -> &Arc<BTreeMap<String, Arc<HeapRelation>>> {
        &self.relations
    }

    /// Shared handle to the index list (incremental publish reuses it).
    pub(crate) fn indexes_arc(&self) -> &Arc<Vec<(IndexDef, Arc<AnyIndex>)>> {
        &self.indexes
    }
}

impl DataView for DbSnapshot {
    fn relation_version(&self, relation: &str) -> Result<Arc<HeapRelation>> {
        self.relations
            .get(relation)
            .cloned()
            .ok_or_else(|| StorageError::UnknownRelation(relation.to_string()).into())
    }

    fn index_arc(&self, relation: &str, columns: &[usize]) -> Option<Arc<AnyIndex>> {
        self.indexes
            .iter()
            .find(|(d, _)| d.relation == relation && d.columns == columns)
            .map(|(_, i)| Arc::clone(i))
    }

    fn stats_view(&self) -> Option<&TableStats> {
        self.stats.as_deref()
    }

    fn view_epoch(&self) -> u64 {
        self.epoch
    }

    fn unique_keys_view(&self, relation: &str) -> &[Vec<usize>] {
        self.unique_keys.get(relation).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_index::IndexDef;
    use pmv_storage::{tuple, Column, ColumnType, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ],
        ))
        .unwrap();
        db.load("r", (0..5i64).map(|i| tuple![i, i * 10])).unwrap();
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        db
    }

    #[test]
    fn snapshot_is_a_frozen_version() {
        let mut db = db();
        let snap = db.snapshot();
        let epoch = snap.epoch();
        db.insert("r", tuple![99i64, 990i64]).unwrap();
        // The pinned snapshot still reads the old version (relation and
        // index alike) while the live database moved on.
        assert_eq!(snap.len("r").unwrap(), 5);
        assert_eq!(db.len("r").unwrap(), 6);
        assert_eq!(snap.epoch(), epoch);
        assert!(db.version() > epoch);
        let idx = snap.index_arc("r", &[0]).unwrap();
        assert!(idx.probe(&[pmv_storage::Value::Int(99)]).is_empty());
        let live_idx = DataView::index_arc(&db, "r", &[0]).unwrap();
        assert_eq!(live_idx.probe(&[pmv_storage::Value::Int(99)]).len(), 1);
    }

    #[test]
    fn snapshot_cost_is_pointer_clones() {
        let db = db();
        let a = db.snapshot();
        let b = db.snapshot();
        // Same published versions — no tuple data copied.
        assert!(Arc::ptr_eq(
            &a.relation_version("r").unwrap(),
            &b.relation_version("r").unwrap()
        ));
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.relation_names(), vec!["r".to_string()]);
    }

    #[test]
    fn unknown_relation_errors() {
        let snap = db().snapshot();
        assert!(snap.relation_version("nope").is_err());
        assert!(snap.index_arc("r", &[1]).is_none());
    }
}
