//! Baselines: the traditional (large) materialized view of Section 2.2
//! and the "small MVs for hot pairs" strawman of Section 2.3.
//!
//! Both are used by the benchmarks to reproduce the paper's comparisons:
//! the large MV shows the storage blow-up PMVs avoid (Table-1-style size
//! accounting, Figures 11/12 maintenance costs), and the small-MV set
//! shows why minimizing *execution time* was the wrong goal for hot
//! results.

use std::collections::HashMap;

use pmv_query::{exec::full_join, exec::join_from, Database, QueryInstance, QueryTemplate};
use pmv_storage::{Delta, DeltaBatch, HeapSize, Tuple};

use crate::bcp::BcpKey;
use crate::view::PartialViewDef;
use crate::Result;

/// Maintenance work counters for a traditional MV, in the same units the
/// PMV reports (joins computed, rows touched) so the two are comparable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MvMaintenanceStats {
    /// ΔR joins computed (one per insert *and* per delete — unlike a PMV,
    /// an MV must act on inserts too).
    pub joins_computed: usize,
    /// View rows added.
    pub rows_added: usize,
    /// View rows removed.
    pub rows_removed: usize,
}

/// A fully materialized join view `V_M` (the containing MV of a PMV):
/// stores *all* `Ls'`-layout join results and maintains them immediately
/// on every base-relation change.
pub struct TraditionalMv {
    template: std::sync::Arc<QueryTemplate>,
    /// Multiset of view rows.
    rows: HashMap<Tuple, usize>,
    row_count: usize,
    bytes: usize,
    stats: MvMaintenanceStats,
}

impl TraditionalMv {
    /// Materialize the view from the database's current contents.
    pub fn materialize(db: &Database, template: std::sync::Arc<QueryTemplate>) -> Result<Self> {
        let (all, _) = full_join(db, &template)?;
        let mut mv = TraditionalMv {
            template,
            rows: HashMap::with_capacity(all.len()),
            row_count: 0,
            bytes: 0,
            stats: MvMaintenanceStats::default(),
        };
        for t in all {
            mv.add_row(t);
        }
        Ok(mv)
    }

    fn add_row(&mut self, t: Tuple) {
        self.bytes += std::mem::size_of::<Tuple>() + t.heap_size();
        *self.rows.entry(t).or_insert(0) += 1;
        self.row_count += 1;
    }

    fn remove_row(&mut self, t: &Tuple) -> bool {
        match self.rows.get_mut(t) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    self.rows.remove(t);
                }
                self.row_count -= 1;
                self.bytes -= std::mem::size_of::<Tuple>() + t.heap_size();
                true
            }
            _ => false,
        }
    }

    /// Number of view rows (multiset cardinality).
    pub fn len(&self) -> usize {
        self.row_count
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// Approximate bytes stored.
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Maintenance counters so far.
    pub fn stats(&self) -> MvMaintenanceStats {
        self.stats
    }

    /// Answer a query from the view alone by filtering on `Cselect`
    /// (possible because the view keeps `Ls'`, which includes all
    /// condition attributes). Returns `Ls'`-layout tuples.
    pub fn answer(&self, q: &QueryInstance) -> Vec<Tuple> {
        let mut out = Vec::new();
        for (t, &n) in &self.rows {
            if q.matches_select(t) {
                for _ in 0..n {
                    out.push(t.clone());
                }
            }
        }
        out
    }

    /// Immediate maintenance: unlike a PMV, *every* change — including
    /// inserts — forces a ΔR join and view update.
    pub fn maintain(&mut self, db: &Database, batch: &DeltaBatch) -> Result<()> {
        let Some(rel_idx) = self
            .template
            .relations()
            .iter()
            .position(|r| r == batch.relation())
        else {
            return Ok(());
        };
        for delta in batch.deltas() {
            match delta {
                Delta::Insert { tuple, .. } => {
                    self.stats.joins_computed += 1;
                    for row in join_from(db, &self.template, rel_idx, tuple)? {
                        self.add_row(row);
                        self.stats.rows_added += 1;
                    }
                }
                Delta::Delete { tuple, .. } => {
                    self.stats.joins_computed += 1;
                    for row in join_from(db, &self.template, rel_idx, tuple)? {
                        if self.remove_row(&row) {
                            self.stats.rows_removed += 1;
                        }
                    }
                }
                Delta::Update { old, new, .. } => {
                    self.stats.joins_computed += 2;
                    for row in join_from(db, &self.template, rel_idx, old)? {
                        if self.remove_row(&row) {
                            self.stats.rows_removed += 1;
                        }
                    }
                    for row in join_from(db, &self.template, rel_idx, new)? {
                        self.add_row(row);
                        self.stats.rows_added += 1;
                    }
                }
            }
        }
        Ok(())
    }
}

/// The Section 2.3 strawman: one small MV per designated hot bcp, fully
/// materialized (every matching tuple, not capped at `F`), with a fixed
/// bcp set (no replacement).
pub struct SmallMvSet {
    def: PartialViewDef,
    views: HashMap<BcpKey, Vec<Tuple>>,
}

impl SmallMvSet {
    /// Materialize a small MV for each listed hot bcp.
    pub fn materialize(db: &Database, def: PartialViewDef, hot: &[BcpKey]) -> Result<Self> {
        let template = def.template().clone();
        let (all, _) = full_join(db, &template)?;
        let mut views: HashMap<BcpKey, Vec<Tuple>> =
            hot.iter().map(|b| (b.clone(), Vec::new())).collect();
        for t in all {
            let bcp = def.bcp_of_tuple(&t);
            if let Some(v) = views.get_mut(&bcp) {
                v.push(t);
            }
        }
        Ok(SmallMvSet { def, views })
    }

    /// The view definition used for bcp recovery.
    pub fn def(&self) -> &PartialViewDef {
        &self.def
    }

    /// Number of small views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// All tuples cached for `bcp`, if it is one of the hot bcps.
    pub fn lookup(&self, bcp: &BcpKey) -> Option<&[Tuple]> {
        self.views.get(bcp).map(Vec::as_slice)
    }

    /// Total bytes across the small views.
    pub fn byte_size(&self) -> usize {
        self.views
            .values()
            .flatten()
            .map(|t| std::mem::size_of::<Tuple>() + t.heap_size())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcp::BcpDim;
    use pmv_index::IndexDef;
    use pmv_query::{Condition, TemplateBuilder};
    use pmv_storage::{tuple, Column, ColumnType, Schema, Value};
    use std::sync::Arc;

    fn setup() -> (Database, Arc<QueryTemplate>) {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("c", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(Schema::new(
            "s",
            vec![
                Column::new("d", ColumnType::Int),
                Column::new("e", ColumnType::Int),
                Column::new("g", ColumnType::Int),
            ],
        ))
        .unwrap();
        db.load(
            "r",
            vec![
                tuple![1i64, 4i64, 1i64],
                tuple![1i64, 5i64, 1i64],
                tuple![7i64, 6i64, 3i64],
            ],
        )
        .unwrap();
        db.load(
            "s",
            vec![
                tuple![4i64, 2i64, 7i64],
                tuple![5i64, 2i64, 7i64],
                tuple![6i64, 8i64, 9i64],
            ],
        )
        .unwrap();
        db.create_index(IndexDef::btree("r", vec![1])).unwrap(); // R.c
        db.create_index(IndexDef::btree("s", vec![0])).unwrap(); // S.d
        let t = TemplateBuilder::new("Eqt")
            .relation(db.schema("r").unwrap())
            .relation(db.schema("s").unwrap())
            .join("r", "c", "s", "d")
            .unwrap()
            .select("r", "a")
            .unwrap()
            .select("s", "e")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .cond_eq("s", "g")
            .unwrap()
            .build()
            .unwrap();
        (db, t)
    }

    #[test]
    fn materialize_matches_figure2() {
        let (db, t) = setup();
        let mv = TraditionalMv::materialize(&db, t).unwrap();
        // Figure 2's V_M: three rows (1,2,1,7), (1,2,1,7), (7,8,3,9).
        assert_eq!(mv.len(), 3);
        assert!(mv.byte_size() > 0);
    }

    #[test]
    fn answer_filters_by_cselect() {
        let (db, t) = setup();
        let mv = TraditionalMv::materialize(&db, Arc::clone(&t)).unwrap();
        let q = t
            .bind(vec![
                Condition::Equality(vec![Value::Int(1)]),
                Condition::Equality(vec![Value::Int(7)]),
            ])
            .unwrap();
        let rows = mv.answer(&q);
        assert_eq!(rows.len(), 2); // the duplicate (1,2,1,7) pair
    }

    #[test]
    fn mv_maintains_on_insert_and_delete() {
        let (mut db, t) = setup();
        let mut mv = TraditionalMv::materialize(&db, Arc::clone(&t)).unwrap();
        // Insert a new S tuple matching R.c = 6.
        let delta = db.insert("s", tuple![6i64, 99i64, 9i64]).unwrap();
        let mut batch = DeltaBatch::new("s");
        batch.push(delta);
        mv.maintain(&db, &batch).unwrap();
        assert_eq!(mv.len(), 4);
        assert_eq!(mv.stats().rows_added, 1);

        // Delete an R tuple; its single view row must disappear.
        let handle = db.relation("r").unwrap();
        let row = handle
            .read()
            .iter()
            .find(|(_, t)| t.get(0) == &Value::Int(7))
            .map(|(r, _)| r)
            .unwrap();
        let delta = db.delete("r", row).unwrap();
        let mut batch = DeltaBatch::new("r");
        batch.push(delta);
        mv.maintain(&db, &batch).unwrap();
        // Removed both (7,8,...) and (7,99,...) rows.
        assert_eq!(mv.len(), 2);
        assert_eq!(mv.stats().rows_removed, 2);
        // MV had to compute a join even for the insert — the overhead the
        // PMV avoids.
        assert_eq!(mv.stats().joins_computed, 2);
    }

    #[test]
    fn small_mv_set_holds_only_hot_bcps() {
        let (db, t) = setup();
        let def = PartialViewDef::all_equality("v", t).unwrap();
        let hot = BcpKey::new(vec![BcpDim::Eq(Value::Int(1)), BcpDim::Eq(Value::Int(7))]);
        let cold = BcpKey::new(vec![BcpDim::Eq(Value::Int(3)), BcpDim::Eq(Value::Int(9))]);
        let set = SmallMvSet::materialize(&db, def, std::slice::from_ref(&hot)).unwrap();
        assert_eq!(set.view_count(), 1);
        // Unlike a PMV, the small MV stores *all* matching tuples.
        assert_eq!(set.lookup(&hot).unwrap().len(), 2);
        assert!(set.lookup(&cold).is_none());
        assert!(set.byte_size() > 0);
    }
}
