//! `pmv-cli` — interactive shell for the PMV system.
//!
//! ```bash
//! cargo run --release -p pmv-cli              # interactive
//! cargo run --release -p pmv-cli script.pmv   # run a command script
//! cargo run --release -p pmv-cli -- --fault-plan 'seed=42;exec-row:error@0.01' script.pmv
//! cargo run --release -p pmv-cli -- --snapshot-mode=epoch   # wait-free serving path
//! cargo run --release -p pmv-cli -- --data-dir ./pmvdata    # durable: WAL + checkpoints
//! ```
//!
//! Without `--data-dir` the session is pure in-memory (no WAL, no
//! fsync, zero durability overhead). With it, the session recovers the
//! newest checkpoint plus the WAL tail at startup and the `checkpoint`
//! command persists the current state.
//!
//! Exit codes (script mode): 0 success, 1 I/O, 2 usage, 3 storage error,
//! 4 query error, 5 PMV error, 6 durability error — see
//! [`pmv_cli::CliError`].

use std::io::{BufRead, Write};

use pmv_cli::{CliError, Session, SnapshotMode};

fn main() {
    let mut script_path: Option<String> = None;
    let mut fault_plan: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut mode = SnapshotMode::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(dir) = arg.strip_prefix("--data-dir=") {
            data_dir = Some(dir.to_string());
        } else if arg == "--data-dir" {
            match args.next() {
                Some(dir) => data_dir = Some(dir),
                None => {
                    eprintln!("--data-dir needs a directory path");
                    std::process::exit(2);
                }
            }
        } else if let Some(spec) = arg.strip_prefix("--fault-plan=") {
            fault_plan = Some(spec.to_string());
        } else if arg == "--fault-plan" {
            match args.next() {
                Some(spec) => fault_plan = Some(spec),
                None => {
                    eprintln!("--fault-plan needs a spec, e.g. 'seed=42;exec-row:error@0.01'");
                    std::process::exit(2);
                }
            }
        } else if let Some(m) = arg.strip_prefix("--snapshot-mode=") {
            mode = m.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
        } else if arg == "--snapshot-mode" {
            match args.next().as_deref().map(str::parse) {
                Some(Ok(m)) => mode = m,
                Some(Err(e)) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--snapshot-mode needs 'locked' or 'epoch'");
                    std::process::exit(2);
                }
            }
        } else if arg.starts_with("--") {
            eprintln!("unknown flag '{arg}'");
            std::process::exit(2);
        } else {
            script_path = Some(arg);
        }
    }

    // Keep the guard alive for the whole process: the plan stays
    // installed until exit.
    let _fault_guard = fault_plan.map(|spec| {
        let plan = pmv_faultinject::FaultPlan::parse(&spec).unwrap_or_else(|e| {
            eprintln!("bad --fault-plan: {e}");
            std::process::exit(2);
        });
        eprintln!("fault injection active: {spec}");
        pmv_faultinject::install(std::sync::Arc::new(plan))
    });
    if _fault_guard.is_some() {
        // Injected panics are caught by the serving path; keep the
        // default hook from printing a backtrace for each one.
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.starts_with(pmv_faultinject::PANIC_PREFIX))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.starts_with(pmv_faultinject::PANIC_PREFIX))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    }

    let mut session = match data_dir {
        Some(dir) => {
            let (session, banner) = Session::with_data_dir(mode, std::path::Path::new(&dir))
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(e.exit_code());
                });
            eprintln!("{banner}");
            session
        }
        None => Session::with_mode(mode),
    };

    if let Some(path) = script_path {
        // Script mode: run each line, echoing commands and output.
        let script = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        for line in script.lines() {
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            println!("pmv> {line}");
            match session.execute(line) {
                Ok(out) if out.is_empty() => {}
                Ok(out) => println!("{out}"),
                Err(CliError::Quit) => return,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(e.exit_code());
                }
            }
        }
        return;
    }

    println!("pmv-cli — Partial Materialized Views (type `help`)");
    let stdin = std::io::stdin();
    loop {
        print!("pmv> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        match session.execute(&line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(CliError::Quit) => break,
            Err(e) => println!("error: {e}"),
        }
    }
}
