//! Ablation — the Section 3.2 tradeoff knob `F`.
//!
//! "Given the storage limit UB of V_PM, for a query Q, this F makes a
//! tradeoff between (a) the probability that V_PM can provide some
//! partial results to Q, and (b) … the number of partial result tuples
//! that V_PM can provide."
//!
//! We fix a byte budget and sweep F: entries L = UB / (F · At) shrink as
//! F grows, so hit probability falls while tuples-served-per-hit rises.

use pmv_bench::tpcr_harness::arg_flag;
use pmv_bench::ExperimentReport;
use pmv_cache::PolicyKind;
use pmv_workload::{run_sim, SimConfig};

fn main() {
    let quick = arg_flag("--quick");
    let (total, budget_entries, warm, measure) = if quick {
        (50_000usize, 2_000usize, 50_000usize, 50_000usize)
    } else {
        (1_000_000, 40_000, 500_000, 500_000)
    };

    let mut report = ExperimentReport::new(
        "f_tradeoff",
        "F tradeoff under a fixed byte budget (alpha=1.07, h=2)",
        "F",
    );
    for f in 1..=8usize {
        // Budget is expressed in tuple-slots: L·F = budget_entries.
        let n = (budget_entries / f).max(1);
        let cfg = SimConfig {
            total_bcps: total,
            n,
            policy: PolicyKind::Clock,
            alpha: 1.07,
            h: 2,
            warmup: warm,
            measure,
            ..Default::default()
        };
        let r = run_sim(&cfg);
        // Expected tuples served per hit = F (entries are always full in
        // the 4.1 setting).
        report.push(
            f.to_string(),
            vec![
                ("L".into(), n as f64),
                ("hit_probability".into(), r.hit_probability),
                ("tuples_per_hit".into(), f as f64),
                (
                    "expected_tuples_per_query".into(),
                    r.hit_probability * f as f64,
                ),
            ],
        );
        eprintln!("F={f} L={n}: hit={:.4}", r.hit_probability);
    }
    report.print();
}
