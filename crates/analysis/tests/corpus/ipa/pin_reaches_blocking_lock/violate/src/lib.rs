// IPA corpus: while an epoch pin is live the serving path calls a
// helper that blocks on a mutex. The pin region itself is textually
// lock-free; only reachability sees the violation.

struct Fx;

impl Fx {
    fn serve(&self) -> usize {
        let pinsnap = self.published.pin();
        let n = fx_slow_len(self);
        drop(pinsnap);
        n
    }
}

fn fx_slow_len(fx: &Fx) -> usize {
    let g = fx.side.lock();
    g.len()
}
