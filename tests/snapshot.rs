//! Integration test: a generated TPC-R database round-trips through a
//! JSON snapshot with identical query behaviour.

use pmv::prelude::*;
use pmv::query::snapshot;
use pmv::workload::queries::{t1_query, template_t1};
use pmv::workload::tpcr::{self, TpcrConfig};

#[test]
fn tpcr_snapshot_roundtrip_preserves_query_results() {
    let mut db = Database::new();
    tpcr::generate(
        &mut db,
        &TpcrConfig {
            scale: 0.002,
            seed: 31,
            pad: false,
            date_supplier_pool: Some(2),
        },
    )
    .unwrap();
    tpcr::standard_indexes(&mut db).unwrap();

    let mut buf = Vec::new();
    snapshot::save(&db, &["customer", "orders", "lineitem"], &mut buf).unwrap();
    let restored = snapshot::load(buf.as_slice()).unwrap();

    for rel in ["customer", "orders", "lineitem"] {
        assert_eq!(db.len(rel).unwrap(), restored.len(rel).unwrap(), "{rel}");
    }

    // Same queries, same answers, still fully indexed.
    let t_orig = template_t1(&db).unwrap();
    let t_rest = template_t1(&restored).unwrap();
    for date in [0i64, 100, 500, 1000] {
        let supp = (date * 31).rem_euclid(tpcr::supplier_count(0.002)) + 1;
        let q1 = t1_query(&t_orig, &[date], &[supp]).unwrap();
        let q2 = t1_query(&t_rest, &[date], &[supp]).unwrap();
        let (mut a, s1) = pmv::query::execute(&db, &q1).unwrap();
        let (mut b, s2) = pmv::query::execute(&restored, &q2).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b, "date {date}");
        assert_eq!(s1.fallback_scans, 0);
        assert_eq!(s2.fallback_scans, 0, "restored indexes must be used");
    }

    // A PMV built over the restored database behaves identically.
    let pipeline = PmvPipeline::new();
    let mut pmv = Pmv::new(
        PartialViewDef::all_equality("snap_pmv", t_rest.clone()).unwrap(),
        PmvConfig::default(),
    );
    let supp = (100i64 * 31).rem_euclid(tpcr::supplier_count(0.002)) + 1;
    let q = t1_query(&t_rest, &[100], &[supp]).unwrap();
    let cold = pipeline.run(&restored, &mut pmv, &q).unwrap();
    let warm = pipeline.run(&restored, &mut pmv, &q).unwrap();
    assert_eq!(cold.all_results().len(), warm.all_results().len());
    assert_eq!(warm.ds_leftover, 0);
}
