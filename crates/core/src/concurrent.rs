//! Sharded, thread-safe PMV embedding.
//!
//! [`crate::pipeline::PmvPipeline::run`] takes `&mut Pmv`, which forces
//! single-writer access; the first multi-threaded embedding wrapped the
//! whole PMV in one mutex, so every O2 probe serialized against every
//! other and maintenance stalled all queries. [`SharedPmv`] shards the
//! store by bcp-key hash instead:
//!
//! * The view's `L` entry budget is split over `N` shards (default: the
//!   machine's available parallelism), each with its own [`PmvStore`] —
//!   its slice of the bcp entries, its own replacement-policy instance of
//!   capacity `⌈L/N⌉`, and its own maintenance-filter slice — behind its
//!   own [`parking_lot::RwLock`].
//! * A query locks only the shards its condition parts hash to, one short
//!   write guard per shard for the O2 probe and again for the O3
//!   fill/update, so concurrent probes on different bcps proceed in
//!   parallel.
//! * Maintenance X-locks (write-locks) only the shards its ΔR join rows
//!   hash to; queries over unaffected shards are never blocked.
//! * Statistics accumulate locally per call and publish via one relaxed
//!   [`AtomicPmvStats::add`] — no lock is taken for bookkeeping.
//!
//! # Locking protocol (the Section 3.6 S/X discipline, sharded)
//!
//! The paper holds an S lock on the PMV from O2 to the end of O3 so no
//! maintainer can invalidate already-served partial results before the
//! full execution re-derives them. Here the same guarantee comes from the
//! database snapshot plus a visibility rule:
//!
//! 1. A query runs against `&Database` — the base data cannot change for
//!    the duration of [`SharedPmv::run`], because any writer needs
//!    `&mut Database` (e.g. the write half of an `RwLock<Database>`).
//! 2. [`SharedPmv::maintain`] **must be called before the delta's new
//!    database state becomes visible to queries** — i.e. while the caller
//!    still holds its exclusive database access, reborrowed as
//!    `&Database`:
//!
//!    ```text
//!    let mut g = db.write();              // exclusive: no query running
//!    let batches = txn.commit();          // Δ applied to the base data
//!    shared.maintain(&g, &batches[0])?;   // shards repaired *before*…
//!    drop(g);                             // …readers can see the new DB
//!    ```
//!
//! Under that contract every query observes (database state, shard
//! contents) pairs where the cached tuples are a subset of the true bcp
//! answers, so O3 re-derives every served tuple and the end-of-O3
//! invariant `ds_leftover == 0` holds. (This rule is exactly what the
//! seed's global-mutex embedding got wrong: it committed, *downgraded*
//! the database lock, and only then locked the PMV — a reader could slip
//! into the gap, see the new database with stale shards, and trip the
//! `DS must be empty` assertion.)
//!
//! Lock ordering is uniform — database access is always acquired before
//! any shard lock, queries hold at most one shard lock at a time and
//! never touch database locks while holding one, and maintenance acquires
//! its affected shards in ascending index order — so the embedding is
//! deadlock-free.
//!
//! # The epoch serving path ([`SharedPmv::run_pinned`])
//!
//! [`SharedPmv::run`] still write-locks each probed shard for O2 and
//! runs O3 against the live database — the *locked* mode. The epoch
//! mode removes every lock from the read path:
//!
//! * Each shard additionally publishes an immutable **shard view** (its
//!   bcp entries as `Arc`-shared tuples) through a [`pmv_sync::LeftRight`]
//!   cell. Mutators republish after changing a shard; O2 probes
//!   [`pmv_sync::LeftRight::load`] the view and never touch the shard
//!   `RwLock` — the probe is wait-free.
//! * O3 executes against a pinned [`pmv_query::DataView`] (an epoch
//!   snapshot published by [`crate::epoch::EpochDb`]), which resolves
//!   every relation and index to immutable `Arc` versions — no database
//!   lock either.
//! * Consistency comes from **epoch gating** instead of the S lock: a
//!   query pinned at epoch `e` serves a cached tuple only when its
//!   `fill_epoch ≤ e`, and writes its own results back only when
//!   `e ≥` the view's last maintenance epoch (`maint_epoch`). Combined
//!   with the maintain-before-publish commit protocol, every served
//!   partial is re-derived by the pinned O3 execution and
//!   `ds_leftover == 0` holds — see DESIGN.md §14 for the full mapping
//!   onto the paper's Section 3.6 argument.
//! * Cache **fills and policy touches are best-effort** in epoch mode:
//!   they take `try_write` and are skipped on contention, so the serving
//!   path never blocks on a lock (`pmv-lint`'s `lock_in_pin_region` pass
//!   enforces that no blocking acquisition appears in a pinned region).

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use pmv_faultinject::{CaptureGuard, Site};
use pmv_obs::{
    EventKind, FlightRecorder, O2Outcome, ObsRegistry, Phase, SpaceSaving, TemplateAccount,
    TraceKind, TraceScope, TriggerReason, DEFAULT_SKETCH_CAPACITY,
};
use pmv_query::{
    exec::{join_fixed, join_from},
    execute_bounded_arc, upquery_fill, DataView, Database, ExecBudget, ExecStats, QueryInstance,
    QueryTemplate,
};
use pmv_storage::{Delta, DeltaBatch, Tuple};
use pmv_sync::LeftRight;

use crate::bcp::BcpKey;
use crate::ds::Ds;
use crate::fasthash::FxHashMap;
use crate::health::{
    CircuitBreaker, Degradation, DegradeReason, ShardReport, ValidationReport, ViewHealth,
};
use crate::maintenance::{cross_delta_combos, relevant_columns, MaintenanceOutcome};
use crate::o1::decompose;
use crate::pipeline::{
    bcp_truths, degrade_reason, flush_faults, probe_parts, remove_stale, QueryOutcome, QueryTimings,
};
use crate::stats::{AtomicPmvStats, PmvStats};
use crate::store::{PmvStore, Residency};
use crate::view::{MaintStrategy, PartialViewDef, PmvConfig};
use crate::Result;

/// Pooled per-thread buffers for the [`SharedPmv::run_pinned`] hot
/// loop: the DS multiset, the proven-occurrence map, and the
/// touch/candidate staging vectors. Reusing them across queries keeps
/// the steady-state epoch read path free of per-query heap allocation
/// (the returned `QueryOutcome`'s own vectors excepted — those are
/// handed to the caller).
#[derive(Default)]
struct QueryScratch {
    ds: Ds,
    /// Occurrences proven per tuple. Keyed by the tuple alone: the `Ls'`
    /// layout embeds every condition column, so equal tuples always
    /// belong to the same bcp and the key needs no `BcpKey` component —
    /// which keeps the hot dedup loop free of per-row key allocation.
    proven: FxHashMap<Arc<Tuple>, usize>,
    touches: Vec<(usize, BcpKey, bool)>,
    write_back: Vec<usize>,
}

impl QueryScratch {
    /// Empty every buffer (keeping capacity) and drop the `Arc<Tuple>`
    /// references, so a pooled scratch never pins tuple or snapshot
    /// memory between queries.
    fn clear(&mut self) {
        self.ds.clear();
        self.proven.clear();
        self.touches.clear();
        self.write_back.clear();
    }
}

thread_local! {
    /// One scratch per thread, held in a `Cell` (taken for the duration
    /// of each query) so a re-entrant call falls back to fresh buffers
    /// instead of panicking on a borrow.
    static QUERY_SCRATCH: std::cell::Cell<Option<Box<QueryScratch>>> =
        const { std::cell::Cell::new(None) };
}

/// Immutable snapshot of one shard's cached entries, published through a
/// [`LeftRight`] cell so epoch-mode O2 probes read it wait-free. Tuples
/// are `Arc`-shared with the store — capture copies pointers, not data.
pub(crate) struct ShardView {
    entries: HashMap<BcpKey, Vec<(Arc<Tuple>, u64)>>,
    /// Bcps whose entries held their full truth at capture time (valid
    /// completeness claims). A pinned reader may serve one of these as
    /// the bcp's *entire* answer — skipping O3 for that slice — under the
    /// epoch gates checked in `run_pinned_scratch`.
    complete: HashSet<BcpKey>,
    quarantined: bool,
}

impl ShardView {
    fn empty() -> ShardView {
        ShardView {
            entries: HashMap::new(),
            complete: HashSet::new(),
            quarantined: false,
        }
    }

    fn capture(store: &PmvStore) -> ShardView {
        ShardView {
            entries: store
                .iter()
                .map(|(k, ts)| (k.clone(), ts.to_vec()))
                .collect(),
            complete: store.complete_bcps().into_iter().collect(),
            quarantined: store.is_quarantined(),
        }
    }
}

/// Collect `(shard, item)` pairs into a compact `(shard, items)` list
/// over only the shards that own at least one item, in first-seen order.
/// A query touches a handful of shards, so the linear `find` beats
/// allocating a dense `vec![Vec::new(); N]` per query — with 16 shards
/// and one bcp that dense walk dominated the 1-thread TTFR tail.
fn group_by_shard<T>(pairs: impl Iterator<Item = (usize, T)>) -> Vec<(usize, Vec<T>)> {
    let mut groups: Vec<(usize, Vec<T>)> = Vec::new();
    for (si, item) in pairs {
        match groups.iter_mut().find(|(s, _)| *s == si) {
            Some((_, g)) => g.push(item),
            None => groups.push((si, vec![item])),
        }
    }
    groups
}

/// Trace-ring tail length captured in a flight-recorder dump: enough
/// recent query lifecycles to reconstruct the anomaly's neighbourhood
/// without spooling the whole ring.
const FLIGHT_TRACE_TAIL: usize = 16;

/// Classify one query's O2 engagement for per-template accounting:
/// `Hit` — a condition part found its bcp entry *and* cached tuples were
/// served; `Partial` — an entry was found but nothing could be served
/// (select mismatch, epoch gate, or quarantine mid-probe); `Miss` — no
/// probed bcp was cached at all.
fn o2_outcome(bcp_hit: bool, served: bool) -> O2Outcome {
    match (bcp_hit, served) {
        (true, true) => O2Outcome::Hit,
        (true, false) => O2Outcome::Partial,
        (false, _) => O2Outcome::Miss,
    }
}

struct Inner {
    def: PartialViewDef,
    config: PmvConfig,
    shards: Vec<RwLock<PmvStore>>,
    /// Published read views, one per shard, for the wait-free O2 probe.
    /// Republished (under the shard's write guard) after every mutation
    /// that changes what the shard serves.
    views: Vec<LeftRight<ShardView>>,
    /// Epoch (database version) of the last completed maintenance.
    /// Epoch-mode fills are gated on `pin_epoch >= maint_epoch`: a query
    /// pinned before the latest maintenance must not write back results
    /// that maintenance may already have evicted.
    maint_epoch: AtomicU64,
    stats: AtomicPmvStats,
    /// Per-view health state machine; Quarantined disables all serving.
    breaker: CircuitBreaker,
    /// Construction instant — the epoch for `last_verified_ms`.
    created: Instant,
    /// Milliseconds after `created` at which the view last completed
    /// maintenance or revalidation (staleness reference point).
    last_verified_ms: AtomicU64,
    /// Per-phase latency histograms + lifecycle trace ring. Enabled by
    /// default; when disabled, every record is one relaxed load.
    obs: ObsRegistry,
    /// View name as a shared `Arc<str>`: trace spans clone this instead
    /// of copying the name string on every query.
    trace_name: Arc<str>,
    /// Per-template workload account, attached by the embedding layer
    /// (CLI/bench); the serving path records into it only while `obs` is
    /// enabled, so the disabled cost stays one relaxed load.
    account: OnceLock<Arc<TemplateAccount>>,
    /// Anomaly-triggered flight recorder. A dump locks the trace ring
    /// and performs sink IO, so triggers fire only from locked-mode
    /// [`SharedPmv::run`] and from `EpochDb::query` *after* the pin is
    /// released — never inside a pin region.
    flight: OnceLock<Arc<FlightRecorder>>,
    /// Breaker trip count already seen by [`SharedPmv::flight_check`],
    /// so each trip produces one `breaker_trip` dump, not one per query.
    flight_trips_seen: AtomicU64,
    /// Fallback heavy-hitter sketch over delta keys for the heavy-light
    /// maintenance split, used when no [`TemplateAccount`] is attached
    /// (the account's sketch is preferred so `pmv-profile` sees the same
    /// hot keys maintenance acts on). Only the maintenance path locks
    /// it — never the serving path, pinned or locked.
    delta_sketch: Mutex<SpaceSaving>,
}

impl Inner {
    /// Upper bound on how stale served partials can be: time since the
    /// last completed maintenance/revalidation.
    fn staleness(&self) -> Duration {
        // Acquire pairs with the Release in `mark_verified`: a reader
        // that observed post-maintenance shard state also observes the
        // timestamp, keeping the reported bound tight. (This is the only
        // non-stats atomic here; `pmv-lint` bans `Relaxed` outside
        // designated statistics modules.)
        let verified = Duration::from_millis(self.last_verified_ms.load(Ordering::Acquire));
        self.created.elapsed().saturating_sub(verified)
    }

    fn mark_verified(&self) {
        self.last_verified_ms
            .store(self.created.elapsed().as_millis() as u64, Ordering::Release);
    }

    /// Republish shard `si`'s read view from `store`. Must be called
    /// while the caller still holds the shard's write guard, so the
    /// published view always reflects a consistent store state.
    fn publish_shard(&self, si: usize, store: &PmvStore) {
        let t0 = Instant::now();
        self.views[si].publish(Arc::new(ShardView::capture(store)));
        self.obs.record(Phase::snapshot_swap, t0.elapsed());
    }
}

/// A clonable, thread-safe handle to one bcp-hash-sharded PMV.
#[derive(Clone)]
pub struct SharedPmv {
    inner: Arc<Inner>,
}

impl SharedPmv {
    /// Sharded PMV with one shard per available hardware thread.
    pub fn new(def: PartialViewDef, config: PmvConfig) -> Self {
        let n = std::thread::available_parallelism().map_or(4, usize::from);
        SharedPmv::with_shards(def, config, n)
    }

    /// Sharded PMV with an explicit shard count (≥ 1). Each shard's store
    /// gets capacity `⌈L/N⌉`, so total capacity stays within one shard's
    /// rounding of the configured `L`.
    pub fn with_shards(def: PartialViewDef, config: PmvConfig, shards: usize) -> Self {
        let n = shards.max(1);
        let per_shard = config.l.div_ceil(n).max(1);
        let shards = (0..n)
            .map(|_| {
                let mut store = PmvStore::with_capacity(&config, per_shard);
                if config.maint_filter {
                    store.enable_index(crate::delta_index::DeltaKeyIndex::new(def.template()));
                }
                RwLock::new(store)
            })
            .collect();
        let views = (0..n)
            .map(|_| LeftRight::new(Arc::new(ShardView::empty())))
            .collect();
        let breaker = CircuitBreaker::new(config.breaker);
        let trace_name: Arc<str> = Arc::from(def.name());
        SharedPmv {
            inner: Arc::new(Inner {
                def,
                config,
                shards,
                views,
                maint_epoch: AtomicU64::new(0),
                stats: AtomicPmvStats::new(),
                breaker,
                created: Instant::now(),
                last_verified_ms: AtomicU64::new(0),
                obs: ObsRegistry::new(),
                trace_name,
                account: OnceLock::new(),
                flight: OnceLock::new(),
                flight_trips_seen: AtomicU64::new(0),
                delta_sketch: Mutex::new(SpaceSaving::new(DEFAULT_SKETCH_CAPACITY)),
            }),
        }
    }

    /// The view definition.
    pub fn def(&self) -> &PartialViewDef {
        &self.inner.def
    }

    /// The tuning knobs.
    pub fn config(&self) -> &PmvConfig {
        &self.inner.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    fn shard_of(&self, bcp: &BcpKey) -> usize {
        let mut h = DefaultHasher::new();
        bcp.hash(&mut h);
        (h.finish() % self.inner.shards.len() as u64) as usize
    }

    /// Run one query through O1/O2/O3, locking only the shards its
    /// condition parts and result tuples hash to.
    pub fn run(&self, db: &Database, q: &QueryInstance) -> Result<QueryOutcome> {
        // Locked mode holds no pin and no shard guard here, so the
        // anomaly check (which may lock the trace ring and write a spool
        // dump) is safe on every exit path, degraded ones included.
        let t_flight = self.flight_attached().then(Instant::now);
        let out = self.run_locked(db, q);
        if let (Some(t0), Ok(outcome)) = (&t_flight, &out) {
            self.flight_check(outcome, t0.elapsed());
        }
        out
    }

    /// [`SharedPmv::run`] body (everything but the flight-recorder
    /// anomaly check).
    fn run_locked(&self, db: &Database, q: &QueryInstance) -> Result<QueryOutcome> {
        let inner = &*self.inner;
        let mut local = PmvStats::default();
        let t_start = Instant::now();
        // Lifecycle span (publishes into the trace ring on every exit
        // path, including errors) plus a thread-local fault-capture
        // scope so injected faults — latency above all, which is
        // otherwise invisible — surface as trace events.
        let track = inner.obs.enabled();
        let mut trace = inner
            .obs
            .begin_trace_shared(TraceKind::Query, &inner.trace_name);
        let mut fault_cap = track.then(pmv_faultinject::capture);

        // ---- Operation O1 ----
        let t_o1 = Instant::now();
        let parts = decompose(&inner.def, q)?;
        let o1 = t_o1.elapsed();
        inner.obs.record(Phase::o1_decompose, o1);
        trace.event(EventKind::Decompose {
            parts: parts.len(),
            us: o1.as_micros() as u64,
        });

        // ---- Operation O2: probe shard by shard ----
        // A quarantined view skips O2/fill entirely: the query still gets
        // a full, correct answer straight from O3, just without cache
        // acceleration ("never serve from Quarantined").
        let serving = inner.breaker.allow_serve();
        trace.event(EventKind::Breaker {
            serving,
            state: inner.breaker.state().as_str(),
        });
        let t_o2 = Instant::now();
        let mut ds = Ds::new();
        let mut counters: HashMap<BcpKey, usize> = HashMap::with_capacity(parts.len());
        let mut partial_expanded: Vec<Arc<Tuple>> = Vec::new();
        let mut bcp_hit = false;
        // Group the distinct bcps by owning shard — a compact (shard,
        // parts) list over only the shards that actually own one, so the
        // probe cost scales with the query's bcp count, not the shard
        // count (the old dense `vec![Vec::new(); n]` walk made a
        // 1-thread probe pay for all 16 shards).
        let parts_by_shard = group_by_shard(
            parts
                .iter()
                .filter({
                    let mut seen: HashSet<&BcpKey> = HashSet::with_capacity(parts.len());
                    move |part| seen.insert(&part.bcp)
                })
                .map(|part| (self.shard_of(&part.bcp), part)),
        );
        if serving {
            for (si, group) in &parts_by_shard {
                let si = *si;
                let t_shard = Instant::now();
                let mut store = inner.shards[si].write();
                if track {
                    // The gap between requesting and holding the guard is
                    // pure contention — the profiler's per-site wait cost.
                    inner.obs.record(Phase::lock_shard_probe, t_shard.elapsed());
                }
                if store.is_quarantined() {
                    continue;
                }
                let probe = catch_unwind(AssertUnwindSafe(|| {
                    pmv_faultinject::fire_soft(Site::ShardProbe);
                    probe_parts(
                        &mut store,
                        q,
                        group,
                        u64::MAX,
                        &mut counters,
                        &mut ds,
                        &mut partial_expanded,
                        &mut bcp_hit,
                    );
                }));
                let poisoned = probe.is_err();
                if poisoned {
                    // A panic mid-probe may leave the shard's policy or
                    // entry bookkeeping torn: drain it (removal-only, so
                    // nothing stale can ever be served from it later).
                    // Tuples already copied into `ds`/`partial_expanded`
                    // came from the cache, hence are a sub-multiset of
                    // the true answer — O3 re-derives them below.
                    store.quarantine();
                    local.quarantine_events += 1;
                    inner.breaker.record_error();
                    inner.publish_shard(si, &store);
                }
                drop(store);
                // Per-shard probe latency includes the lock wait, so
                // contention shows up in the `o2_probe` tail.
                let shard_probe = t_shard.elapsed();
                inner.obs.record(Phase::o2_probe, shard_probe);
                trace.event(EventKind::ShardProbe {
                    shard: si,
                    parts: group.len(),
                    served: partial_expanded.len(),
                    us: shard_probe.as_micros() as u64,
                });
                if poisoned {
                    trace.event(EventKind::Quarantine { shard: si });
                }
            }
        }
        let o2 = t_o2.elapsed();
        // The paper's headline quantity: time-to-first-result, query
        // start → O2 partials available to the caller (§3.3 "within
        // ~1 ms"). Recorded before O3 so degraded paths count too.
        let ttfr = t_start.elapsed();
        inner.obs.record(Phase::ttfr, ttfr);
        trace.event_at(
            ttfr.as_micros() as u64,
            EventKind::FirstResults {
                tuples: partial_expanded.len(),
                bcp_hit,
                us: ttfr.as_micros() as u64,
            },
        );

        // ---- Operation O3: full execution (no shard locks held) ----
        let t_exec = Instant::now();
        let budget = ExecBudget {
            deadline: inner.config.o3_deadline.map(|d| Instant::now() + d),
            max_tuples: inner.config.o3_max_tuples,
        };
        let exec_result = catch_unwind(AssertUnwindSafe(|| execute_bounded_arc(db, q, budget)));
        let (results, exec_stats) = match exec_result {
            Ok(Ok(ok)) => {
                inner.breaker.record_ok();
                ok
            }
            Ok(Err(e)) if e.is_budget() || e.is_transient() => {
                // O3 was cut short (deadline / tuple budget / transient
                // fault): degrade to the O2 partials instead of failing
                // the query. Partials are a sub-multiset of the true
                // answer, so this under-serves but never lies.
                inner.breaker.record_error();
                if e.is_budget() {
                    local.budget_exceeded = 1;
                } else {
                    local.exec_errors = 1;
                }
                let reason = degrade_reason(&e);
                return Ok(self.degraded_outcome(
                    &mut local,
                    parts.len(),
                    partial_expanded,
                    bcp_hit,
                    o1,
                    o2,
                    t_exec.elapsed(),
                    reason,
                    &mut trace,
                    fault_cap.take(),
                    t_start,
                ));
            }
            Ok(Err(e)) => {
                inner.breaker.record_error();
                local.exec_errors = 1;
                inner.stats.add(&local);
                inner.obs.record(Phase::o3_exec, t_exec.elapsed());
                flush_faults(&mut trace, fault_cap.take());
                return Err(e.into());
            }
            Err(_panic) => {
                // The executor panicked. No shard lock was held during
                // O3, so no store can be torn — swallow the panic and
                // degrade to the O2 partials.
                inner.breaker.record_error();
                local.exec_panics = 1;
                return Ok(self.degraded_outcome(
                    &mut local,
                    parts.len(),
                    partial_expanded,
                    bcp_hit,
                    o1,
                    o2,
                    t_exec.elapsed(),
                    DegradeReason::ExecPanic,
                    &mut trace,
                    fault_cap.take(),
                    t_start,
                ));
            }
        };
        let exec = t_exec.elapsed();
        inner.obs.record(Phase::o3_exec, exec);
        trace.event(EventKind::Exec {
            rows: results.len(),
            tuples_examined: exec_stats.tuples_examined,
            index_probes: exec_stats.index_probes,
            us: exec.as_micros() as u64,
        });

        // ---- Operation O3: dedup + fill/update ----
        let t_o3 = Instant::now();
        // Single-part queries dominate steady-state serving; for them
        // every result row lies in the one probed bcp, so the per-row
        // `bcp_of_tuple` reconstruction is skipped.
        let single_bcp = (parts.len() == 1).then(|| parts[0].bcp.clone());
        // When the template provably emits unique rows, each remaining
        // result occurs exactly once: the proven map degenerates to
        // "cap 1" and is skipped entirely.
        let unique_fast = single_bcp.is_some() && inner.def.template().emits_unique_rows(db);
        // `proven` counts how many occurrences of each tuple this query
        // proved to exist: served partials plus remaining execution
        // results. Keyed by the tuple alone — the `Ls'` layout embeds
        // every condition column, so equal tuples share a bcp. The fill
        // below never pushes a tuple's cached count past this bound,
        // which keeps every entry a sub-multiset of its bcp's true
        // answer even when several queries fill the same entry
        // concurrently. Only fills read it, so a non-serving query skips
        // the bookkeeping altogether.
        let mut proven: FxHashMap<Arc<Tuple>, usize> = FxHashMap::default();
        if serving && !unique_fast {
            for t in &partial_expanded {
                *proven.entry(Arc::clone(t)).or_insert(0) += 1;
            }
        }
        let mut remaining_expanded: Vec<Arc<Tuple>> = Vec::new();
        for t in results {
            // Skip the multiset probe entirely once DS has drained (and
            // for cold queries, where it was never populated): the
            // remaining results are provably not duplicates.
            if !ds.is_empty() && ds.remove_one(&t) {
                continue; // the user already has this occurrence
            }
            if serving && !unique_fast {
                *proven.entry(Arc::clone(&t)).or_insert(0) += 1;
            }
            remaining_expanded.push(t);
        }
        // Bcps this query observed in full: a basic condition part covers
        // its whole bcp, so for such a bcp the proven multiset IS the
        // bcp's truth at `fill_epoch`. If the entry ends up holding
        // exactly that many tuples after the fill, it can claim
        // completeness and later epoch-mode probes may serve it without
        // executing (the targeted-upquery fast path).
        let mut completable: HashMap<BcpKey, usize> = HashMap::new();
        if serving && inner.config.upquery {
            if unique_fast {
                // Unique rows: each truth tuple was counted exactly
                // once, as a served partial or as a remaining result.
                if parts[0].is_basic {
                    let total = partial_expanded.len() + remaining_expanded.len();
                    if total > 0 {
                        completable.insert(parts[0].bcp.clone(), total);
                    }
                }
            } else {
                for part in &parts {
                    if part.is_basic {
                        completable.entry(part.bcp.clone()).or_insert(0);
                    }
                }
                if !completable.is_empty() {
                    if let Some(bcp) = &single_bcp {
                        if let Some(total) = completable.get_mut(bcp) {
                            *total = proven.values().sum();
                        }
                    } else {
                        for (t, n) in &proven {
                            if let Some(total) = completable.get_mut(&inner.def.bcp_of_tuple(t)) {
                                *total += *n;
                            }
                        }
                    }
                }
                completable.retain(|_, total| *total > 0);
            }
        }
        // Cache fills are stamped with the database version the tuples
        // were derived at, so epoch-pinned readers can gate on it.
        // Fills are grouped per bcp so each group pays one admit and one
        // length check; tuples carry their proven occurrence cap.
        let fill_epoch = db.version();
        let mut fill_groups: Vec<(BcpKey, Vec<(Arc<Tuple>, usize)>)> = Vec::new();
        if serving {
            if unique_fast {
                if let (Some(bcp), false) = (&single_bcp, remaining_expanded.is_empty()) {
                    fill_groups.push((
                        bcp.clone(),
                        remaining_expanded
                            .iter()
                            .map(|t| (Arc::clone(t), 1))
                            .collect(),
                    ));
                }
            } else if let Some(bcp) = &single_bcp {
                if !proven.is_empty() {
                    fill_groups.push((bcp.clone(), proven.into_iter().collect()));
                }
            } else {
                let mut by_bcp: FxHashMap<BcpKey, Vec<(Arc<Tuple>, usize)>> = FxHashMap::default();
                for (t, cap) in proven {
                    by_bcp
                        .entry(inner.def.bcp_of_tuple(&t))
                        .or_default()
                        .push((t, cap));
                }
                fill_groups.extend(by_bcp);
            }
        }
        let fill_by_shard = group_by_shard(
            fill_groups
                .into_iter()
                .map(|(bcp, tuples)| (self.shard_of(&bcp), (bcp, tuples))),
        );
        // Fill time (lock wait + shard mutation + publish) is kept out
        // of `o3_dedup` so that phase measures the dedup/provenance
        // bookkeeping alone; the lock wait itself still lands under
        // `lock_shard_fill` as the contention signal.
        let mut fill_total = Duration::ZERO;
        for (si, group) in &fill_by_shard {
            let si = *si;
            let t_fill = Instant::now();
            let mut store = inner.shards[si].write();
            if track {
                inner.obs.record(Phase::lock_shard_fill, t_fill.elapsed());
            }
            if store.is_quarantined() {
                fill_total += t_fill.elapsed();
                continue;
            }
            let admitted_before = local.tuples_admitted;
            let evicted_before = store.evictions();
            let fill = catch_unwind(AssertUnwindSafe(|| {
                pmv_faultinject::fire_soft(Site::ShardFill);
                let cap_f = inner.config.f;
                for (bcp, tuples) in group {
                    let residency = store.admit(bcp);
                    if residency == Residency::Probation {
                        local.probations += 1;
                    }
                    if residency != Residency::Resident {
                        continue;
                    }
                    // One length check gates the whole group: an entry
                    // already at its cap F admits nothing, so the
                    // per-tuple duplicate scans below are skipped
                    // entirely in the steady state.
                    let mut len = store.lookup(bcp).map_or(0, <[_]>::len);
                    for (t, cap) in tuples {
                        if len >= cap_f {
                            break;
                        }
                        let have = store
                            .lookup(bcp)
                            .map_or(0, |ts| ts.iter().filter(|(x, _)| x == t).count());
                        if have < *cap && store.push_arc(bcp, Arc::clone(t), fill_epoch) {
                            local.tuples_admitted += 1;
                            len += 1;
                        }
                    }
                }
                // Completeness claims: a basic-part bcp on this shard
                // whose entry now holds exactly the proven truth — and
                // with no eviction having raced the fill — is marked so
                // epoch-mode probes can serve it as the full slice.
                if store.evictions() == evicted_before {
                    let at = store.inserts_seen();
                    for (bcp, total) in &completable {
                        if self.shard_of(bcp) == si
                            && store.lookup(bcp).map_or(0, <[_]>::len) == *total
                        {
                            store.mark_complete(bcp, at);
                        }
                    }
                }
            }));
            let poisoned = fill.is_err();
            if poisoned {
                store.quarantine();
                local.quarantine_events += 1;
                inner.breaker.record_error();
            }
            inner.publish_shard(si, &store);
            let evicted = store.evictions().saturating_sub(evicted_before);
            drop(store);
            let fill_elapsed = t_fill.elapsed();
            fill_total += fill_elapsed;
            trace.event(EventKind::Fill {
                shard: si,
                admitted: local.tuples_admitted - admitted_before,
                evicted,
                us: fill_elapsed.as_micros() as u64,
            });
            if poisoned {
                trace.event(EventKind::Quarantine { shard: si });
            }
        }
        let ds_leftover = ds.len();
        debug_assert_eq!(ds_leftover, 0, "DS must be empty after O3");
        let o3_overhead = t_o3.elapsed().saturating_sub(fill_total);
        inner.obs.record(Phase::o3_dedup, o3_overhead);

        // ---- Bookkeeping ----
        local.queries = 1;
        local.condition_parts = parts.len() as u64;
        if bcp_hit {
            local.bcp_hit_queries = 1;
        }
        if !partial_expanded.is_empty() {
            local.serving_queries = 1;
            local.partial_tuples_served = partial_expanded.len() as u64;
        }
        inner.stats.add(&local);
        inner.obs.record(Phase::full, t_start.elapsed());
        if track {
            if let Some(acct) = inner.account.get() {
                acct.record_query(
                    o2_outcome(bcp_hit, !partial_expanded.is_empty()),
                    ttfr,
                    t_start.elapsed(),
                    exec_stats.tuples_examined as u64,
                );
            }
        }
        flush_faults(&mut trace, fault_cap.take());

        let template = inner.def.template();
        let partial = partial_expanded
            .iter()
            .map(|t| template.user_tuple(t))
            .collect();
        let remaining = remaining_expanded
            .iter()
            .map(|t| template.user_tuple(t))
            .collect();
        Ok(QueryOutcome {
            partial,
            remaining,
            partial_expanded,
            remaining_expanded,
            bcp_hit,
            parts: parts.len(),
            timings: QueryTimings {
                o1,
                o2,
                exec,
                o3_overhead,
            },
            exec_stats,
            ds_leftover,
            degraded: None,
        })
    }

    /// Run one query on the **epoch serving path**: O2 reads the
    /// published shard views wait-free, O3 executes against the pinned
    /// `view` snapshot, and every cache write-back (fills *and* policy
    /// touches) is best-effort — `try_write`, skipped under contention —
    /// so between pinning and the answer no lock is ever waited on.
    ///
    /// Consistency without the S lock: a cached tuple is served only when
    /// its fill epoch is ≤ the pin epoch (`view.view_epoch()`), and
    /// results are written back only when the pin epoch is ≥ the last
    /// completed maintenance epoch. Together with the
    /// maintain-before-publish commit protocol this preserves the
    /// end-of-O3 `ds_leftover == 0` invariant — see the module docs and
    /// DESIGN.md §14 for the full argument.
    pub fn run_pinned<V: DataView>(&self, view: &V, q: &QueryInstance) -> Result<QueryOutcome> {
        QUERY_SCRATCH.with(|tls| {
            let mut scratch = tls.take().unwrap_or_default();
            let out = self.run_pinned_scratch(view, q, &mut scratch);
            scratch.clear();
            tls.set(Some(scratch));
            out
        })
    }

    /// [`SharedPmv::run_pinned`] body, running over this thread's pooled
    /// scratch buffers (cleared by the wrapper after every query).
    fn run_pinned_scratch<V: DataView>(
        &self,
        view: &V,
        q: &QueryInstance,
        scratch: &mut QueryScratch,
    ) -> Result<QueryOutcome> {
        let QueryScratch {
            ds,
            proven,
            touches,
            write_back,
        } = scratch;
        let inner = &*self.inner;
        let pin_epoch = view.view_epoch();
        let mut local = PmvStats::default();
        let t_start = Instant::now();
        let track = inner.obs.enabled();
        let mut trace = inner
            .obs
            .begin_trace_shared(TraceKind::Query, &inner.trace_name);
        let mut fault_cap = track.then(pmv_faultinject::capture);

        // ---- Operation O1 ----
        let t_o1 = Instant::now();
        let parts = decompose(&inner.def, q)?;
        let o1 = t_o1.elapsed();
        inner.obs.record(Phase::o1_decompose, o1);
        trace.event(EventKind::Decompose {
            parts: parts.len(),
            us: o1.as_micros() as u64,
        });

        // ---- Operation O2: wait-free probe of the published views ----
        let serving = inner.breaker.allow_serve();
        trace.event(EventKind::Breaker {
            serving,
            state: inner.breaker.state().as_str(),
        });
        let t_o2 = Instant::now();
        let mut partial_expanded: Vec<Arc<Tuple>> = Vec::new();
        let mut bcp_hit = false;
        let upquery_on = serving && inner.config.upquery;
        // Slices served straight from a completeness claim. They do NOT
        // enter DS: if every probed slice is complete, nothing executes
        // and nothing re-produces them; if a targeted upquery later
        // falls back to the full O3, they are re-seeded into DS first.
        let mut complete_served: Vec<Arc<Tuple>> = Vec::new();
        let mut complete_ok: HashSet<BcpKey> = HashSet::new();
        // Policy touches observed during the probe land in the pooled
        // `touches` buffer, deferred to the best-effort write-back below
        // — the probe itself never takes the shard lock.
        let parts_by_shard = group_by_shard(
            parts
                .iter()
                .filter({
                    let mut seen: HashSet<&BcpKey> = HashSet::with_capacity(parts.len());
                    move |part| seen.insert(&part.bcp)
                })
                .map(|part| (self.shard_of(&part.bcp), part)),
        );
        if serving {
            for (si, group) in &parts_by_shard {
                let si = *si;
                let t_shard = Instant::now();
                // `load` is wait-free (bounded retry over the two
                // left-right slots); a concurrent publish can at worst
                // hand us the previous consistent view.
                let sv = inner.views[si].load();
                if sv.quarantined {
                    continue;
                }
                // Completeness gate, checked AFTER loading the view: a
                // reader pinned after a maintenance pass also observes
                // that pass's republished views (maintain stores the
                // fence before touching any shard, and the commit
                // publishes the new epoch only after maintain returns),
                // so a claim seen together with `pin_epoch >=
                // maint_epoch` reflects every change up to the pin.
                let maint_ok =
                    upquery_on && pin_epoch >= inner.maint_epoch.load(Ordering::Acquire);
                for part in group {
                    let Some(entries) = sv.entries.get(&part.bcp) else {
                        touches.push((si, part.bcp.clone(), false));
                        continue;
                    };
                    bcp_hit = true;
                    let mut served = false;
                    // A complete slice (claim valid, no tuple filled
                    // after the pin) IS the bcp's entire answer at the
                    // pin: serve its matching tuples and exempt the bcp
                    // from O3 entirely.
                    if maint_ok
                        && sv.complete.contains(&part.bcp)
                        && entries.iter().all(|(_, fe)| *fe <= pin_epoch)
                    {
                        for (t, _) in entries {
                            if part.is_basic || q.matches_select(t) {
                                partial_expanded.push(Arc::clone(t));
                                complete_served.push(Arc::clone(t));
                                served = true;
                            }
                        }
                        complete_ok.insert(part.bcp.clone());
                        local.complete_serves += 1;
                        touches.push((si, part.bcp.clone(), served));
                        continue;
                    }
                    for (t, fill_epoch) in entries {
                        // Epoch gate: never serve a tuple filled after
                        // this query's pin — it may reflect database
                        // state the pinned O3 execution cannot see.
                        if *fill_epoch > pin_epoch {
                            continue;
                        }
                        if part.is_basic || q.matches_select(t) {
                            ds.insert_arc(Arc::clone(t));
                            partial_expanded.push(Arc::clone(t));
                            served = true;
                        }
                    }
                    touches.push((si, part.bcp.clone(), served));
                }
                let shard_probe = t_shard.elapsed();
                inner.obs.record(Phase::o2_probe, shard_probe);
                trace.event(EventKind::ShardProbe {
                    shard: si,
                    parts: group.len(),
                    served: partial_expanded.len(),
                    us: shard_probe.as_micros() as u64,
                });
            }
        }
        let o2 = t_o2.elapsed();
        let ttfr = t_start.elapsed();
        inner.obs.record(Phase::ttfr, ttfr);
        trace.event_at(
            ttfr.as_micros() as u64,
            EventKind::FirstResults {
                tuples: partial_expanded.len(),
                bcp_hit,
                us: ttfr.as_micros() as u64,
            },
        );

        // ---- Complete-serve fast path ----
        // Every probed slice was served from a completeness claim: the
        // partials already ARE the full answer. No execution, no dedup —
        // only the deferred best-effort policy touches.
        if upquery_on && !parts.is_empty() && parts.iter().all(|p| complete_ok.contains(&p.bcp)) {
            debug_assert_eq!(ds.len(), 0, "complete slices never enter DS");
            let touch_by_shard = group_by_shard(
                touches
                    .drain(..)
                    .map(|(si, bcp, served)| (si, (bcp, served))),
            );
            for (si, group) in &touch_by_shard {
                // Touches change only policy state, never the entry set,
                // so no republish is needed.
                let Some(mut store) = inner.shards[*si].try_write() else {
                    continue;
                };
                if store.is_quarantined() {
                    continue;
                }
                for (bcp, served) in group {
                    store.touch(bcp, *served);
                }
            }
            local.queries = 1;
            local.condition_parts = parts.len() as u64;
            local.bcp_hit_queries = 1;
            if !partial_expanded.is_empty() {
                local.serving_queries = 1;
                local.partial_tuples_served = partial_expanded.len() as u64;
            }
            inner.stats.add(&local);
            inner.obs.record(Phase::full, t_start.elapsed());
            if track {
                if let Some(acct) = inner.account.get() {
                    acct.record_query(O2Outcome::Hit, ttfr, t_start.elapsed(), 0);
                }
            }
            flush_faults(&mut trace, fault_cap.take());
            let template = inner.def.template();
            let partial = partial_expanded
                .iter()
                .map(|t| template.user_tuple(t))
                .collect();
            return Ok(QueryOutcome {
                partial,
                remaining: Vec::new(),
                partial_expanded,
                remaining_expanded: Vec::new(),
                bcp_hit,
                parts: parts.len(),
                timings: QueryTimings {
                    o1,
                    o2,
                    exec: Duration::ZERO,
                    o3_overhead: Duration::ZERO,
                },
                exec_stats: Default::default(),
                ds_leftover: 0,
                degraded: None,
            });
        }

        // ---- Targeted upqueries ----
        // Some slices are complete but others are open: refill each open
        // bcp with a bounded keyed upquery against the pinned view
        // instead of running the full O3 execution. Any failure (budget,
        // fault, panic) falls back to the classic path below, with the
        // complete-served partials re-seeded into DS so its dedup drains
        // them.
        let mut upq: Option<(Vec<(BcpKey, bool, Vec<Arc<Tuple>>)>, ExecStats, Duration)> = None;
        if upquery_on && !complete_ok.is_empty() {
            let t_upq = Instant::now();
            let mut slices: Vec<(BcpKey, bool, Vec<Arc<Tuple>>)> = Vec::new();
            let mut total = ExecStats::default();
            let mut done: HashSet<BcpKey> = complete_ok.clone();
            let mut ok = true;
            for part in &parts {
                if !done.insert(part.bcp.clone()) {
                    continue;
                }
                let qi = match inner.def.bcp_query(&part.bcp) {
                    Ok(qi) => qi,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                };
                let budget = ExecBudget {
                    deadline: inner.config.o3_deadline.map(|d| Instant::now() + d),
                    max_tuples: inner.config.o3_max_tuples,
                };
                let t_fill = Instant::now();
                // pmv::allow(pin_reaches_blocking_lock): the refill reaches the
                // fault-injection registry lock (fire → fire_disk), which is
                // taken only while a test campaign is armed; unarmed it is one
                // relaxed load, so production serving never blocks here.
                match catch_unwind(AssertUnwindSafe(|| upquery_fill(view, &qi, budget))) {
                    Ok(Ok((rows, st))) => {
                        inner.obs.record(Phase::upquery, t_fill.elapsed());
                        total.index_probes += st.index_probes;
                        total.range_scans += st.range_scans;
                        total.fallback_scans += st.fallback_scans;
                        total.tuples_examined += st.tuples_examined;
                        total.results += st.results;
                        local.upqueries += 1;
                        local.upquery_rows += rows.len() as u64;
                        slices.push((part.bcp.clone(), part.is_basic, rows));
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                inner.breaker.record_ok();
                upq = Some((slices, total, t_upq.elapsed()));
            } else {
                local.upquery_fallbacks += 1;
                for t in &complete_served {
                    ds.insert_arc(Arc::clone(t));
                }
            }
        }

        // ---- Operation O3: full execution against the pinned view ----
        // (skipped when the upqueries above refilled every open slice)
        let did_upquery = upq.is_some();
        let mut upq_slices: Option<Vec<(BcpKey, bool, Vec<Arc<Tuple>>)>> = None;
        let (results, exec_stats, exec) = match upq {
            Some((slices, total, elapsed)) => {
                upq_slices = Some(slices);
                (Vec::new(), total, elapsed)
            }
            None => {
                let t_exec = Instant::now();
                let budget = ExecBudget {
                    deadline: inner.config.o3_deadline.map(|d| Instant::now() + d),
                    max_tuples: inner.config.o3_max_tuples,
                };
                // The executor reaches the fault-injection registry lock
                // (fire → fire_disk), which is taken only while a test
                // campaign is armed; unarmed it is one relaxed load, so
                // production serving never blocks here.
                let exec_result = // pmv::allow(pin_reaches_blocking_lock): see above
                    catch_unwind(AssertUnwindSafe(|| execute_bounded_arc(view, q, budget)));
                let (results, exec_stats) = match exec_result {
                    Ok(Ok(ok)) => {
                        inner.breaker.record_ok();
                        ok
                    }
                    Ok(Err(e)) if e.is_budget() || e.is_transient() => {
                        inner.breaker.record_error();
                        if e.is_budget() {
                            local.budget_exceeded = 1;
                        } else {
                            local.exec_errors = 1;
                        }
                        let reason = degrade_reason(&e);
                        return Ok(self.degraded_outcome(
                            &mut local,
                            parts.len(),
                            partial_expanded,
                            bcp_hit,
                            o1,
                            o2,
                            t_exec.elapsed(),
                            reason,
                            &mut trace,
                            fault_cap.take(),
                            t_start,
                        ));
                    }
                    Ok(Err(e)) => {
                        inner.breaker.record_error();
                        local.exec_errors = 1;
                        inner.stats.add(&local);
                        inner.obs.record(Phase::o3_exec, t_exec.elapsed());
                        flush_faults(&mut trace, fault_cap.take());
                        return Err(e.into());
                    }
                    Err(_panic) => {
                        inner.breaker.record_error();
                        local.exec_panics = 1;
                        return Ok(self.degraded_outcome(
                            &mut local,
                            parts.len(),
                            partial_expanded,
                            bcp_hit,
                            o1,
                            o2,
                            t_exec.elapsed(),
                            DegradeReason::ExecPanic,
                            &mut trace,
                            fault_cap.take(),
                            t_start,
                        ));
                    }
                };
                let exec = t_exec.elapsed();
                inner.obs.record(Phase::o3_exec, exec);
                trace.event(EventKind::Exec {
                    rows: results.len(),
                    tuples_examined: exec_stats.tuples_examined,
                    index_probes: exec_stats.index_probes,
                    us: exec.as_micros() as u64,
                });
                (results, exec_stats, exec)
            }
        };

        // ---- Operation O3: dedup + best-effort write-back ----
        let t_o3 = Instant::now();
        // Fill gate: results derived at `pin_epoch` may be written back
        // only if no maintenance completed after the pin — otherwise the
        // fill could resurrect a tuple a later Δ already evicted.
        // Acquire pairs with the Release in `maintain`. Known up front,
        // so a stale pin also skips all fill bookkeeping below.
        let fills_allowed = serving && pin_epoch >= inner.maint_epoch.load(Ordering::Acquire);
        // Single-part queries dominate steady-state serving; for them
        // every result row lies in the one probed bcp, so the per-row
        // `bcp_of_tuple` reconstruction is skipped.
        let single_bcp = (parts.len() == 1).then(|| parts[0].bcp.clone());
        // When the template provably emits unique rows, each remaining
        // result occurs exactly once: the proven map degenerates to
        // "cap 1" and is skipped entirely. (A single-part query never
        // takes the upquery path — an all-complete probe returned
        // above — so this composes with `single_bcp`.)
        let unique_fast =
            !did_upquery && single_bcp.is_some() && inner.def.template().emits_unique_rows(view);
        // `proven` counts how many occurrences of each tuple this query
        // proved to exist: served partials plus remaining results. The
        // fill below never pushes a tuple's cached count past this
        // bound, which keeps every entry a sub-multiset of its bcp's
        // true answer even when several queries fill the same entry
        // concurrently. Only fills read it, so a gated-off fill skips
        // the bookkeeping altogether.
        if fills_allowed && !unique_fast {
            for t in &partial_expanded {
                *proven.entry(Arc::clone(t)).or_insert(0) += 1;
            }
        }
        let mut remaining_expanded: Vec<Arc<Tuple>> = Vec::new();
        // Bcps whose full truth this query observed, with the truth's
        // multiset size: if the entry ends up holding exactly that many
        // tuples after the fill, it can claim completeness.
        let mut completable: HashMap<BcpKey, usize> = HashMap::new();
        if let Some(slices) = upq_slices.take() {
            // Each upquery slice is its bcp's FULL truth at the pin.
            // Rows outside the query's select still count toward the
            // entry (and completeness), but not toward the user's
            // answer.
            for (bcp, is_basic, rows) in slices {
                let total = rows.len();
                for t in rows {
                    if !ds.is_empty() && ds.remove_one(&t) {
                        continue; // already served from the cache
                    }
                    if fills_allowed {
                        *proven.entry(Arc::clone(&t)).or_insert(0) += 1;
                    }
                    if is_basic || q.matches_select(&t) {
                        remaining_expanded.push(t);
                    }
                }
                if fills_allowed && total > 0 {
                    completable.insert(bcp, total);
                }
            }
        }
        for t in results {
            // Skip the multiset probe once DS has drained (and for cold
            // queries, where it was never populated).
            if !ds.is_empty() && ds.remove_one(&t) {
                continue; // the user already has this occurrence
            }
            if fills_allowed && !unique_fast {
                *proven.entry(Arc::clone(&t)).or_insert(0) += 1;
            }
            remaining_expanded.push(t);
        }
        if fills_allowed && !did_upquery && upquery_on {
            // Classic full execution: a basic condition part covers its
            // whole bcp, so the occurrences proven within it are the
            // bcp's truth.
            if unique_fast {
                // Unique rows: each truth tuple was counted exactly
                // once, as a served partial or as a remaining result.
                if parts[0].is_basic {
                    let total = partial_expanded.len() + remaining_expanded.len();
                    if total > 0 {
                        completable.insert(parts[0].bcp.clone(), total);
                    }
                }
            } else {
                for part in &parts {
                    if part.is_basic {
                        completable.entry(part.bcp.clone()).or_insert(0);
                    }
                }
                if !completable.is_empty() {
                    if let Some(bcp) = &single_bcp {
                        if let Some(total) = completable.get_mut(bcp) {
                            *total = proven.values().sum();
                        }
                    } else {
                        for (t, n) in proven.iter() {
                            if let Some(total) = completable.get_mut(&inner.def.bcp_of_tuple(t)) {
                                *total += *n;
                            }
                        }
                    }
                }
                completable.retain(|_, total| *total > 0);
            }
        }
        // Fills are grouped per bcp so each group pays one admit and one
        // length check; tuples carry their proven occurrence cap.
        let mut fill_groups: Vec<(BcpKey, Vec<(Arc<Tuple>, usize)>)> = Vec::new();
        if fills_allowed {
            if unique_fast {
                if let (Some(bcp), false) = (&single_bcp, remaining_expanded.is_empty()) {
                    fill_groups.push((
                        bcp.clone(),
                        remaining_expanded
                            .iter()
                            .map(|t| (Arc::clone(t), 1))
                            .collect(),
                    ));
                }
            } else if let Some(bcp) = &single_bcp {
                if !proven.is_empty() {
                    fill_groups.push((bcp.clone(), proven.drain().collect()));
                }
            } else {
                let mut by_bcp: FxHashMap<BcpKey, Vec<(Arc<Tuple>, usize)>> = FxHashMap::default();
                for (t, cap) in proven.drain() {
                    by_bcp
                        .entry(inner.def.bcp_of_tuple(&t))
                        .or_default()
                        .push((t, cap));
                }
                fill_groups.extend(by_bcp);
            }
        }
        let fill_by_shard = group_by_shard(
            fill_groups
                .into_iter()
                .map(|(bcp, tuples)| (self.shard_of(&bcp), (bcp, tuples))),
        );
        let touch_by_shard = group_by_shard(
            touches
                .drain(..)
                .map(|(si, bcp, served)| (si, (bcp, served))),
        );
        write_back.extend(
            fill_by_shard
                .iter()
                .map(|(s, _)| *s)
                .chain(touch_by_shard.iter().map(|(s, _)| *s)),
        );
        write_back.sort_unstable();
        write_back.dedup();
        // Shard write-back is timed apart from the dedup bookkeeping:
        // it lands under `lock_shard_fill` (the same phase the locked
        // path uses for its fill loop) and is subtracted from
        // `o3_dedup`, so that phase measures dedup/provenance work —
        // not lock waits and LeftRight publishes.
        let mut fill_total = Duration::ZERO;
        for &si in write_back.iter() {
            // Best-effort: the serving path never *waits* on a shard
            // lock. Skipped touches lose one policy hit; skipped fills
            // just mean the next identical query re-derives through O3.
            let Some(mut store) = inner.shards[si].try_write() else {
                continue;
            };
            if store.is_quarantined() {
                continue;
            }
            let t_fill = Instant::now();
            let admitted_before = local.tuples_admitted;
            let evicted_before = store.evictions();
            let mut marked = false;
            let fill = catch_unwind(AssertUnwindSafe(|| {
                if let Some((_, group)) = touch_by_shard.iter().find(|(s, _)| *s == si) {
                    for (bcp, served) in group {
                        store.touch(bcp, *served);
                    }
                }
                let Some((_, group)) = fill_by_shard.iter().find(|(s, _)| *s == si) else {
                    return;
                };
                // Re-check the fill gate UNDER the shard write lock: a
                // maintenance pass racing this query stores `maint_epoch`
                // before touching any shard lock, so if it already
                // scanned this shard the lock handoff makes that store
                // visible here and the stale fill is skipped; if this
                // check still passes, the fill lands before the scan and
                // maintenance will evict it. (Pre-check above is just the
                // fast path; locked mode pins `u64::MAX` and always
                // passes.)
                if pin_epoch < inner.maint_epoch.load(Ordering::Acquire) {
                    return;
                }
                // pmv::allow(pin_reaches_blocking_lock): fire_soft takes the
                // fault-injection registry lock only while a test campaign
                // is armed; unarmed it is one relaxed load.
                pmv_faultinject::fire_soft(Site::ShardFill);
                let cap_f = inner.config.f;
                for (bcp, tuples) in group {
                    let residency = store.admit(bcp);
                    if residency == Residency::Probation {
                        local.probations += 1;
                    }
                    if residency != Residency::Resident {
                        continue;
                    }
                    // One length check gates the whole group: an entry
                    // already at its cap F admits nothing, so the
                    // per-tuple duplicate scans below are skipped
                    // entirely in the steady state.
                    let mut len = store.lookup(bcp).map_or(0, <[_]>::len);
                    for (t, cap) in tuples {
                        if len >= cap_f {
                            break;
                        }
                        let have = store
                            .lookup(bcp)
                            .map_or(0, |ts| ts.iter().filter(|(x, _)| x == t).count());
                        if have < *cap && store.push_arc(bcp, Arc::clone(t), pin_epoch) {
                            local.tuples_admitted += 1;
                            len += 1;
                        }
                    }
                }
                // Completeness claims: observed-in-full bcps on this
                // shard whose entry now holds exactly the proven truth —
                // with no eviction racing the fill, and the maint-epoch
                // gate above re-checked under this write lock, so the
                // pin reflects every change the claim must cover.
                if store.evictions() == evicted_before {
                    let at = store.inserts_seen();
                    for (bcp, total) in &completable {
                        if self.shard_of(bcp) == si
                            && store.lookup(bcp).map_or(0, <[_]>::len) == *total
                            && store.mark_complete(bcp, at)
                        {
                            marked = true;
                        }
                    }
                }
            }));
            let poisoned = fill.is_err();
            if poisoned {
                store.quarantine();
                local.quarantine_events += 1;
                inner.breaker.record_error();
            }
            let admitted = local.tuples_admitted - admitted_before;
            let evicted = store.evictions().saturating_sub(evicted_before);
            // Touches change only policy state, not what the view
            // serves; republish only when the entry set or a
            // completeness claim did change.
            if poisoned || admitted > 0 || evicted > 0 || marked {
                // pmv::allow(pin_reaches_blocking_lock): LeftRight::publish
                // takes the writer-side mutex, which only fills contend on —
                // never the wait-free reader path. A cold-shard fill is
                // already the slow path (DESIGN.md §14).
                inner.publish_shard(si, &store);
            }
            drop(store);
            let fill_elapsed = t_fill.elapsed();
            fill_total += fill_elapsed;
            inner.obs.record(Phase::lock_shard_fill, fill_elapsed);
            trace.event(EventKind::Fill {
                shard: si,
                admitted,
                evicted,
                us: fill_elapsed.as_micros() as u64,
            });
            if poisoned {
                trace.event(EventKind::Quarantine { shard: si });
            }
        }
        let ds_leftover = ds.len();
        debug_assert_eq!(ds_leftover, 0, "DS must be empty after O3");
        let o3_overhead = t_o3.elapsed().saturating_sub(fill_total);
        inner.obs.record(Phase::o3_dedup, o3_overhead);

        // ---- Bookkeeping ----
        local.queries = 1;
        local.condition_parts = parts.len() as u64;
        if bcp_hit {
            local.bcp_hit_queries = 1;
        }
        if !partial_expanded.is_empty() {
            local.serving_queries = 1;
            local.partial_tuples_served = partial_expanded.len() as u64;
        }
        inner.stats.add(&local);
        inner.obs.record(Phase::full, t_start.elapsed());
        if track {
            if let Some(acct) = inner.account.get() {
                acct.record_query(
                    o2_outcome(bcp_hit, !partial_expanded.is_empty()),
                    ttfr,
                    t_start.elapsed(),
                    exec_stats.tuples_examined as u64,
                );
            }
        }
        flush_faults(&mut trace, fault_cap.take());

        let template = inner.def.template();
        let partial = partial_expanded
            .iter()
            .map(|t| template.user_tuple(t))
            .collect();
        let remaining = remaining_expanded
            .iter()
            .map(|t| template.user_tuple(t))
            .collect();
        Ok(QueryOutcome {
            partial,
            remaining,
            partial_expanded,
            remaining_expanded,
            bcp_hit,
            parts: parts.len(),
            timings: QueryTimings {
                o1,
                o2,
                exec,
                o3_overhead,
            },
            exec_stats,
            ds_leftover,
            degraded: None,
        })
    }

    /// Build the `Degraded` outcome for a query whose O3 did not
    /// complete: only the already-served O2 partials, explicitly flagged
    /// with the reason and a staleness upper bound.
    #[allow(clippy::too_many_arguments)]
    fn degraded_outcome(
        &self,
        local: &mut PmvStats,
        parts_len: usize,
        partial_expanded: Vec<Arc<Tuple>>,
        bcp_hit: bool,
        o1: Duration,
        o2: Duration,
        exec: Duration,
        reason: DegradeReason,
        trace: &mut TraceScope<'_>,
        fault_cap: Option<CaptureGuard>,
        t_start: Instant,
    ) -> QueryOutcome {
        let inner = &*self.inner;
        let staleness = inner.staleness();
        inner.obs.record(Phase::o3_exec, exec);
        inner.obs.record(Phase::degraded, t_start.elapsed());
        trace.event(EventKind::Degraded {
            reason: reason.to_string(),
            staleness_us: staleness.as_micros() as u64,
        });
        flush_faults(trace, fault_cap);
        local.queries = 1;
        local.degraded_queries = 1;
        local.condition_parts = parts_len as u64;
        if bcp_hit {
            local.bcp_hit_queries = 1;
        }
        if !partial_expanded.is_empty() {
            local.serving_queries = 1;
            local.partial_tuples_served = partial_expanded.len() as u64;
        }
        inner.stats.add(local);
        // Degraded queries still count toward the template's workload;
        // `o1 + o2` stands in for TTFR (recorded from the same phases)
        // and O3 scanned nothing it could report.
        if inner.obs.enabled() {
            if let Some(acct) = inner.account.get() {
                acct.record_query(
                    o2_outcome(bcp_hit, !partial_expanded.is_empty()),
                    o1 + o2,
                    t_start.elapsed(),
                    0,
                );
            }
        }
        let template = inner.def.template();
        let partial = partial_expanded
            .iter()
            .map(|t| template.user_tuple(t))
            .collect();
        QueryOutcome {
            partial,
            remaining: Vec::new(),
            partial_expanded,
            remaining_expanded: Vec::new(),
            bcp_hit,
            parts: parts_len,
            timings: QueryTimings {
                o1,
                o2,
                exec,
                o3_overhead: Duration::ZERO,
            },
            exec_stats: Default::default(),
            // Nothing stale was served: the remaining results are simply
            // absent, and the partials came straight from the cache.
            ds_leftover: 0,
            degraded: Some(Degradation {
                reason,
                partial_only: true,
                staleness,
            }),
        }
    }

    /// Apply one relation's delta batch, write-locking only the shards
    /// the ΔR join rows hash to.
    ///
    /// **Contract:** call this while the delta's new database state is
    /// not yet visible to concurrent queries — in the
    /// `RwLock<Database>` idiom, while still holding the write guard
    /// (reborrowed as `&Database`), *before* downgrading or dropping it.
    /// Violating this reintroduces the stale-partial-result race the
    /// module docs describe.
    pub fn maintain(&self, db: &Database, batch: &DeltaBatch) -> Result<MaintenanceOutcome> {
        let inner = &*self.inner;
        let mut out = MaintenanceOutcome::default();
        let mut local = PmvStats::default();
        let template = inner.def.template().clone();
        let Some(rel_idx) = template
            .relations()
            .iter()
            .position(|r| r == batch.relation())
        else {
            out.unrelated_relation = true;
            return Ok(out);
        };
        let t_start = Instant::now();
        let mut trace = inner
            .obs
            .begin_trace_shared(TraceKind::Maintenance, &inner.trace_name);
        let mut fault_cap = inner.obs.enabled().then(pmv_faultinject::capture);
        let relevant = relevant_columns(&template, rel_idx);
        let strategy = inner.config.effective_strategy();

        // Epoch fence for pinned fills — stored BEFORE this maintenance
        // touches any shard lock. A query pinned before this Δ may hold
        // results the Δ evicts; its fill gate re-checks `maint_epoch`
        // under the shard write lock, so either (a) it sees this store
        // (the lock handoff orders it after one of our shard accesses)
        // and skips the fill, or (b) it filled before we looked at the
        // shard, in which case the `would_affect` scan and phase-2
        // eviction below see the fill and remove it. Release pairs with
        // the Acquire in `run_pinned`.
        inner.maint_epoch.store(db.version(), Ordering::Release);

        // Phase 1: route each delta. Heavy/indexed keys resolve their
        // affected view tuples straight from the per-shard delta-key
        // indexes (read locks only, O(fanout) per shard); cold keys
        // coalesce into one ΔR join per distinct tuple; `DeltaJoin` keeps
        // the classic per-delta join. The removal's provenance flag
        // distinguishes index hits for the `index_removals` counters.
        let mut removals: Vec<(usize, BcpKey, Tuple, bool)> = Vec::new();
        let mut light_order: Vec<&Tuple> = Vec::new();
        let mut light_counts: FxHashMap<&Tuple, usize> = FxHashMap::default();
        let mut any_insert = false;
        let mut t_index = Duration::ZERO;
        for delta in batch.deltas() {
            let tuple = match delta {
                Delta::Insert { .. } => {
                    out.inserts_ignored += 1;
                    local.maint_inserts_ignored += 1;
                    any_insert = true;
                    continue;
                }
                Delta::Delete { tuple, .. } => {
                    out.deletes_joined += 1;
                    local.maint_deletes_joined += 1;
                    tuple
                }
                Delta::Update { old, .. } => {
                    let changed = delta.changed_columns();
                    if changed.iter().any(|c| relevant.contains(c)) {
                        out.updates_joined += 1;
                        local.maint_updates_joined += 1;
                        // delete(old) + insert(new): the new image may
                        // grow some bcp's truth, so completeness claims
                        // must lapse like for any insert.
                        any_insert = true;
                        old
                    } else {
                        out.updates_ignored += 1;
                        local.maint_updates_ignored += 1;
                        continue;
                    }
                }
            };
            let mut indexed = match strategy {
                MaintStrategy::DeltaJoin => false,
                MaintStrategy::Indexed => true,
                MaintStrategy::HeavyLight => {
                    // Every shard shares the template, so shard 0's index
                    // yields the delta-key hash for the whole view. The
                    // account's sketch is preferred so the profiler
                    // reports the same hot keys maintenance acts on; a
                    // sketch overestimate only routes extra deltas to
                    // the (equally sound) indexed path.
                    match inner.shards[0].read().delta_key_hash(rel_idx, tuple) {
                        None => {
                            // Unindexable relation (or index disabled):
                            // coalesce into the light joins below.
                            let n = light_counts.entry(tuple).or_insert(0);
                            if *n == 0 {
                                light_order.push(tuple);
                            }
                            *n += 1;
                            out.light_deltas += 1;
                            local.maint_light_deltas += 1;
                            continue;
                        }
                        Some(h) => {
                            let count = match inner.account.get() {
                                Some(acct) => acct.note_delta_key(h),
                                None => inner.delta_sketch.lock().note(h),
                            };
                            if count >= inner.config.heavy_threshold {
                                true
                            } else {
                                let n = light_counts.entry(tuple).or_insert(0);
                                if *n == 0 {
                                    light_order.push(tuple);
                                }
                                *n += 1;
                                out.light_deltas += 1;
                                local.maint_light_deltas += 1;
                                continue;
                            }
                        }
                    }
                }
            };
            if indexed {
                let t0 = Instant::now();
                let before = removals.len();
                for (si, s) in inner.shards.iter().enumerate() {
                    match s.read().supported(rel_idx, tuple) {
                        Some(sup) => {
                            for (bcp, t) in sup {
                                removals.push((si, bcp, (*t).clone(), true));
                            }
                        }
                        None => {
                            // No usable index for this relation: undo and
                            // fall back to the classic per-delta join.
                            removals.truncate(before);
                            indexed = false;
                            break;
                        }
                    }
                }
                t_index += t0.elapsed();
                if indexed {
                    out.heavy_deltas += 1;
                    local.maint_heavy_deltas += 1;
                    if removals.len() == before {
                        out.joins_avoided += 1;
                    }
                    continue;
                }
            }
            // Section 3.4 / [25]: if no shard's index can match the
            // deleted tuple, nothing cached is affected and the join is
            // skipped entirely.
            let affected = inner
                .shards
                .iter()
                .any(|s| s.read().would_affect(rel_idx, tuple));
            if !affected {
                out.joins_avoided += 1;
                continue;
            }
            match self.join_with_retry(db, &template, rel_idx, tuple, &mut out, &mut local) {
                Ok(Some(rows)) => {
                    out.join_rows += rows.len();
                    local.maint_join_rows += rows.len() as u64;
                    for row in rows {
                        let bcp = inner.def.bcp_of_tuple(&row);
                        removals.push((self.shard_of(&bcp), bcp, row, false));
                    }
                }
                Ok(None) => self.drain_affected(rel_idx, tuple, &mut out, &mut local),
                Err(e) => {
                    inner.stats.add(&local);
                    inner.obs.record(Phase::maint_join, t_start.elapsed());
                    flush_faults(&mut trace, fault_cap.take());
                    return Err(e);
                }
            }
        }
        if t_index > Duration::ZERO {
            inner.obs.record(Phase::maint_index, t_index);
        }

        // Light path: one coalesced ΔR join per distinct cold tuple.
        // Every join runs against the same post-delta base state, so a
        // tuple deleted `n` times yields `n` identical row sets — the
        // rows are pushed once per occurrence instead of re-joining.
        for tuple in light_order {
            let occurrences = light_counts[tuple];
            let affected = inner
                .shards
                .iter()
                .any(|s| s.read().would_affect(rel_idx, tuple));
            if !affected {
                out.joins_avoided += 1;
                continue;
            }
            match self.join_with_retry(db, &template, rel_idx, tuple, &mut out, &mut local) {
                Ok(Some(rows)) => {
                    out.coalesced_joins += 1;
                    local.maint_coalesced_joins += 1;
                    out.join_rows += rows.len() * occurrences;
                    local.maint_join_rows += (rows.len() * occurrences) as u64;
                    for row in rows {
                        let bcp = inner.def.bcp_of_tuple(&row);
                        let si = self.shard_of(&bcp);
                        for _ in 0..occurrences {
                            removals.push((si, bcp.clone(), row.clone(), false));
                        }
                    }
                }
                Ok(None) => self.drain_affected(rel_idx, tuple, &mut out, &mut local),
                Err(e) => {
                    inner.stats.add(&local);
                    inner.obs.record(Phase::maint_join, t_start.elapsed());
                    flush_faults(&mut trace, fault_cap.take());
                    return Err(e);
                }
            }
        }

        // Phase 2: X-lock only the affected shards, in ascending index
        // order, and evict the joined/indexed view tuples.
        let mut affected_shards: Vec<usize> = removals.iter().map(|(s, _, _, _)| *s).collect();
        affected_shards.sort_unstable();
        affected_shards.dedup();
        for si in affected_shards {
            let t_lock = Instant::now();
            let mut store = inner.shards[si].write();
            inner.obs.record(Phase::lock_shard_maint, t_lock.elapsed());
            if store.is_quarantined() {
                continue; // already drained: nothing cached to evict
            }
            let evict = catch_unwind(AssertUnwindSafe(|| {
                pmv_faultinject::fire_soft(Site::ShardMaint);
                for (s, bcp, row, via_index) in &removals {
                    if *s == si && store.remove_tuple(bcp, row) {
                        out.view_tuples_removed += 1;
                        local.maint_tuples_removed += 1;
                        if *via_index {
                            out.index_removals += 1;
                            local.maint_index_removals += 1;
                        }
                    }
                }
            }));
            let poisoned = evict.is_err();
            if poisoned {
                // Mid-eviction panic: some of this shard's removals may
                // not have been applied, so its cache can no longer be
                // trusted. Drain it.
                store.quarantine();
                local.quarantine_events += 1;
                inner.breaker.record_error();
            }
            inner.publish_shard(si, &store);
            drop(store);
            if poisoned {
                trace.event(EventKind::Quarantine { shard: si });
            }
        }

        // Insert watermark: bump every shard so stale completeness
        // claims lapse (the bcp's truth may have grown). Republish only
        // shards that actually held claims — insert-heavy batches on a
        // claim-free view stay O(shards) watermark bumps.
        if any_insert {
            for (si, s) in inner.shards.iter().enumerate() {
                let mut store = s.write();
                let had_claims = store.any_complete();
                store.note_insert();
                if had_claims {
                    inner.publish_shard(si, &store);
                }
            }
        }
        inner.mark_verified();
        inner.stats.add(&local);
        inner.obs.record(Phase::maint_join, t_start.elapsed());
        if inner.obs.enabled() {
            if let Some(acct) = inner.account.get() {
                acct.record_maintenance(t_start.elapsed(), out.join_rows as u64);
            }
        }
        trace.event(EventKind::MaintBatch {
            relation: batch.relation().to_string(),
            joined: out.deletes_joined + out.updates_joined,
            join_rows: out.join_rows,
            removed: out.view_tuples_removed,
            retries: out.retries,
            fallbacks: out.fallback_invalidations,
        });
        flush_faults(&mut trace, fault_cap.take());
        Ok(out)
    }

    /// One ΔR join with the transient-retry/backoff loop. `Ok(None)`
    /// means retries were exhausted (the caller drains the affected
    /// shards); permanent errors propagate.
    fn join_with_retry(
        &self,
        db: &Database,
        template: &QueryTemplate,
        rel_idx: usize,
        tuple: &Tuple,
        out: &mut MaintenanceOutcome,
        local: &mut PmvStats,
    ) -> Result<Option<Vec<Tuple>>> {
        let inner = &*self.inner;
        let mut attempt: u32 = 0;
        loop {
            match catch_unwind(AssertUnwindSafe(|| join_from(db, template, rel_idx, tuple))) {
                Ok(Ok(r)) => return Ok(Some(r)),
                Ok(Err(e)) if e.is_transient() => {}
                Ok(Err(e)) => return Err(e.into()),
                Err(_panic) => {}
            }
            if attempt >= inner.config.maint_retries {
                return Ok(None);
            }
            attempt += 1;
            out.retries += 1;
            local.maint_retries += 1;
            std::thread::sleep(inner.config.maint_backoff * (1u32 << (attempt - 1).min(10)));
        }
    }

    /// Retry-exhausted fallback: drain (quarantine) every shard the
    /// tuple may affect — removal-only, so the view under-serves until
    /// revalidated but never serves a tuple the delete should have
    /// evicted.
    fn drain_affected(
        &self,
        rel_idx: usize,
        tuple: &Tuple,
        out: &mut MaintenanceOutcome,
        local: &mut PmvStats,
    ) {
        let inner = &*self.inner;
        out.fallback_invalidations += 1;
        local.maint_fallbacks += 1;
        inner.breaker.record_error();
        for (si, s) in inner.shards.iter().enumerate() {
            let mut store = s.write();
            if !store.is_quarantined() && store.would_affect(rel_idx, tuple) {
                store.quarantine();
                local.quarantine_events += 1;
                inner.publish_shard(si, &store);
            }
        }
    }

    /// Apply several batches (e.g. a whole transaction's) in order, under
    /// the same visibility contract as [`Self::maintain`], then run the
    /// cross-relation union pass: a transaction deleting matching tuples
    /// from several base relations leaves derivations that no
    /// single-relation ΔR join rederives (each join sees the *other*
    /// relation's tuple already gone). Every multi-bound combination of
    /// the batches' before-images is joined with [`join_fixed`] and its
    /// rows removed too.
    pub fn maintain_all(
        &self,
        db: &Database,
        batches: &[DeltaBatch],
    ) -> Result<MaintenanceOutcome> {
        let inner = &*self.inner;
        let mut total = MaintenanceOutcome::default();
        for b in batches {
            let o = self.maintain(db, b)?;
            total.absorb(&o);
        }
        let template = inner.def.template().clone();
        let combos = cross_delta_combos(&template, batches);
        if !combos.is_empty() {
            let t0 = Instant::now();
            let mut local = PmvStats::default();
            // No shard lock is held during the joins (lint rule: never
            // an executor call under a shard guard).
            let mut removals: Vec<(usize, BcpKey, Tuple)> = Vec::new();
            for combo in &combos {
                let rows = join_fixed(db, &template, combo)?;
                total.join_rows += rows.len();
                local.maint_join_rows += rows.len() as u64;
                for row in rows {
                    let bcp = inner.def.bcp_of_tuple(&row);
                    removals.push((self.shard_of(&bcp), bcp, row));
                }
            }
            let mut shards_touched: Vec<usize> = removals.iter().map(|(s, _, _)| *s).collect();
            shards_touched.sort_unstable();
            shards_touched.dedup();
            for si in shards_touched {
                let mut store = inner.shards[si].write();
                if store.is_quarantined() {
                    continue;
                }
                for (s, bcp, row) in &removals {
                    if *s == si && store.remove_tuple(bcp, row) {
                        total.view_tuples_removed += 1;
                        local.maint_tuples_removed += 1;
                    }
                }
                inner.publish_shard(si, &store);
            }
            inner.stats.add(&local);
            inner.obs.record(Phase::maint_join, t0.elapsed());
            inner.mark_verified();
        }
        // Per-batch relevance is reported on the individual outcomes;
        // the transaction-level total keeps the historical `false`.
        total.unrelated_relation = false;
        Ok(total)
    }

    /// Re-execute each resident bcp's query shard by shard and drop any
    /// cached tuple not in the current answer (see
    /// [`crate::pipeline::Pmv::revalidate`]). Returns tuples removed.
    ///
    /// This is also the repair path: quarantined shards are empty, so
    /// revalidation trivially verifies them, lifts their quarantine (they
    /// refill lazily through O3), and resets the circuit breaker back to
    /// Healthy.
    pub fn revalidate(&self, db: &Database) -> Result<usize> {
        let inner = &*self.inner;
        let t_start = Instant::now();
        let mut trace = inner
            .obs
            .begin_trace_shared(TraceKind::Revalidate, &inner.trace_name);
        let mut removed = 0;
        for (si, shard) in inner.shards.iter().enumerate() {
            // Phase 1: snapshot the resident bcps under a brief read
            // guard, then re-derive each bcp's truth with NO shard lock
            // held. Holding the write guard across the executor (as this
            // loop originally did) blocked the shard for the whole sweep
            // and violated the repo lock rule the `pmv-lint`
            // `write_guard_across_exec` pass enforces.
            let bcps: Vec<BcpKey> = {
                let store = shard.read();
                store.iter().map(|(k, _)| k.clone()).collect()
            };
            let truths = bcp_truths(db, &inner.def, &bcps)?;
            // Phase 2: apply the diff under the write guard. Tuples
            // filled concurrently between the phases came from O3
            // executions against the same database state (the caller
            // holds the DB guard for the sweep), so the truth multisets
            // are still current; removal-only keeps this sound either
            // way.
            let t_lock = Instant::now();
            let mut store = shard.write();
            inner.obs.record(Phase::lock_shard_maint, t_lock.elapsed());
            for (bcp, mut budget) in truths {
                removed += remove_stale(&mut store, &bcp, &mut budget);
            }
            store.lift_quarantine();
            inner.publish_shard(si, &store);
        }
        // The sweep closes the failure episode: clear transient
        // panic/quarantine tallies (counters AND `[transient]`-tagged
        // histograms — the `[keep]` latency series survive) with the
        // breaker, then record it.
        inner.stats.reset_transient();
        inner.obs.reset_transient();
        let local = PmvStats {
            revalidations: 1,
            ..Default::default()
        };
        inner.stats.add(&local);
        inner.breaker.reset();
        inner.mark_verified();
        inner.obs.record(Phase::revalidate, t_start.elapsed());
        trace.event(EventKind::Revalidated { removed });
        Ok(removed)
    }

    /// Per-phase latency histograms and the lifecycle trace ring.
    pub fn obs(&self) -> &ObsRegistry {
        &self.inner.obs
    }

    /// Attach a per-template workload account (first attach wins; later
    /// calls are ignored). The serving path records into it only while
    /// observability is enabled, so the disabled fast path stays one
    /// relaxed load.
    pub fn attach_account(&self, acct: Arc<TemplateAccount>) {
        let _ = self.inner.account.set(acct);
    }

    /// The attached workload account, if any.
    pub fn account(&self) -> Option<&Arc<TemplateAccount>> {
        self.inner.account.get()
    }

    /// Attach an anomaly-triggered flight recorder (first attach wins).
    /// Dumps fire from locked-mode [`SharedPmv::run`] and from
    /// `EpochDb::query` after the pin drops — never inside a pin region,
    /// because a dump locks the trace ring and performs sink IO.
    pub fn attach_flight(&self, recorder: Arc<FlightRecorder>) {
        let _ = self.inner.flight.set(recorder);
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.inner.flight.get()
    }

    /// Whether a flight recorder is attached (one atomic load — the
    /// entire per-query cost when none is).
    pub fn flight_attached(&self) -> bool {
        self.inner.flight.get().is_some()
    }

    /// Inspect one finished query for anomalies and dump the flight
    /// recorder if one fired: a breaker trip since the last check
    /// (`breaker_trip`, or `quarantine` when the trip landed there), a
    /// degraded outcome, or end-to-end latency over the armed threshold.
    ///
    /// Must not be called while an epoch snapshot is pinned or a shard
    /// guard is held — the dump locks the trace ring and writes to the
    /// spool sink.
    pub fn flight_check(&self, outcome: &QueryOutcome, total: Duration) -> Option<PathBuf> {
        let inner = &*self.inner;
        let fr = inner.flight.get()?;
        let trips = inner.breaker.trip_count();
        // `swap` claims the trip for this thread: racing queries see the
        // updated count and dump nothing (trip counts are monotonic).
        let tripped = trips > inner.flight_trips_seen.swap(trips, Ordering::AcqRel);
        let reason = if tripped && inner.breaker.state() == ViewHealth::Quarantined {
            TriggerReason::Quarantine
        } else if tripped {
            TriggerReason::BreakerTrip
        } else if outcome.degraded.is_some() {
            TriggerReason::Degraded
        } else if fr.armed() && total.as_nanos() as u64 >= fr.latency_threshold_ns() {
            TriggerReason::LatencyThreshold
        } else {
            return None;
        };
        self.flight_dump(reason, total)
    }

    /// Unconditionally dump the flight recorder (if attached and within
    /// its dump budget): the trace-ring tail plus a full counter and
    /// phase-histogram snapshot, spooled through the recorder's sink.
    pub fn flight_dump(&self, reason: TriggerReason, total: Duration) -> Option<PathBuf> {
        let inner = &*self.inner;
        let fr = inner.flight.get()?;
        let traces = inner.obs.trace().tail(FLIGHT_TRACE_TAIL);
        let metrics = pmv_obs::spool::metrics_json_from(
            &inner.stats.snapshot().as_pairs(),
            &inner.obs.snapshots(),
        );
        fr.trigger(
            reason,
            &inner.trace_name,
            total.as_micros() as u64,
            &traces,
            &metrics,
        )
    }

    /// True when `self` and `other` are handles to the same underlying
    /// view (the group-commit combiner dedups views by this before
    /// running maintenance once over a merged batch).
    pub fn same_view(&self, other: &SharedPmv) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Toggle observability recording at runtime. Disabled recording
    /// costs one relaxed load per call site on the serving path.
    pub fn set_obs_enabled(&self, on: bool) {
        self.inner.obs.set_enabled(on);
    }

    /// Current health of the view (circuit-breaker state).
    pub fn health(&self) -> ViewHealth {
        self.inner.breaker.state()
    }

    /// The per-view circuit breaker (error rate, trip count).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.inner.breaker
    }

    /// Upper bound on partial-result staleness: time since the view last
    /// completed maintenance or revalidation.
    pub fn staleness(&self) -> Duration {
        self.inner.staleness()
    }

    /// Number of currently quarantined (drained) shards.
    pub fn quarantined_shards(&self) -> usize {
        self.inner
            .shards
            .iter()
            .filter(|s| s.read().is_quarantined())
            .count()
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> PmvStats {
        self.inner.stats.snapshot()
    }

    /// Zero the statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&self) {
        self.inner.stats.reset();
    }

    /// Total bcp entries across all shards.
    pub fn entry_count(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().entry_count())
            .sum()
    }

    /// Total cached tuples across all shards.
    pub fn tuple_count(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().tuple_count())
            .sum()
    }

    /// Approximate bytes cached across all shards.
    pub fn byte_size(&self) -> usize {
        self.inner.shards.iter().map(|s| s.read().byte_size()).sum()
    }

    /// Total entries evicted by the shard policies so far.
    pub fn evictions(&self) -> u64 {
        self.inner.shards.iter().map(|s| s.read().evictions()).sum()
    }

    /// Check every shard's structural invariants, returning a typed
    /// report instead of panicking (safe to call in production).
    pub fn validate(&self) -> ValidationReport {
        let shards = self
            .inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let store = s.read();
                ShardReport {
                    shard: i,
                    quarantined: store.is_quarantined(),
                    violations: store.check(),
                }
            })
            .collect();
        ValidationReport { shards }
    }

    /// Panicking variant of [`Self::validate`] for tests.
    pub fn debug_validate(&self) {
        let report = self.validate();
        assert!(
            report.is_consistent(),
            "shard invariants violated:\n{report}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_cache::PolicyKind;
    use pmv_index::IndexDef;
    use pmv_query::{Condition, TemplateBuilder, Transaction};
    use pmv_storage::{tuple, Column, ColumnType, Schema, Value};

    fn setup(shards: usize) -> (Database, SharedPmv) {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
        for i in 0..500i64 {
            db.insert("r", tuple![i, i % 10]).unwrap();
        }
        db.create_index(IndexDef::btree("r", vec![1])).unwrap();
        let t = TemplateBuilder::new("t")
            .relation(db.schema("r").unwrap())
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .build()
            .unwrap();
        let def = PartialViewDef::all_equality("shared", t).unwrap();
        let shared = SharedPmv::with_shards(def, PmvConfig::new(3, 16, PolicyKind::Clock), shards);
        (db, shared)
    }

    #[test]
    fn clones_share_state() {
        let (db, shared) = setup(4);
        let clone = shared.clone();
        let t = shared.def().template().clone();
        let q = t
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        shared.run(&db, &q).unwrap();
        // The clone sees the warm cache.
        let out = clone.run(&db, &q).unwrap();
        assert!(out.bcp_hit);
        assert_eq!(clone.stats().queries, 2);
        shared.debug_validate();
    }

    #[test]
    fn sharded_matches_plain_execution() {
        let (db, shared) = setup(4);
        let t = shared.def().template().clone();
        let pipeline = crate::pipeline::PmvPipeline::new();
        for round in 0..3 {
            for f in 0..10i64 {
                let q = t
                    .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                    .unwrap();
                let (mut plain, _, _) = pipeline.run_plain(&db, &q).unwrap();
                let out = shared.run(&db, &q).unwrap();
                let mut got = out.all_results();
                got.sort();
                plain.sort();
                assert_eq!(got, plain, "round {round} f={f}");
                assert_eq!(out.ds_leftover, 0);
            }
        }
        shared.debug_validate();
        // 10 distinct bcps over 4 shards of ⌈16/4⌉ = 4 entries; hash
        // imbalance may evict a few, but warm entries must exist and
        // later rounds must hit them.
        assert!(shared.entry_count() >= 1 && shared.entry_count() <= 10);
        assert_eq!(shared.stats().queries, 30);
        assert!(shared.stats().bcp_hit_queries >= 1);
    }

    #[test]
    fn single_shard_behaves_like_unsharded() {
        let (db, shared) = setup(1);
        assert_eq!(shared.shard_count(), 1);
        let t = shared.def().template().clone();
        let q = t
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        shared.run(&db, &q).unwrap();
        let out = shared.run(&db, &q).unwrap();
        assert!(out.bcp_hit);
        assert_eq!(out.partial.len(), 3); // F = 3 cached tuples served
        shared.debug_validate();
    }

    #[test]
    fn per_shard_capacity_splits_l() {
        let (_db, shared) = setup(4);
        // L = 16 over 4 shards → 4 per shard.
        for shard in &shared.inner.shards {
            assert_eq!(shard.read().l(), 4);
        }
        let (_db, one) = setup(1);
        assert_eq!(one.inner.shards[0].read().l(), 16);
    }

    #[test]
    fn maintenance_locks_only_affected_shards() {
        let (mut db, shared) = setup(4);
        let t = shared.def().template().clone();
        // Warm all ten bcps.
        for f in 0..10i64 {
            let q = t
                .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                .unwrap();
            shared.run(&db, &q).unwrap();
        }
        // Hold a read lock on a shard that f=3's bcp does NOT hash to;
        // maintenance for a row with f=3 must not block on it.
        let bcp3 = BcpKey::new(vec![crate::bcp::BcpDim::Eq(Value::Int(3))]);
        let affected = shared.shard_of(&bcp3);
        let other = (affected + 1) % shared.shard_count();
        let _outside_guard = shared.inner.shards[other].read();

        let row = db
            .relation("r")
            .unwrap()
            .read()
            .iter()
            .find(|(_, tu)| tu.get(1) == &Value::Int(3))
            .map(|(r, _)| r)
            .unwrap();
        let mut txn = Transaction::begin(&mut db);
        txn.delete("r", row).unwrap();
        let batches = txn.commit();
        let out = shared.maintain_all(&db, &batches).unwrap();
        assert_eq!(out.deletes_joined, 1);
        drop(_outside_guard);
        shared.debug_validate();
    }

    #[test]
    fn concurrent_queries_and_maintenance_stay_consistent() {
        let (db, shared) = setup(4);
        let db = Arc::new(parking_lot::RwLock::new(db));
        let t = shared.def().template().clone();

        let mut handles = Vec::new();
        for thread in 0..4 {
            let shared = shared.clone();
            let db = Arc::clone(&db);
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50i64 {
                    if thread == 0 && i % 5 == 0 {
                        // Maintainer thread: insert + maintain while the
                        // new database state is still invisible.
                        let mut guard = db.write();
                        let mut txn = Transaction::begin(&mut guard);
                        txn.insert(
                            "r",
                            pmv_storage::Tuple::new(vec![Value::Int(1000 + i), Value::Int(i % 10)]),
                        )
                        .unwrap();
                        let batches = txn.commit();
                        for b in &batches {
                            shared.maintain(&guard, b).unwrap();
                        }
                    } else {
                        let q = t
                            .bind(vec![Condition::Equality(vec![Value::Int(i % 10)])])
                            .unwrap();
                        let guard = db.read();
                        let out = shared.run(&guard, &q).unwrap();
                        assert_eq!(out.ds_leftover, 0, "stale partial result");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let guard = db.read();
        let removed = shared.revalidate(&guard).unwrap();
        assert_eq!(removed, 0, "no stale tuples after concurrent run");
        assert!(shared.stats().queries > 100);
        shared.debug_validate();
    }

    #[test]
    fn queries_record_phases_and_traces() {
        let (db, shared) = setup(4);
        let t = shared.def().template().clone();
        let q = t
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        shared.run(&db, &q).unwrap();
        let out = shared.run(&db, &q).unwrap();
        assert!(out.bcp_hit);
        for phase in [
            Phase::ttfr,
            Phase::full,
            Phase::o1_decompose,
            Phase::o3_exec,
        ] {
            let snap = shared.obs().snapshot(phase);
            assert_eq!(snap.count(), 2, "{} must record per query", phase.as_str());
        }
        // TTFR (through O2 only) is never slower than the full query.
        let ttfr = shared.obs().snapshot(Phase::ttfr);
        let full = shared.obs().snapshot(Phase::full);
        assert!(ttfr.sum_ns() <= full.sum_ns());
        // Per-shard probes: at least one per query, each traced.
        assert!(shared.obs().snapshot(Phase::o2_probe).count() >= 2);
        let traces = shared.obs().trace().tail(10);
        assert_eq!(traces.len(), 2);
        let hit = &traces[1];
        assert_eq!(&*hit.template, "shared");
        let names: Vec<_> = hit.events.iter().map(|e| e.kind.name()).collect();
        for expected in [
            "decompose",
            "breaker",
            "shard_probe",
            "first_results",
            "exec",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        assert!(
            hit.events.iter().any(|e| matches!(
                e.kind,
                EventKind::FirstResults { tuples, bcp_hit, .. } if tuples > 0 && bcp_hit
            )),
            "{hit}"
        );
    }

    #[test]
    fn revalidate_keeps_latency_history_but_resets_degraded() {
        let (db, shared) = setup(2);
        let t = shared.def().template().clone();
        let q = t
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        shared.run(&db, &q).unwrap();
        // A zero-budget view degrades every query, filling the
        // [transient] degraded histogram.
        let def = PartialViewDef::all_equality("tight", t.clone()).unwrap();
        let tight = SharedPmv::with_shards(
            def,
            PmvConfig::new(3, 16, PolicyKind::Clock).with_row_budget(0),
            2,
        );
        tight.run(&db, &q).unwrap();
        assert_eq!(tight.obs().snapshot(Phase::degraded).count(), 1);
        assert_eq!(tight.obs().snapshot(Phase::ttfr).count(), 1);

        tight.revalidate(&db).unwrap();
        assert_eq!(
            tight.obs().snapshot(Phase::degraded).count(),
            0,
            "[transient] histogram resets with the failure episode"
        );
        assert_eq!(
            tight.obs().snapshot(Phase::ttfr).count(),
            1,
            "[keep] latency history survives revalidation"
        );
        // Degraded queries land in `degraded`, not `full` (a degraded
        // latency would poison the healthy full-query series).
        assert_eq!(tight.obs().snapshot(Phase::full).count(), 0);

        // The sweep itself is timed and traced.
        assert_eq!(shared.obs().snapshot(Phase::revalidate).count(), 0);
        shared.revalidate(&db).unwrap();
        assert_eq!(shared.obs().snapshot(Phase::revalidate).count(), 1);
        let traces = shared.obs().trace().tail(10);
        let sweep = traces.last().unwrap();
        assert_eq!(sweep.kind, TraceKind::Revalidate);
        assert!(sweep.events.iter().any(|e| e.kind.name() == "revalidated"));
    }

    #[test]
    fn disabling_obs_stops_recording() {
        let (db, shared) = setup(2);
        shared.set_obs_enabled(false);
        let t = shared.def().template().clone();
        let q = t
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        shared.run(&db, &q).unwrap();
        assert_eq!(shared.obs().snapshot(Phase::ttfr).count(), 0);
        assert!(shared.obs().trace().is_empty());
        // Re-enabling picks recording back up on the shared registry.
        shared.set_obs_enabled(true);
        shared.run(&db, &q).unwrap();
        assert_eq!(shared.obs().snapshot(Phase::ttfr).count(), 1);
        assert_eq!(shared.obs().trace().len(), 1);
    }
}
