//! Fault-injection stress suite for the sharded PMV serving path.
//!
//! A seeded [`pmv_faultinject::FaultPlan`] mixes injected errors, panics
//! and latency into the probe/exec/fill/maintenance sites while 8 threads
//! hammer a [`SharedPmv`]. The consistency oracle asserts, per query,
//! against a fresh fault-suppressed execution under the *same* database
//! snapshot:
//!
//! * a complete outcome returns exactly the true multiset of results and
//!   leaves `ds_leftover == 0`;
//! * a degraded outcome's partials are a sub-multiset of the true answer
//!   (the cache under-serves, it never lies);
//! * no panic ever escapes `SharedPmv::run`/`maintain` (no poisoned
//!   shard, no aborted thread);
//! * after `revalidate`, zero stale tuples are found, every quarantined
//!   shard is lifted, and the breaker returns to Healthy.
//!
//! The plan is process-global, so every test here serializes on one
//! mutex. The `#[ignore]`d seed-matrix entry is run by the CI fault job
//! (`cargo test -p pmv-core --test fault_stress -- --ignored`) and honors
//! `PMV_FAULT_SEED=<u64>` for reproducing a single seed.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, Once};
use std::time::Duration;

use pmv_cache::PolicyKind;
use pmv_core::{
    BreakerConfig, CircuitBreaker, DegradeReason, PartialViewDef, PmvConfig, SharedPmv, ViewHealth,
};
use pmv_faultinject::{FaultKind, FaultPlan, Site, PANIC_PREFIX};
use pmv_index::IndexDef;
use pmv_query::{Condition, Database, TemplateBuilder, Transaction};
use pmv_storage::{tuple, Column, ColumnType, Schema, Tuple, Value};
use proptest::prelude::*;

/// The global fault plan is process-wide state: serialize every test in
/// this binary (cargo runs them on parallel threads by default).
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Injected panics are expected noise here; silence their default
/// backtrace spew while letting genuine panics print normally.
fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.starts_with(PANIC_PREFIX))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.starts_with(PANIC_PREFIX))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

fn setup(shards: usize, config: PmvConfig) -> (Database, SharedPmv) {
    let mut db = Database::new();
    db.create_relation(Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("f", ColumnType::Int),
        ],
    ))
    .unwrap();
    for i in 0..500i64 {
        db.insert("r", tuple![i, i % 10]).unwrap();
    }
    db.create_index(IndexDef::btree("r", vec![1])).unwrap();
    let t = TemplateBuilder::new("t")
        .relation(db.schema("r").unwrap())
        .select("r", "a")
        .unwrap()
        .cond_eq("r", "f")
        .unwrap()
        .build()
        .unwrap();
    let def = PartialViewDef::all_equality("stress", t).unwrap();
    (db, SharedPmv::with_shards(def, config, shards))
}

fn multiset<T: std::borrow::Borrow<Tuple>>(tuples: &[T]) -> HashMap<Tuple, usize> {
    let mut m = HashMap::new();
    for t in tuples {
        *m.entry(t.borrow().clone()).or_insert(0) += 1;
    }
    m
}

/// One full stress round under the given seed. Panics on any consistency
/// violation.
fn run_stress(seed: u64, iters: i64) {
    let _lock = TEST_LOCK.lock().unwrap();
    install_quiet_panic_hook();

    let (db, shared) = setup(8, PmvConfig::new(3, 16, PolicyKind::Clock));
    let plan = Arc::new(
        FaultPlan::new(seed)
            // The acceptance scenario: panics injected into O3 at 10%.
            .with_rule(Site::ExecStart, FaultKind::Panic, 0.10)
            .with_rule(Site::ExecRow, FaultKind::Error, 0.002)
            .with_rule(
                Site::ExecRow,
                FaultKind::Latency(Duration::from_micros(20)),
                0.001,
            )
            .with_rule(Site::ShardProbe, FaultKind::Panic, 0.03)
            .with_rule(Site::ShardFill, FaultKind::Panic, 0.03)
            .with_rule(Site::ShardMaint, FaultKind::Panic, 0.05)
            .with_rule(Site::MaintJoin, FaultKind::Error, 0.20),
    );
    let _guard = pmv_faultinject::install(Arc::clone(&plan));

    let db = Arc::new(parking_lot::RwLock::new(db));
    let t = shared.def().template().clone();

    let mut handles = Vec::new();
    for thread in 0..8i64 {
        let shared = shared.clone();
        let db = Arc::clone(&db);
        let t = t.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..iters {
                if thread == 0 && i % 5 == 0 {
                    // Maintainer: mutate + maintain while the new state is
                    // still invisible to readers (the visibility contract).
                    let mut guard = db.write();
                    let batches = if i % 10 == 0 {
                        let mut txn = Transaction::begin(&mut guard);
                        txn.insert("r", tuple![10_000 + i, i % 10]).unwrap();
                        txn.commit()
                    } else {
                        let row = guard
                            .relation("r")
                            .unwrap()
                            .read()
                            .iter()
                            .find(|(_, tu)| tu.get(1) == &Value::Int(i % 10))
                            .map(|(r, _)| r);
                        let Some(r) = row else { continue };
                        let mut txn = Transaction::begin(&mut guard);
                        txn.delete("r", r).unwrap();
                        txn.commit()
                    };
                    for b in &batches {
                        shared.maintain(&guard, b).unwrap();
                    }
                } else {
                    let q = t
                        .bind(vec![Condition::Equality(vec![Value::Int(i % 10)])])
                        .unwrap();
                    let guard = db.read();
                    let out = shared
                        .run(&guard, &q)
                        .expect("injected faults must degrade, not error");
                    // Consistency oracle: fresh fault-free execution under
                    // the same snapshot.
                    let truth = pmv_faultinject::suppress(|| pmv_query::execute(&*guard, &q))
                        .expect("oracle execution")
                        .0;
                    let mut truth = multiset(&truth);
                    if let Some(d) = out.degraded.as_ref() {
                        assert!(d.partial_only);
                        assert!(out.remaining_expanded.is_empty());
                        // Partials must be a sub-multiset of the truth.
                        for tu in &out.partial_expanded {
                            let slot = truth.get_mut(&**tu).unwrap_or_else(|| {
                                panic!("degraded query served stale tuple {tu} (seed {seed})")
                            });
                            assert!(*slot > 0, "over-served {tu} (seed {seed})");
                            *slot -= 1;
                        }
                    } else {
                        assert_eq!(out.ds_leftover, 0, "stale partial (seed {seed})");
                        let got: Vec<Tuple> = out
                            .partial_expanded
                            .iter()
                            .chain(&out.remaining_expanded)
                            .map(|t| (**t).clone())
                            .collect();
                        assert_eq!(
                            multiset(&got),
                            truth,
                            "complete outcome diverged from oracle (seed {seed})"
                        );
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("no panic may escape the serving path");
    }

    // The plan must have actually delivered faults.
    let counts = plan.counts();
    assert!(counts.panics > 0, "no panics delivered (seed {seed})");
    assert!(counts.errors > 0, "no errors delivered (seed {seed})");

    // Structural invariants hold even with quarantined shards.
    let report = shared.validate();
    assert!(report.is_consistent(), "{report}");

    let stats = shared.stats();
    assert!(stats.degraded_queries > 0, "expected degraded outcomes");
    assert_eq!(
        stats.degraded_queries,
        stats.exec_panics + stats.exec_errors + stats.budget_exceeded,
        "every degraded query must carry a reason"
    );

    // Self-healing: revalidate (fault-free) lifts quarantine, finds zero
    // stale tuples, and resets the breaker.
    let guard = db.read();
    let removed = pmv_faultinject::suppress(|| shared.revalidate(&guard)).unwrap();
    assert_eq!(
        removed, 0,
        "stale tuples survived until revalidate (seed {seed})"
    );
    assert_eq!(shared.quarantined_shards(), 0);
    assert_eq!(shared.health(), ViewHealth::Healthy);
    shared.debug_validate();

    // And the view serves full correct answers again.
    let q = t
        .bind(vec![Condition::Equality(vec![Value::Int(3)])])
        .unwrap();
    let out = pmv_faultinject::suppress(|| shared.run(&guard, &q)).unwrap();
    assert!(out.degraded.is_none());
    assert_eq!(out.ds_leftover, 0);
    let truth = pmv_faultinject::suppress(|| pmv_query::execute(&*guard, &q))
        .unwrap()
        .0;
    let got: Vec<Tuple> = out
        .partial_expanded
        .iter()
        .chain(&out.remaining_expanded)
        .map(|t| (**t).clone())
        .collect();
    assert_eq!(multiset(&got), multiset(&truth));
}

#[test]
fn fault_stress_default_seed() {
    run_stress(42, 40);
}

/// CI fault job: `cargo test -p pmv-core --test fault_stress -- --ignored`.
/// Set `PMV_FAULT_SEED=<u64>` to reproduce one seed.
#[test]
#[ignore = "long-running seed matrix; run explicitly or in the CI fault job"]
fn fault_stress_seed_matrix() {
    let seeds: Vec<u64> = match std::env::var("PMV_FAULT_SEED") {
        Ok(s) => vec![s.parse().expect("PMV_FAULT_SEED must be a u64")],
        Err(_) => vec![1, 7, 42, 1337, 0xdead_beef, 987_654_321],
    };
    for seed in seeds {
        run_stress(seed, 60);
    }
}

/// Deadline/row-budget degradation without any fault plan: a tuple budget
/// of 1 cannot finish O3 over 50 matching rows, so the query degrades.
#[test]
fn row_budget_degrades_instead_of_blocking() {
    let _lock = TEST_LOCK.lock().unwrap();
    let (db, shared) = setup(
        4,
        PmvConfig::new(3, 16, PolicyKind::Clock).with_row_budget(1),
    );
    let t = shared.def().template().clone();
    let q = t
        .bind(vec![Condition::Equality(vec![Value::Int(3)])])
        .unwrap();
    let out = shared.run(&db, &q).unwrap();
    let d = out.degraded.expect("budget must degrade the outcome");
    assert_eq!(d.reason, DegradeReason::TupleBudget);
    assert!(d.partial_only);
    assert!(out.remaining_expanded.is_empty());
    assert_eq!(shared.stats().budget_exceeded, 1);
    assert_eq!(shared.stats().degraded_queries, 1);
}

/// A zero deadline degrades with the Deadline reason and still returns
/// any already-cached partials.
#[test]
fn zero_deadline_degrades_with_partials() {
    let _lock = TEST_LOCK.lock().unwrap();
    let (db, warm) = setup(4, PmvConfig::new(3, 16, PolicyKind::Clock));
    let t = warm.def().template().clone();
    let q = t
        .bind(vec![Condition::Equality(vec![Value::Int(3)])])
        .unwrap();
    // Warm the cache with an unlimited run, then impose the deadline via
    // a second view? No — the budget is per-config; warm first, then
    // check the deadline path on the same view by rebuilding with a
    // pre-warmed store is not exposed. Instead: warm, then verify a
    // fresh zero-deadline view still answers (degraded, empty partials).
    warm.run(&db, &q).unwrap();
    let out = warm.run(&db, &q).unwrap();
    assert!(out.bcp_hit);

    let (db2, cold) = setup(
        4,
        PmvConfig::new(3, 16, PolicyKind::Clock).with_deadline(Duration::ZERO),
    );
    let q = cold
        .def()
        .template()
        .bind(vec![Condition::Equality(vec![Value::Int(3)])])
        .unwrap();
    let out = cold.run(&db2, &q).unwrap();
    let d = out.degraded.expect("zero deadline must degrade");
    assert_eq!(d.reason, DegradeReason::Deadline);
    assert!(out.partial.is_empty(), "cold cache has nothing to serve");
}

/// The single-threaded pipeline (the CLI's serving path) must also catch
/// executor panics and degrade instead of unwinding through the caller.
#[test]
fn pipeline_exec_panic_degrades() {
    let _lock = TEST_LOCK.lock().unwrap();
    install_quiet_panic_hook();
    let (db, shared) = setup(1, PmvConfig::new(3, 16, PolicyKind::Clock));
    let t = shared.def().template().clone();
    let def = PartialViewDef::all_equality("single", t.clone()).unwrap();
    let mut pmv = pmv_core::Pmv::new(def, PmvConfig::new(3, 16, PolicyKind::Clock));
    let pipeline = pmv_core::PmvPipeline::new();
    let q = t
        .bind(vec![Condition::Equality(vec![Value::Int(3)])])
        .unwrap();

    // Warm the cache fault-free so the degraded outcome has partials.
    pipeline.run(&db, &mut pmv, &q).unwrap();
    pipeline.run(&db, &mut pmv, &q).unwrap();
    let truth = multiset(
        &pmv_query::execute(&db, &q)
            .unwrap()
            .0
            .iter()
            .map(|t| q.template().user_tuple(t))
            .collect::<Vec<_>>(),
    );

    let plan = FaultPlan::new(9).with_rule(Site::ExecStart, FaultKind::Panic, 1.0);
    let _guard = pmv_faultinject::install(Arc::new(plan));
    let out = pipeline
        .run(&db, &mut pmv, &q)
        .expect("exec panic must degrade, not unwind");
    let d = out.degraded.expect("panicked O3 must flag degradation");
    assert_eq!(d.reason, DegradeReason::ExecPanic);
    assert!(d.partial_only);
    assert!(out.remaining_expanded.is_empty());
    assert!(!out.partial.is_empty(), "warmed cache must still serve");
    for tu in &out.partial {
        assert!(truth.contains_key(tu), "served tuple absent from truth");
    }
    assert_eq!(pmv.stats().exec_panics, 1);
    assert_eq!(pmv.stats().degraded_queries, 1);
    drop(_guard);

    // Fault-free again: back to complete answers.
    let out = pipeline.run(&db, &mut pmv, &q).unwrap();
    assert!(out.degraded.is_none());
    assert_eq!(out.ds_leftover, 0);
}

/// Injected latency must be *visible*: it has to show up in the O3
/// histogram tail and as a `fault_fired` trace event. (Before the obs
/// layer, `FaultKind::Latency` slowed queries without leaving any mark —
/// the one fault class invisible to every counter.)
#[test]
fn injected_latency_is_visible_in_histograms_and_traces() {
    use pmv_core::{EventKind, Phase};
    let _lock = TEST_LOCK.lock().unwrap();
    let (db, shared) = setup(4, PmvConfig::new(3, 16, PolicyKind::Clock));
    let t = shared.def().template().clone();
    let q = t
        .bind(vec![Condition::Equality(vec![Value::Int(3)])])
        .unwrap();
    // Fault-free baseline: O3 is fast and no fault events are recorded.
    shared.run(&db, &q).unwrap();
    let baseline = shared.obs().snapshot(Phase::o3_exec);
    assert_eq!(baseline.count(), 1);

    let injected = Duration::from_millis(3);
    let plan = FaultPlan::new(11).with_rule(Site::ExecStart, FaultKind::Latency(injected), 1.0);
    let guard = pmv_faultinject::install(Arc::new(plan));
    let out = shared.run(&db, &q).unwrap();
    drop(guard);
    assert!(out.degraded.is_none(), "latency alone must not degrade");
    assert_eq!(out.ds_leftover, 0);

    // The sleep lands in the O3 execute histogram's tail.
    let o3 = shared.obs().snapshot(Phase::o3_exec);
    assert_eq!(o3.count(), 2);
    assert!(
        o3.max() >= injected,
        "O3 max {:?} must include the injected {injected:?}",
        o3.max()
    );
    assert!(
        o3.quantile(0.99) >= injected,
        "p99 {:?} must sit in the injected tail",
        o3.quantile(0.99)
    );
    assert!(
        baseline.max() < injected,
        "baseline O3 {:?} must be faster than the injection",
        baseline.max()
    );

    // The trace records the fault delivery itself.
    let traces = shared.obs().trace().tail(2);
    assert_eq!(traces.len(), 2);
    let fired: Vec<_> = traces[1]
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::FaultFired { site, kind } => Some((site.clone(), kind.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(fired.len(), 1, "exactly one fault fired: {traces:?}");
    assert_eq!(fired[0].0, Site::ExecStart.to_string());
    assert!(
        fired[0].1.starts_with("latency:"),
        "kind must carry the delay, got '{}'",
        fired[0].1
    );
    assert!(
        traces[0]
            .events
            .iter()
            .all(|e| !matches!(e.kind, EventKind::FaultFired { .. })),
        "the fault-free query must record no fault events"
    );
}

/// A quarantined view never serves partials, but queries still get full
/// correct answers from O3.
#[test]
fn quarantined_view_serves_full_results_only() {
    let _lock = TEST_LOCK.lock().unwrap();
    let (db, shared) = setup(4, PmvConfig::new(3, 16, PolicyKind::Clock));
    let t = shared.def().template().clone();
    let q = t
        .bind(vec![Condition::Equality(vec![Value::Int(3)])])
        .unwrap();
    shared.run(&db, &q).unwrap();
    let out = shared.run(&db, &q).unwrap();
    assert!(out.bcp_hit, "warm cache must hit before quarantine");

    shared.breaker().force_quarantine();
    assert_eq!(shared.health(), ViewHealth::Quarantined);
    let out = shared.run(&db, &q).unwrap();
    assert!(out.partial.is_empty(), "quarantined view must not serve");
    assert!(!out.bcp_hit);
    assert!(out.degraded.is_none(), "full O3 answer is not degraded");
    assert_eq!(out.ds_leftover, 0);
    let truth = pmv_query::execute(&db, &q).unwrap().0;
    assert_eq!(multiset(&out.remaining_expanded), multiset(&truth));

    // Revalidate heals the view; serving resumes.
    shared.revalidate(&db).unwrap();
    assert_eq!(shared.health(), ViewHealth::Healthy);
    shared.run(&db, &q).unwrap();
    let out = shared.run(&db, &q).unwrap();
    assert!(out.bcp_hit, "serving resumes after revalidate");
}

proptest! {
    /// The circuit breaker never allows serving from Quarantined, under
    /// any sequence of ok/error events: once quarantined it stays until
    /// an explicit reset, and `allow_serve()` always equals
    /// `state() != Quarantined`.
    #[test]
    fn breaker_never_serves_from_quarantined(
        events in proptest::collection::vec(any::<bool>(), 1..300),
        window in 4u64..64,
        min_events in 1u64..16,
    ) {
        let b = CircuitBreaker::new(BreakerConfig {
            window,
            degrade_threshold: 0.1,
            quarantine_threshold: 0.5,
            min_events,
        });
        let mut tripped = false;
        for ok in events {
            if ok { b.record_ok() } else { b.record_error() }
            if b.state() == ViewHealth::Quarantined {
                tripped = true;
            }
            if tripped {
                prop_assert_eq!(b.state(), ViewHealth::Quarantined);
                prop_assert!(!b.allow_serve(), "served from Quarantined");
            }
            prop_assert_eq!(b.allow_serve(), b.state() != ViewHealth::Quarantined);
        }
        if tripped {
            prop_assert!(b.trip_count() >= 1);
            b.reset();
            prop_assert_eq!(b.state(), ViewHealth::Healthy);
            prop_assert!(b.allow_serve());
        }
    }
}
