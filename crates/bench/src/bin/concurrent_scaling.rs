//! Concurrent PMV probe throughput: thread count × shard count sweep.
//!
//! The sharded `SharedPmv` replaces the old whole-PMV mutex with one
//! `RwLock`ed store per bcp-hash shard, so O2 probes for *different* bcps
//! proceed in parallel. This experiment measures exactly that: a warmed
//! PMV over `B` disjoint bcps is probed by `t` threads, each owning a
//! disjoint slice of the bcp space (thread `i` queries bcps `i, i+t, …`),
//! and reports end-to-end queries/second for every (threads × shards)
//! combination plus the speedup over the single-thread run at the same
//! shard count.
//!
//! With the obs registry enabled (the default) each cell also reports
//! the time-to-first-result (query start → O2 partials returned) and
//! full-query latency percentiles from the lock-free phase histograms —
//! the paper's "immediate partial results" claim (Figs. 8/9) made
//! measurable. A final section runs one cell with observability off and
//! on to bound the instrumentation overhead.
//!
//! Expected shape: with 1 shard every probe serializes on the single
//! shard lock and speedup stays near 1×; with shards ≥ threads the
//! disjoint bcps hash across different shards and throughput scales with
//! the thread count until execution cost dominates. (On a single-core
//! host every configuration serializes on the CPU and speedups hover
//! around 1× regardless of shard count — run on a multi-core machine to
//! see the shard effect.)
//!
//! # Oversubscription and tail latencies
//!
//! The sweep is a **closed loop**: each thread issues its next query the
//! moment the previous one returns. When `threads` exceeds the host's
//! cores, a thread is routinely preempted *mid-query* and its full-query
//! latency absorbs one or more scheduler timeslices — the 4.1 ms
//! `full_p99_us` outliers previously committed at 2×4/2×16 (and 11.5 ms
//! at 8×16) sit almost exactly on the kernel's ~4 ms CFS slice, and the
//! measured phase of this sweep performs **zero commits**, so a
//! writer-lock convoy is ruled out: they are a harness pacing artifact
//! of running more closed-loop threads than cores, not a serving-path
//! defect. The JSON therefore records the host `cores` and flags each
//! cell `oversubscribed` (`threads > cores`); `bench_regression` holds
//! tail-latency bounds only for cells the host could actually schedule
//! concurrently.
//!
//! `--quick` scales the workload down ~10× for a smoke run.
//! `--snapshot-mode={locked,epoch}` selects the serving path: `locked`
//! takes the database read lock per query ([`SharedPmv::run`]); `epoch`
//! (the default) pins the published snapshot and serves wait-free
//! ([`EpochDb::query`] → `run_pinned`). The chosen mode is recorded in
//! the JSON so regression diffs compare like with like.
//! `--json [path]` additionally writes the machine-readable series to
//! `BENCH_pmv.json` (or `path`) for CI artifacts and regression diffs.
//! `--faults <spec>` installs a `pmv-faultinject` plan for the measured
//! phase (e.g. `seed=42;exec-start:panic@0.05`), turning the
//! `degraded_query_rate` / `quarantine_events` series non-zero so the
//! degradation overhead can be compared against the clean run.
//! `--durability` appends a commit-throughput comparison — the same
//! single-insert commit stream through an in-memory `EpochDb` and
//! through one opened on a data directory (WAL append + fsync per
//! combine round, durable-before-visible) — plus recovery time at
//! several WAL lengths. The serving-path sweep above is unaffected:
//! without `--data-dir` the durability hook is `None` and costs nothing.
//!
//! # Group-commit pipeline cell
//!
//! After the read-only sweep a separate **mixed commit+query** cell
//! runs 8 threads that alternate a single-row insert (through
//! [`EpochDb::commit`], so group commit batches them) with a probe of
//! the same PMV. This is the cell where the commit pipeline actually
//! contends — master write lock, shard maintenance locks, snapshot
//! publish — and it feeds two JSON sections: `group_commit` (batch
//! sizes, coalesced requests, maintenance passes saved, snapshot reuse,
//! pin-cache hit rate) and `profile`, a ranked [`ProfileReport`] of
//! contention sites / template costs / pipeline stages in exactly the
//! schema `pmv-profile` consumes. `--flight-spool [dir]` additionally
//! attaches a zero-threshold flight recorder over a `DiskSpool` so CI
//! gets real dump files to round-trip through `pmv-profile`.
//!
//! # Maintenance-heavy cell
//!
//! A separate **Zipfian-delete** cell replays one deterministic
//! delete stream over a two-relation join view twice: once with
//! `MaintStrategy::DeltaJoin` (every delete pays the ΔR ⋈ S join) and
//! once with the default `HeavyLight` routing (hot delta keys resolve
//! through the delta-key index, cold keys coalesce into one join per
//! distinct tuple per batch). It emits the `maintenance` JSON section —
//! rows touched per delete under each strategy, the improvement ratio
//! `bench_regression` gates at ≥ 10×, and the heavy/light/coalesced/
//! upquery telemetry.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use pmv_bench::tpcr_harness::{arg_flag, arg_value};
use pmv_bench::ExperimentReport;
use pmv_cache::PolicyKind;
use pmv_core::{
    EpochDb, MaintStrategy, ObsRegistry, PartialViewDef, Phase, PmvConfig, PmvStats, SharedPmv,
};
use pmv_index::IndexDef;
use pmv_obs::profile::split_phases;
use pmv_obs::{FlightRecorder, HistSnapshot, ProfileReport, TemplateAccount, TemplateCost};
use pmv_query::{Condition, Database, QueryTemplate, TemplateBuilder, Transaction};
use pmv_storage::{tuple, Column, ColumnType, RowId, Schema, Value};
use pmv_wal::DiskSpool;
use std::sync::Arc;

/// One measured (threads × shards) cell.
struct CellResult {
    threads: usize,
    shards: usize,
    /// True when `threads` exceeds the host's cores: full-query tail
    /// latencies then include scheduler preemption (module docs) and
    /// must not gate regressions.
    oversubscribed: bool,
    qps: f64,
    speedup: f64,
    ttfr_p50_us: u128,
    ttfr_p99_us: u128,
    full_p50_us: u128,
    full_p99_us: u128,
    degraded_query_rate: f64,
    quarantine_events: u64,
}

fn main() {
    let quick = arg_flag("--quick");
    let (rows, bcps, per_thread) = if quick {
        (2_000i64, 32i64, 300usize)
    } else {
        (20_000i64, 64i64, 2_000usize)
    };
    let json_path = arg_flag("--json").then(|| {
        arg_value("--json")
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| "BENCH_pmv.json".to_string())
    });
    let mode = arg_value("--snapshot-mode").unwrap_or_else(|| "epoch".to_string());
    let epoch_mode = match mode.as_str() {
        "epoch" => true,
        "locked" => false,
        other => {
            eprintln!("bad --snapshot-mode '{other}': expected 'locked' or 'epoch'");
            std::process::exit(2);
        }
    };
    let faulty = arg_value("--faults").map(|spec| {
        let plan = pmv_faultinject::FaultPlan::parse(&spec).unwrap_or_else(|e| {
            eprintln!("bad --faults spec: {e}");
            std::process::exit(2);
        });
        eprintln!("fault injection active: {spec}");
        pmv_faultinject::install(std::sync::Arc::new(plan))
    });

    if faulty.is_some() {
        // Injected panics are caught by the serving path; keep the
        // default hook from spamming a backtrace for each one.
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.starts_with(pmv_faultinject::PANIC_PREFIX))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.starts_with(pmv_faultinject::PANIC_PREFIX))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    }

    let mut db = Database::new();
    db.create_relation(Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("f", ColumnType::Int),
        ],
    ))
    .unwrap();
    for i in 0..rows {
        db.insert("r", tuple![i, i % bcps]).unwrap();
    }
    db.create_index(IndexDef::btree("r", vec![1])).unwrap();
    // `a` is a running counter; declaring it lets the serving path prove
    // `by_f` emits duplicate-free rows and skip O3 dedup bookkeeping.
    db.declare_unique_key("r", &["a"]).unwrap();
    let template = TemplateBuilder::new("by_f")
        .relation(db.schema("r").unwrap())
        .select("r", "a")
        .unwrap()
        .cond_eq("r", "f")
        .unwrap()
        .build()
        .unwrap();

    // The database never changes during the sweep, so one EpochDb serves
    // every cell: locked mode takes its read lock per query, epoch mode
    // pins its published snapshot.
    let edb = EpochDb::new(db);

    let thread_counts = [1usize, 2, 4, 8];
    let shard_counts = [1usize, 4, 16];
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    eprintln!("snapshot mode: {mode} (host cores: {cores})");
    let mut report = ExperimentReport::new(
        "concurrent_scaling",
        "O2 probe throughput + latency percentiles, threads x shards, disjoint bcps",
        "threads",
    );
    let mut cells: Vec<CellResult> = Vec::new();
    let mut baselines = vec![0.0f64; shard_counts.len()];
    for &threads in &thread_counts {
        let mut values = Vec::new();
        for (si, &shards) in shard_counts.iter().enumerate() {
            let (shared, qps) = run_cell(
                &edb, &template, bcps, threads, shards, per_thread, true, epoch_mode,
            );
            let stats = shared.stats();
            assert_eq!(stats.queries as usize, threads * per_thread);
            if threads == 1 {
                baselines[si] = qps;
            }
            let speedup = qps / baselines[si];
            let ttfr = shared.obs().snapshot(Phase::ttfr);
            let full = shared.obs().snapshot(Phase::full);
            assert_eq!(
                ttfr.count() as usize,
                threads * per_thread,
                "every query must record a time-to-first-result sample"
            );
            let cell = CellResult {
                threads,
                shards,
                oversubscribed: threads > cores,
                qps,
                speedup,
                ttfr_p50_us: ttfr.quantile(0.5).as_micros(),
                ttfr_p99_us: ttfr.quantile(0.99).as_micros(),
                full_p50_us: full.quantile(0.5).as_micros(),
                full_p99_us: full.quantile(0.99).as_micros(),
                degraded_query_rate: stats.degraded_query_rate(),
                quarantine_events: stats.quarantine_events,
            };
            eprintln!(
                "threads={threads} shards={shards}: {qps:.0} q/s ({speedup:.2}x), \
                 ttfr p50/p99 {}/{} µs, full p50/p99 {}/{} µs, hit rate {:.3}",
                cell.ttfr_p50_us,
                cell.ttfr_p99_us,
                cell.full_p50_us,
                cell.full_p99_us,
                stats.bcp_hit_queries as f64 / stats.queries as f64
            );
            values.push((format!("shards={shards} q/s"), qps));
            values.push((format!("shards={shards} speedup"), speedup));
            values.push((
                format!("shards={shards} ttfr_p50_us"),
                cell.ttfr_p50_us as f64,
            ));
            values.push((
                format!("shards={shards} ttfr_p99_us"),
                cell.ttfr_p99_us as f64,
            ));
            values.push((
                format!("shards={shards} degraded_query_rate"),
                cell.degraded_query_rate,
            ));
            values.push((
                format!("shards={shards} quarantine_events"),
                cell.quarantine_events as f64,
            ));
            cells.push(cell);
        }
        report.push(threads.to_string(), values);
    }

    // Observability overhead: the same cell with the registry off and
    // on (best of 3 each to damp scheduler noise). The disabled path
    // differs from uninstrumented code by one relaxed load per record
    // site; the enabled-vs-disabled delta therefore upper-bounds the
    // cost of leaving observability off.
    let (ov_threads, ov_shards) = (*thread_counts.last().unwrap(), 16);
    let mut qps_off = 0.0f64;
    let mut qps_on = 0.0f64;
    for _ in 0..3 {
        let (_, q) = run_cell(
            &edb, &template, bcps, ov_threads, ov_shards, per_thread, false, epoch_mode,
        );
        qps_off = qps_off.max(q);
        let (_, q) = run_cell(
            &edb, &template, bcps, ov_threads, ov_shards, per_thread, true, epoch_mode,
        );
        qps_on = qps_on.max(q);
    }
    let overhead_pct = (1.0 - qps_on / qps_off) * 100.0;
    eprintln!(
        "obs overhead (threads={ov_threads} shards={ov_shards}): \
         disabled {qps_off:.0} q/s, enabled {qps_on:.0} q/s, \
         enabling costs {overhead_pct:.1}% (<5% required when disabled)"
    );
    report.print();
    // Separate report: its rows have different columns than the sweep.
    let mut obs_report = ExperimentReport::new(
        "concurrent_scaling_obs_overhead",
        "observability cost, same cell with the registry off vs on",
        "mode",
    );
    obs_report.push(
        format!("threads={ov_threads} shards={ov_shards}"),
        vec![
            ("qps_obs_disabled".to_string(), qps_off),
            ("qps_obs_enabled".to_string(), qps_on),
            ("obs_overhead_pct".to_string(), overhead_pct),
        ],
    );
    obs_report.print();

    // Mixed commit+query cell: the only part of the run where the
    // commit pipeline contends, and the source of the `group_commit`
    // and `profile` JSON sections.
    let flight_dir = arg_flag("--flight-spool").then(|| {
        arg_value("--flight-spool")
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| "pmv_flight_spool".to_string())
    });
    let pipe = measure_pipeline(quick, epoch_mode, flight_dir.as_deref().map(Path::new));
    eprintln!(
        "group commit ({} threads, {} commits): {} batch(es), mean batch {:.2}, \
         {} coalesced, {} maint pass(es) saved, queue depth p99 {}, \
         snap reuse {:.2}, pin-cache hit rate {:.2}, flight dumps {}",
        pipe.threads,
        pipe.commits,
        pipe.commit_batches,
        pipe.mean_batch_size,
        pipe.commit_reqs_coalesced,
        pipe.maint_passes_saved,
        pipe.queue_depth_p99,
        pipe.snap_reuse_ratio,
        pipe.pin_cache_hit_rate,
        pipe.flight_dumps,
    );
    eprintln!("top contention site: {}", pipe.top_site);
    if let Some(dir) = &flight_dir {
        eprintln!("flight spool: {dir} ({} dump(s))", pipe.flight_dumps);
    }
    let mut pipe_report = ExperimentReport::new(
        "concurrent_scaling_group_commit",
        "mixed commit+query cell: batching efficacy and snapshot-path reuse",
        "threads",
    );
    pipe_report.push(
        pipe.threads.to_string(),
        vec![
            ("commits".to_string(), pipe.commits as f64),
            ("commit_batches".to_string(), pipe.commit_batches as f64),
            ("mean_batch_size".to_string(), pipe.mean_batch_size),
            (
                "commit_reqs_coalesced".to_string(),
                pipe.commit_reqs_coalesced as f64,
            ),
            (
                "maint_passes_saved".to_string(),
                pipe.maint_passes_saved as f64,
            ),
            ("queue_depth_p99".to_string(), pipe.queue_depth_p99 as f64),
            ("snap_reuse_ratio".to_string(), pipe.snap_reuse_ratio),
            ("pin_cache_hit_rate".to_string(), pipe.pin_cache_hit_rate),
        ],
    );
    pipe_report.print();

    // Maintenance-heavy cell: the same Zipfian delete stream through
    // the ΔR-join baseline and the delta-key-index paths.
    let maint = measure_maintenance(quick, epoch_mode);
    eprintln!(
        "maintenance ({} deletes, batch {}, fanout {}): \
         delta-join {:.1} rows/delete vs heavy-light {:.2} rows/delete \
         ({:.1}x fewer rows touched); {} heavy / {} light delta(s), \
         {} coalesced join(s), {} index removal(s), {} upquery(ies) \
         ({} row(s)), {} complete serve(s)",
        maint.deletes,
        maint.batch,
        maint.fanout,
        maint.baseline_rows_per_delete,
        maint.indexed_rows_per_delete,
        maint.improvement_x,
        maint.heavy_deltas,
        maint.light_deltas,
        maint.coalesced_joins,
        maint.index_removals,
        maint.upqueries,
        maint.upquery_rows,
        maint.complete_serves,
    );
    let mut maint_report = ExperimentReport::new(
        "concurrent_scaling_maintenance",
        "Zipfian delete stream: rows touched per delete, delta-join vs delta-key index",
        "strategy",
    );
    maint_report.push(
        "delta_join".to_string(),
        vec![
            ("rows_per_delete".to_string(), maint.baseline_rows_per_delete),
            (
                "deletes_per_sec".to_string(),
                maint.baseline_deletes_per_sec,
            ),
        ],
    );
    maint_report.push(
        "heavy_light".to_string(),
        vec![
            ("rows_per_delete".to_string(), maint.indexed_rows_per_delete),
            ("deletes_per_sec".to_string(), maint.indexed_deletes_per_sec),
        ],
    );
    maint_report.print();

    let durability = arg_flag("--durability").then(|| {
        let d = measure_durability(quick);
        eprintln!(
            "durability ({} single-insert commits): in-memory {:.0} commits/s, \
             WAL+fsync {:.0} commits/s ({:.1}x overhead), {} WAL byte(s)",
            d.commits,
            d.mem_cps,
            d.wal_cps,
            d.mem_cps / d.wal_cps,
            d.wal_bytes
        );
        let mut dur_report = ExperimentReport::new(
            "durability_overhead",
            "commit throughput with and without WAL fsync; recovery time vs WAL length",
            "wal_records",
        );
        for &(records, ms) in &d.recovery {
            eprintln!("recovery: {records} WAL record(s) replayed in {ms:.2} ms");
            dur_report.push(
                records.to_string(),
                vec![
                    ("recovery_ms".to_string(), ms),
                    ("mem_commits_per_sec".to_string(), d.mem_cps),
                    ("wal_commits_per_sec".to_string(), d.wal_cps),
                ],
            );
        }
        dur_report.print();
        d
    });

    if let Some(path) = json_path {
        let json = cells_to_json(
            quick,
            &mode,
            cores,
            &cells,
            ov_threads,
            ov_shards,
            qps_off,
            qps_on,
            &pipe,
            &maint,
            durability.as_ref(),
        );
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path} ({} cells)", cells.len());
    }
}

/// Serve one query on the selected path: `epoch` pins the published
/// snapshot (wait-free), `locked` holds the database read lock.
fn serve(
    edb: &EpochDb,
    shared: &SharedPmv,
    q: &pmv_query::QueryInstance,
    epoch_mode: bool,
) -> pmv_core::QueryOutcome {
    if epoch_mode {
        edb.query(shared, q).unwrap()
    } else {
        let guard = edb.read();
        shared.run(&guard, q).unwrap()
    }
}

/// Build, warm, and measure one (threads × shards) configuration.
/// Returns the shared PMV (for stats/histograms) and queries/second.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    edb: &EpochDb,
    template: &Arc<QueryTemplate>,
    bcps: i64,
    threads: usize,
    shards: usize,
    per_thread: usize,
    obs_enabled: bool,
    epoch_mode: bool,
) -> (SharedPmv, f64) {
    let def = PartialViewDef::all_equality("bench_pmv", template.clone()).unwrap();
    let config = PmvConfig::new(8, (bcps as usize) * 2, PolicyKind::Clock);
    let shared = SharedPmv::with_shards(def, config, shards);
    shared.set_obs_enabled(obs_enabled);
    // Gate the commit-pipeline registry too, so the "obs disabled" leg
    // of the overhead comparison really is a single relaxed load per
    // record site across both registries.
    edb.obs().set_enabled(obs_enabled);
    // Warm every bcp: the first run fills it, the second serves
    // partials, so the measured phase is all O2 hits.
    for f in 0..bcps {
        let q = template
            .bind(vec![Condition::Equality(vec![Value::Int(f)])])
            .unwrap();
        serve(edb, &shared, &q, epoch_mode);
        serve(edb, &shared, &q, epoch_mode);
    }
    shared.reset_stats();
    shared.obs().reset();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let shared = shared.clone();
            let template = template.clone();
            scope.spawn(move || {
                // Disjoint slice of the bcp space per thread.
                let mut f = t as i64 % bcps;
                for _ in 0..per_thread {
                    let q = template
                        .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                        .unwrap();
                    let out = serve(edb, &shared, &q, epoch_mode);
                    assert_eq!(out.ds_leftover, 0);
                    f = (f + threads as i64) % bcps;
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let qps = (threads * per_thread) as f64 / secs;
    (shared, qps)
}

/// Everything the mixed commit+query cell measures: group-commit
/// batching efficacy, snapshot-path reuse, and the ranked profile.
struct PipelineResult {
    threads: usize,
    commits: usize,
    commit_batches: u64,
    commit_reqs_coalesced: u64,
    maint_passes_saved: u64,
    /// Mean commits per combine round (batch-size histogram mean).
    mean_batch_size: f64,
    /// p99 of the commit-queue depth observed by the combiner.
    queue_depth_p99: u64,
    snap_publishes: u64,
    snap_reuse_ratio: f64,
    pin_cache_hit_rate: f64,
    /// Flight dumps written when `--flight-spool` is active.
    flight_dumps: u64,
    /// `ProfileReport::to_json()` — embedded verbatim as the bench
    /// JSON's `profile` member, the schema `pmv-profile` consumes.
    profile_json: String,
    /// `"site (p99 wait N µs)"` for the console one-liner.
    top_site: String,
}

/// Run the mixed commit+query cell: 8 threads alternating a single-row
/// insert through [`EpochDb::commit`] with a probe of the same PMV.
/// Commits force shard maintenance (the inserted row matches a warmed
/// bcp), so the master write lock, shard maintenance locks, and
/// snapshot publish all see real contention.
fn measure_pipeline(quick: bool, epoch_mode: bool, flight_spool: Option<&Path>) -> PipelineResult {
    let threads = 8usize;
    let per_thread = if quick { 100usize } else { 500 };
    let bcps = 16i64;

    let mut db = Database::new();
    db.create_relation(Schema::new(
        "p",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("f", ColumnType::Int),
        ],
    ))
    .unwrap();
    for i in 0..(bcps * 8) {
        db.insert("p", tuple![i, i % bcps]).unwrap();
    }
    db.create_index(IndexDef::btree("p", vec![1])).unwrap();
    // `a` stays unique across the measured inserts (each thread writes a
    // disjoint value range offset past the warm-up rows), so declare it:
    // the unique-rows proof then covers the commit+query cell too. The
    // index on column 0 keeps per-insert enforcement an O(log n) probe.
    db.create_index(IndexDef::btree("p", vec![0])).unwrap();
    db.declare_unique_key("p", &["a"]).unwrap();
    let template = TemplateBuilder::new("by_f_mixed")
        .relation(db.schema("p").unwrap())
        .select("p", "a")
        .unwrap()
        .cond_eq("p", "f")
        .unwrap()
        .build()
        .unwrap();
    let edb = EpochDb::new(db);

    let def = PartialViewDef::all_equality("pipe_pmv", template.clone()).unwrap();
    let config = PmvConfig::new(8, (bcps as usize) * 2, PolicyKind::Clock);
    let shared = SharedPmv::with_shards(def, config, 16);
    let account = Arc::new(TemplateAccount::new());
    shared.attach_account(Arc::clone(&account));
    let flight = flight_spool.map(|dir| {
        let _ = std::fs::remove_dir_all(dir);
        let spool = DiskSpool::open(dir, 256 * 1024).unwrap_or_else(|e| {
            eprintln!("cannot open flight spool {}: {e}", dir.display());
            std::process::exit(1);
        });
        let fr = Arc::new(FlightRecorder::new(Box::new(spool), 4));
        // Zero threshold: the first queries trip the recorder until its
        // dump budget is spent, giving CI real dump files to round-trip
        // through pmv-profile. Bounded, so it barely perturbs the cell.
        fr.set_latency_threshold(Some(std::time::Duration::ZERO));
        shared.attach_flight(Arc::clone(&fr));
        fr
    });

    // Warm every bcp, then zero everything the report reads so the
    // measured phase starts clean.
    for f in 0..bcps {
        let q = template
            .bind(vec![Condition::Equality(vec![Value::Int(f)])])
            .unwrap();
        serve(&edb, &shared, &q, epoch_mode);
        serve(&edb, &shared, &q, epoch_mode);
    }
    shared.reset_stats();
    shared.obs().reset();
    edb.obs().reset();
    edb.reset_pipeline_obs();

    std::thread::scope(|scope| {
        for t in 0..threads {
            let shared = shared.clone();
            let template = template.clone();
            let edb = &edb;
            scope.spawn(move || {
                let mut f = t as i64 % bcps;
                for i in 0..per_thread {
                    // Offset past the warm-up rows (0..bcps*8) so every
                    // inserted `a` is fresh under the declared unique key.
                    let v = bcps * 8 + (t * per_thread + i) as i64;
                    let fv = f;
                    edb.commit(&[&shared], move |db| {
                        let mut txn = Transaction::begin(db);
                        txn.insert("p", tuple![v, fv])?;
                        Ok(((), txn.commit()))
                    })
                    .unwrap();
                    let q = template
                        .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                        .unwrap();
                    serve(edb, &shared, &q, epoch_mode);
                    f = (f + threads as i64) % bcps;
                }
            });
        }
    });

    let ps = edb.pipeline_stats();
    let batch = edb.batch_size_hist();
    let queue = edb.queue_depth_hist();
    // Batch/queue histograms record raw counts on the nanosecond scale.
    let mean_batch_size = if batch.count() == 0 {
        0.0
    } else {
        batch.sum_ns() as f64 / batch.count() as f64
    };
    let queue_depth_p99 = queue.quantile(0.99).as_nanos() as u64;
    let ss = edb.snap_stats();

    // Profile: merge the serving-path registry with the commit-pipeline
    // registry, then rank sites/templates/stages exactly like the live
    // `profile` CLI command does.
    account.set_bytes_resident(shared.byte_size() as u64);
    let mut merged: Vec<(&'static str, HistSnapshot)> = Vec::new();
    for reg in [shared.obs(), edb.obs().as_ref()] {
        for (name, snap) in reg.snapshots() {
            match merged.iter_mut().find(|(n, _)| *n == name) {
                Some((_, m)) => m.merge(&snap),
                None => merged.push((name, snap)),
            }
        }
    }
    let (contention, pipeline) = split_phases(&merged);
    let mut report = ProfileReport {
        source: "concurrent_scaling mixed commit+query cell".to_string(),
        contention,
        templates: vec![TemplateCost::from_account(
            "by_f_mixed",
            &account.snapshot(),
        )],
        pipeline,
        notes: vec![format!(
            "{threads} threads x {per_thread} commit+query pairs, 16 shards"
        )],
    };
    report.rank();
    let top_site = report
        .contention
        .first()
        .map(|s| format!("{} (p99 wait {} µs)", s.site, s.wait_p99_us))
        .unwrap_or_else(|| "none".to_string());

    PipelineResult {
        threads,
        commits: threads * per_thread,
        commit_batches: ps.commit_batches,
        commit_reqs_coalesced: ps.commit_reqs_coalesced,
        maint_passes_saved: ps.maint_passes_saved,
        mean_batch_size,
        queue_depth_p99,
        snap_publishes: ss.publishes,
        snap_reuse_ratio: ss.reuse_ratio(),
        pin_cache_hit_rate: edb.pin_cache_hit_rate(),
        flight_dumps: flight.map(|fr| fr.dumps_written()).unwrap_or(0),
        profile_json: report.to_json(),
        top_site,
    }
}

/// Everything the maintenance-heavy cell measures: per-delete row cost
/// under the ΔR-join baseline vs the delta-key-index paths, and the
/// heavy-light routing telemetry.
struct MaintenanceResult {
    deletes: usize,
    batch: usize,
    fanout: i64,
    /// Rows touched per delete = (ΔR-join rows + index removals) /
    /// deletes, under `MaintStrategy::DeltaJoin`.
    baseline_rows_per_delete: f64,
    /// Same ratio under `MaintStrategy::HeavyLight` (the default).
    indexed_rows_per_delete: f64,
    /// `baseline_rows_per_delete / indexed_rows_per_delete` — the
    /// number `bench_regression` gates at ≥ 10×.
    improvement_x: f64,
    baseline_deletes_per_sec: f64,
    indexed_deletes_per_sec: f64,
    heavy_deltas: u64,
    light_deltas: u64,
    coalesced_joins: u64,
    index_removals: u64,
    join_rows: u64,
    upqueries: u64,
    upquery_rows: u64,
    complete_serves: u64,
}

/// Deterministic Zipfian(s) sequence of key indices in `0..keys`,
/// sampled by inverse-CDF over an LCG stream — no external RNG crate,
/// and identical across the baseline and indexed runs so the two
/// strategies maintain byte-identical delete workloads.
fn zipf_sequence(keys: usize, n: usize, s: f64, mut state: u64) -> Vec<usize> {
    let weights: Vec<f64> = (1..=keys).map(|r| (r as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(keys);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            cdf.partition_point(|&c| c < u).min(keys - 1)
        })
        .collect()
}

/// Run the maintenance-heavy cell: a Zipfian-skewed delete stream over
/// a two-relation join view (R ⋈ S with per-key fanout `fanout`), once
/// with `MaintStrategy::DeltaJoin` (every affecting delete pays the
/// ΔR ⋈ S join, `fanout` rows) and once with the default `HeavyLight`
/// (hot delta keys resolve through the delta-key index in O(resident),
/// cold keys batch into coalesced joins). Both runs replay the *same*
/// delete sequence against a freshly built database, so the per-delete
/// row costs are directly comparable.
///
/// Serving load keeps the hot bcps resident: before each delete batch
/// the hot keys it touches are re-probed (the steady state of a view
/// under mixed query/update traffic). Cold keys are never queried —
/// their deletes are skipped by the residency gate under *both*
/// strategies, so the measured difference is purely join-vs-index on
/// the affecting deletes.
fn measure_maintenance(quick: bool, epoch_mode: bool) -> MaintenanceResult {
    let keys = if quick { 16usize } else { 64 };
    // Zipf rank ≤ keys/4 is the hot set kept resident by serving load.
    let hot = keys / 4;
    let deletes = if quick { 400usize } else { 2_000 };
    let batch = 8usize;
    let fanout = 512i64;
    let gvals = 2i64;
    let seq = zipf_sequence(keys, deletes, 1.2, 0x9E37_79B9_7F4A_7C15);
    let mut counts = vec![0usize; keys];
    for &k in &seq {
        counts[k] += 1;
    }

    let run = |strategy: MaintStrategy| -> (PmvStats, f64) {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "mr",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("c", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(Schema::new(
            "ms",
            vec![
                Column::new("d", ColumnType::Int),
                Column::new("e", ColumnType::Int),
                Column::new("g", ColumnType::Int),
            ],
        ))
        .unwrap();
        // Every R row for key k is the identical tuple (k, k, k): its
        // delta key is the same for all copies, so repeated deletes of a
        // hot key keep hitting the same index slot, and same-batch
        // duplicates of a cold key coalesce into one join.
        let mut supply: Vec<Vec<RowId>> = vec![Vec::new(); keys];
        for (k, row_count) in counts.iter().enumerate() {
            let ki = k as i64;
            for _ in 0..row_count + 2 {
                let delta = db.insert("mr", tuple![ki, ki, ki]).unwrap();
                supply[k].push(delta.row());
            }
            for j in 0..fanout {
                db.insert("ms", tuple![ki, j, j % gvals]).unwrap();
            }
        }
        db.create_index(IndexDef::btree("mr", vec![1])).unwrap();
        db.create_index(IndexDef::btree("mr", vec![2])).unwrap();
        db.create_index(IndexDef::btree("ms", vec![0])).unwrap();
        db.create_index(IndexDef::btree("ms", vec![2])).unwrap();
        let template = TemplateBuilder::new("maint_join")
            .relation(db.schema("mr").unwrap())
            .relation(db.schema("ms").unwrap())
            .join("mr", "c", "ms", "d")
            .unwrap()
            .select("mr", "a")
            .unwrap()
            .select("ms", "e")
            .unwrap()
            .cond_eq("mr", "f")
            .unwrap()
            .cond_eq("ms", "g")
            .unwrap()
            .build()
            .unwrap();
        let edb = EpochDb::new(db);

        let def = PartialViewDef::all_equality("maint_pmv", template.clone()).unwrap();
        let mut config = PmvConfig::new(8, 4096, PolicyKind::Clock);
        config.maint_strategy = strategy;
        // Two sketch sightings promote a delta key to the indexed path:
        // the cell measures steady-state routing, not sketch warm-up.
        config.heavy_threshold = 2;
        let shared = SharedPmv::with_shards(def, config, 16);
        let probe = |shared: &SharedPmv, k: usize| {
            for g in 0..gvals {
                let q = template
                    .bind(vec![
                        Condition::Equality(vec![Value::Int(k as i64)]),
                        Condition::Equality(vec![Value::Int(g)]),
                    ])
                    .unwrap();
                serve(&edb, shared, &q, epoch_mode);
            }
        };
        // Warm the hot keys' bcps so the view starts resident.
        for k in 0..hot {
            probe(&shared, k);
            probe(&shared, k);
        }
        shared.reset_stats();
        shared.obs().reset();

        let start = Instant::now();
        for chunk in seq.chunks(batch) {
            // Serving load: re-probe the hot keys this batch touches,
            // refilling whatever the previous batch drained.
            let mut seen = [false; 64];
            for &k in chunk {
                if k < hot && !std::mem::replace(&mut seen[k], true) {
                    probe(&shared, k);
                }
            }
            let rows: Vec<RowId> = chunk.iter().map(|&k| supply[k].pop().unwrap()).collect();
            edb.commit(&[&shared], move |db| {
                let mut txn = Transaction::begin(db);
                for &row in &rows {
                    txn.delete("mr", row)?;
                }
                Ok(((), txn.commit()))
            })
            .unwrap();
        }
        let dps = deletes as f64 / start.elapsed().as_secs_f64();
        (shared.stats(), dps)
    };

    let (base, baseline_deletes_per_sec) = run(MaintStrategy::DeltaJoin);
    let (hl, indexed_deletes_per_sec) = run(MaintStrategy::HeavyLight);
    let touched = |s: &PmvStats| (s.maint_join_rows + s.maint_index_removals) as f64;
    let baseline_rows_per_delete = touched(&base) / deletes as f64;
    let indexed_rows_per_delete = touched(&hl) / deletes as f64;
    MaintenanceResult {
        deletes,
        batch,
        fanout,
        baseline_rows_per_delete,
        indexed_rows_per_delete,
        improvement_x: baseline_rows_per_delete / indexed_rows_per_delete.max(f64::MIN_POSITIVE),
        baseline_deletes_per_sec,
        indexed_deletes_per_sec,
        heavy_deltas: hl.maint_heavy_deltas,
        light_deltas: hl.maint_light_deltas,
        coalesced_joins: hl.maint_coalesced_joins,
        index_removals: hl.maint_index_removals,
        join_rows: hl.maint_join_rows,
        upqueries: hl.upqueries,
        upquery_rows: hl.upquery_rows,
        complete_serves: hl.complete_serves,
    }
}

/// Commit-throughput and recovery-time numbers for the `--durability`
/// section.
struct DurabilityResult {
    /// Single-insert commits in each measured stream.
    commits: usize,
    /// Commits/second through an in-memory `EpochDb` (no WAL).
    mem_cps: f64,
    /// Commits/second with a WAL append + fsync per combine round.
    wal_cps: f64,
    /// Bytes in the active WAL segment after the measured stream.
    wal_bytes: u64,
    /// `(wal_records, recovery_ms)`: cold-open time as the replayed
    /// tail grows.
    recovery: Vec<(u64, f64)>,
}

/// Measure commit throughput with and without the durability engine,
/// then recovery time at several WAL lengths. Single-threaded on
/// purpose: one committer means one WAL record + fsync per commit, the
/// worst case for fsync amortization (group commit batches concurrent
/// writers into one record).
fn measure_durability(quick: bool) -> DurabilityResult {
    let commits = if quick { 300usize } else { 2_000 };

    let setup = |db: &mut Database| {
        db.create_relation(Schema::new(
            "d",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
    };
    let run_commits = |edb: &EpochDb, n: usize| {
        let start = Instant::now();
        for i in 0..n {
            let v = i as i64;
            edb.commit(&[], move |db| {
                let mut txn = Transaction::begin(db);
                txn.insert("d", tuple![v, v % 16])?;
                Ok(((), txn.commit()))
            })
            .unwrap();
        }
        start.elapsed().as_secs_f64()
    };

    // In-memory baseline: same commit path, no durability engine.
    let mut db = Database::new();
    setup(&mut db);
    let edb = EpochDb::new(db);
    let mem_cps = commits as f64 / run_commits(&edb, commits);

    // Durable: WAL append + fsync before every publish.
    let scratch = std::env::temp_dir().join("pmv_bench_durability");
    let _ = std::fs::remove_dir_all(&scratch);
    let open = |name: &str| {
        let dir = scratch.join(name);
        let (edb, _) = EpochDb::open_durable(&dir, Arc::new(ObsRegistry::new())).unwrap();
        edb.with_write(|db| setup(db));
        // Checkpoint the catalog so recovery can replay DML records.
        edb.checkpoint(Vec::new()).unwrap();
        edb
    };
    let edb = open("throughput");
    let wal_cps = commits as f64 / run_commits(&edb, commits);
    let wal_bytes = edb
        .durability()
        .expect("opened durable")
        .active_segment_bytes();
    drop(edb);

    // Recovery time vs WAL length: fresh dir per length, cold reopen.
    let mut recovery = Vec::new();
    for records in [commits / 10, commits / 2, commits] {
        let name = format!("recovery_{records}");
        let edb = open(&name);
        run_commits(&edb, records);
        drop(edb);
        let start = Instant::now();
        let (edb, _) =
            EpochDb::open_durable(&scratch.join(&name), Arc::new(ObsRegistry::new())).unwrap();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            edb.durability().unwrap().recovery_info().replayed_records,
            records as u64
        );
        recovery.push((records as u64, ms));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    DurabilityResult {
        commits,
        mem_cps,
        wal_cps,
        wal_bytes,
        recovery,
    }
}

/// Hand-rolled `BENCH_pmv.json`: the percentile series per cell plus the
/// observability-overhead comparison and (when measured) the durability
/// section.
#[allow(clippy::too_many_arguments)]
fn cells_to_json(
    quick: bool,
    mode: &str,
    cores: usize,
    cells: &[CellResult],
    ov_threads: usize,
    ov_shards: usize,
    qps_off: f64,
    qps_on: f64,
    pipe: &PipelineResult,
    maint: &MaintenanceResult,
    durability: Option<&DurabilityResult>,
) -> String {
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\n  \"bench\": \"concurrent_scaling\",\n  \"quick\": {quick},\n  \
         \"snapshot_mode\": \"{mode}\",\n  \"cores\": {cores},\n  \"series\": ["
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"threads\": {}, \"shards\": {}, \"oversubscribed\": {}, \"qps\": {:.0}, \
             \"speedup\": {:.3}, \
             \"ttfr_p50_us\": {}, \"ttfr_p99_us\": {}, \"full_p50_us\": {}, \
             \"full_p99_us\": {}, \"degraded_query_rate\": {:.4}, \"quarantine_events\": {}}}",
            c.threads,
            c.shards,
            c.oversubscribed,
            c.qps,
            c.speedup,
            c.ttfr_p50_us,
            c.ttfr_p99_us,
            c.full_p50_us,
            c.full_p99_us,
            c.degraded_query_rate,
            c.quarantine_events
        );
    }
    let overhead_pct = (1.0 - qps_on / qps_off) * 100.0;
    let _ = write!(
        out,
        "\n  ],\n  \"obs_overhead\": {{\"threads\": {ov_threads}, \"shards\": {ov_shards}, \
         \"qps_obs_disabled\": {qps_off:.0}, \"qps_obs_enabled\": {qps_on:.0}, \
         \"obs_overhead_pct\": {overhead_pct:.2}}}"
    );
    let aggregate_qps: f64 = cells.iter().map(|c| c.qps).sum();
    let _ = write!(
        out,
        ",\n  \"aggregate_qps\": {aggregate_qps:.0},\n  \"group_commit\": {{\"threads\": {}, \
         \"commits\": {}, \"commit_batches\": {}, \"commit_reqs_coalesced\": {}, \
         \"maint_passes_saved\": {}, \"mean_batch_size\": {:.3}, \"queue_depth_p99\": {}, \
         \"snap_publishes\": {}, \"snap_reuse_ratio\": {:.4}, \"pin_cache_hit_rate\": {:.4}, \
         \"flight_dumps\": {}}},\n  \"profile\": {}",
        pipe.threads,
        pipe.commits,
        pipe.commit_batches,
        pipe.commit_reqs_coalesced,
        pipe.maint_passes_saved,
        pipe.mean_batch_size,
        pipe.queue_depth_p99,
        pipe.snap_publishes,
        pipe.snap_reuse_ratio,
        pipe.pin_cache_hit_rate,
        pipe.flight_dumps,
        pipe.profile_json,
    );
    let _ = write!(
        out,
        ",\n  \"maintenance\": {{\"deletes\": {}, \"batch\": {}, \"fanout\": {}, \
         \"baseline_rows_per_delete\": {:.3}, \"indexed_rows_per_delete\": {:.3}, \
         \"improvement_x\": {:.2}, \"baseline_deletes_per_sec\": {:.0}, \
         \"indexed_deletes_per_sec\": {:.0}, \"heavy_deltas\": {}, \"light_deltas\": {}, \
         \"coalesced_joins\": {}, \"index_removals\": {}, \"join_rows\": {}, \
         \"upqueries\": {}, \"upquery_rows\": {}, \"complete_serves\": {}}}",
        maint.deletes,
        maint.batch,
        maint.fanout,
        maint.baseline_rows_per_delete,
        maint.indexed_rows_per_delete,
        maint.improvement_x,
        maint.baseline_deletes_per_sec,
        maint.indexed_deletes_per_sec,
        maint.heavy_deltas,
        maint.light_deltas,
        maint.coalesced_joins,
        maint.index_removals,
        maint.join_rows,
        maint.upqueries,
        maint.upquery_rows,
        maint.complete_serves,
    );
    if let Some(d) = durability {
        let _ = write!(
            out,
            ",\n  \"durability\": {{\"commits\": {}, \"mem_commits_per_sec\": {:.0}, \
             \"wal_commits_per_sec\": {:.0}, \"wal_overhead_x\": {:.2}, \
             \"wal_bytes\": {}, \"recovery\": [",
            d.commits,
            d.mem_cps,
            d.wal_cps,
            d.mem_cps / d.wal_cps,
            d.wal_bytes
        );
        for (i, (records, ms)) in d.recovery.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"wal_records\": {records}, \"recovery_ms\": {ms:.2}}}"
            );
        }
        out.push_str("]}");
    }
    out.push_str("\n}\n");
    out
}
