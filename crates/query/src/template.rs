//! Query templates and bound query instances (Section 2.1).
//!
//! A [`QueryTemplate`] fixes the relations, the join conditions `Cjoin`,
//! the select list `Ls`, and the *shape* of each selection condition
//! (which attribute, equality or interval form). A [`QueryInstance`] binds
//! the actual disjuncts. Different instances of one template may have
//! different numbers of disjuncts (`u_i`), exactly as in the paper.
//!
//! Following Section 3.2, the template computes the **expanded select list
//! `Ls'`**: all attributes of `Ls` plus every attribute mentioned in
//! `Cselect`. Result tuples flow through the engine in `Ls'` layout so the
//! PMV can recover each tuple's basic condition part from the tuple itself;
//! only the `Ls` positions are shown to the user.

use std::sync::Arc;

use pmv_storage::{Schema, Tuple, Value};

use crate::condition::Condition;
use crate::dbview::DataView;
use crate::{QueryError, Result};

/// Reference to one attribute of one template relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AttrRef {
    /// Index into the template's relation list.
    pub relation: usize,
    /// Column index within that relation's schema.
    pub column: usize,
}

/// Shape of a selection condition in a template.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CondForm {
    /// Equality form `∨ R.a = v_r`.
    Equality,
    /// Interval form `∨ v_r < R.a < w_r`.
    Interval,
}

/// One selection-condition slot of a template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CondTemplate {
    /// The attribute the condition constrains.
    pub attr: AttrRef,
    /// Equality or interval form.
    pub form: CondForm,
}

/// An equi-join condition between two template relations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinCond {
    /// Left side.
    pub left: AttrRef,
    /// Right side.
    pub right: AttrRef,
}

/// A parameterless selection in `Cjoin` (e.g. `R1.b = 100`).
#[derive(Clone, Debug, PartialEq)]
pub struct FixedPred {
    /// Constrained attribute.
    pub attr: AttrRef,
    /// Required value.
    pub value: Value,
}

/// A parameterized query template.
#[derive(Clone, Debug)]
pub struct QueryTemplate {
    name: String,
    relations: Vec<String>,
    schemas: Vec<Schema>,
    joins: Vec<JoinCond>,
    fixed: Vec<FixedPred>,
    select: Vec<AttrRef>,
    expanded: Vec<AttrRef>,
    conds: Vec<CondTemplate>,
    /// For each condition, its attribute's position within `expanded`.
    cond_positions: Vec<usize>,
    /// Positions of `Ls` attributes within `expanded`.
    select_positions: Vec<usize>,
}

impl QueryTemplate {
    /// Template name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relation names, in declaration order.
    pub fn relations(&self) -> &[String] {
        &self.relations
    }

    /// Schema snapshot of relation `i`.
    pub fn schema(&self, i: usize) -> &Schema {
        &self.schemas[i]
    }

    /// Equi-join conditions.
    pub fn joins(&self) -> &[JoinCond] {
        &self.joins
    }

    /// Parameterless predicates in `Cjoin`.
    pub fn fixed_preds(&self) -> &[FixedPred] {
        &self.fixed
    }

    /// The user-visible select list `Ls`.
    pub fn select_list(&self) -> &[AttrRef] {
        &self.select
    }

    /// The expanded select list `Ls'` (result-tuple layout).
    pub fn expanded_list(&self) -> &[AttrRef] {
        &self.expanded
    }

    /// Selection-condition templates, in `Cselect` order.
    pub fn cond_templates(&self) -> &[CondTemplate] {
        &self.conds
    }

    /// Number of selection conditions (`m`).
    pub fn cond_count(&self) -> usize {
        self.conds.len()
    }

    /// Position in the `Ls'` result layout where condition `i`'s attribute
    /// lives.
    pub fn cond_position(&self, i: usize) -> usize {
        self.cond_positions[i]
    }

    /// Positions of `Ls` within the `Ls'` layout, for final projection.
    pub fn select_positions(&self) -> &[usize] {
        &self.select_positions
    }

    /// Project an `Ls'`-layout result tuple onto the user-visible `Ls`.
    pub fn user_tuple(&self, expanded: &Tuple) -> Tuple {
        expanded.project(&self.select_positions)
    }

    /// Proof that every instance of this template emits a duplicate-free
    /// result multiset against `view`: the expanded layout `Ls'` embeds
    /// a declared unique key of every joined relation. Each combination
    /// of base rows joins at most once, and two distinct combinations
    /// differ in some relation's row — whose declared key values differ
    /// and are all present in `Ls'` — so they project to distinct result
    /// tuples. The serving path uses this to skip its per-row
    /// proven-occurrence bookkeeping (DESIGN.md §19).
    ///
    /// The proof holds because declared keys are *enforced*: declaration
    /// validates the relation's contents and every insert/update
    /// re-checks ([`crate::engine::Database::declare_unique_key`]).
    pub fn emits_unique_rows<V: DataView + ?Sized>(&self, view: &V) -> bool {
        self.relations.iter().enumerate().all(|(r, name)| {
            view.unique_keys_view(name).iter().any(|key| {
                !key.is_empty()
                    && key
                        .iter()
                        .all(|&column| self.expanded.contains(&AttrRef { relation: r, column }))
            })
        })
    }

    /// Bind disjuncts, producing a validated instance.
    pub fn bind(self: &Arc<Self>, conds: Vec<Condition>) -> Result<QueryInstance> {
        if conds.len() != self.conds.len() {
            return Err(QueryError::Template(format!(
                "template '{}' has {} conditions, got {}",
                self.name,
                self.conds.len(),
                conds.len()
            )));
        }
        for (i, (c, ct)) in conds.iter().zip(&self.conds).enumerate() {
            let form_ok = matches!(
                (c, ct.form),
                (Condition::Equality(_), CondForm::Equality)
                    | (Condition::Intervals(_), CondForm::Interval)
            );
            if !form_ok {
                return Err(QueryError::Template(format!(
                    "condition {i} of template '{}' has the wrong form",
                    self.name
                )));
            }
            c.validate()
                .map_err(|e| QueryError::Template(format!("condition {i}: {e}")))?;
        }
        Ok(QueryInstance {
            template: Arc::clone(self),
            conds,
        })
    }
}

/// A query: a template with bound disjuncts.
#[derive(Clone, Debug)]
pub struct QueryInstance {
    template: Arc<QueryTemplate>,
    conds: Vec<Condition>,
}

impl QueryInstance {
    /// The underlying template.
    pub fn template(&self) -> &Arc<QueryTemplate> {
        &self.template
    }

    /// Bound conditions in `Cselect` order.
    pub fn conds(&self) -> &[Condition] {
        &self.conds
    }

    /// Whether an `Ls'`-layout tuple satisfies all of `Cselect`.
    pub fn matches_select(&self, expanded: &Tuple) -> bool {
        self.conds
            .iter()
            .enumerate()
            .all(|(i, c)| c.matches(expanded.get(self.template.cond_position(i))))
    }

    /// The paper's combination factor: product of per-condition disjunct
    /// counts (h = e × f for T1, e × f × g for T2).
    pub fn combination_factor(&self) -> usize {
        self.conds.iter().map(Condition::disjunct_count).product()
    }
}

/// Builder for [`QueryTemplate`].
pub struct TemplateBuilder {
    name: String,
    relations: Vec<String>,
    schemas: Vec<Schema>,
    joins: Vec<JoinCond>,
    fixed: Vec<FixedPred>,
    select: Vec<AttrRef>,
    select_all: bool,
    conds: Vec<CondTemplate>,
}

impl TemplateBuilder {
    /// Start a new template.
    pub fn new(name: impl Into<String>) -> Self {
        TemplateBuilder {
            name: name.into(),
            relations: Vec::new(),
            schemas: Vec::new(),
            joins: Vec::new(),
            fixed: Vec::new(),
            select: Vec::new(),
            select_all: false,
            conds: Vec::new(),
        }
    }

    /// Add a relation (with its schema snapshot). Order matters: `AttrRef`
    /// relation indices refer to this order.
    pub fn relation(mut self, schema: Schema) -> Self {
        self.relations.push(schema.name().to_string());
        self.schemas.push(schema);
        self
    }

    fn resolve(&self, relation: &str, column: &str) -> Result<AttrRef> {
        let rel = self
            .relations
            .iter()
            .position(|r| r == relation)
            .ok_or_else(|| {
                QueryError::Template(format!("relation '{relation}' not in template"))
            })?;
        let col = self.schemas[rel].column_index(column)?;
        Ok(AttrRef {
            relation: rel,
            column: col,
        })
    }

    /// Add an equi-join condition `left_rel.left_col = right_rel.right_col`.
    pub fn join(
        mut self,
        left_rel: &str,
        left_col: &str,
        right_rel: &str,
        right_col: &str,
    ) -> Result<Self> {
        let left = self.resolve(left_rel, left_col)?;
        let right = self.resolve(right_rel, right_col)?;
        self.joins.push(JoinCond { left, right });
        Ok(self)
    }

    /// Add a parameterless predicate `rel.col = value` to `Cjoin`.
    pub fn fixed(mut self, rel: &str, col: &str, value: impl Into<Value>) -> Result<Self> {
        let attr = self.resolve(rel, col)?;
        self.fixed.push(FixedPred {
            attr,
            value: value.into(),
        });
        Ok(self)
    }

    /// Add one attribute to the select list `Ls`.
    pub fn select(mut self, rel: &str, col: &str) -> Result<Self> {
        let attr = self.resolve(rel, col)?;
        self.select.push(attr);
        Ok(self)
    }

    /// Select every column of every relation (`select *`).
    pub fn select_star(mut self) -> Self {
        self.select_all = true;
        self
    }

    /// Declare an equality-form selection condition on `rel.col`.
    pub fn cond_eq(mut self, rel: &str, col: &str) -> Result<Self> {
        let attr = self.resolve(rel, col)?;
        self.conds.push(CondTemplate {
            attr,
            form: CondForm::Equality,
        });
        Ok(self)
    }

    /// Declare an interval-form selection condition on `rel.col`.
    pub fn cond_interval(mut self, rel: &str, col: &str) -> Result<Self> {
        let attr = self.resolve(rel, col)?;
        self.conds.push(CondTemplate {
            attr,
            form: CondForm::Interval,
        });
        Ok(self)
    }

    /// Finish, computing `Ls'` and all derived positions.
    pub fn build(mut self) -> Result<Arc<QueryTemplate>> {
        if self.relations.is_empty() {
            return Err(QueryError::Template("template has no relations".into()));
        }
        if self.conds.is_empty() {
            return Err(QueryError::Template(
                "template has no selection conditions".into(),
            ));
        }
        // Every relation beyond the first must be reachable via joins so
        // the executor can bind them one at a time.
        if self.relations.len() > 1 {
            let mut reachable = vec![false; self.relations.len()];
            reachable[0] = true;
            loop {
                let mut grew = false;
                for j in &self.joins {
                    let (a, b) = (j.left.relation, j.right.relation);
                    if reachable[a] != reachable[b] {
                        reachable[a] = true;
                        reachable[b] = true;
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }
            if !reachable.iter().all(|&r| r) {
                return Err(QueryError::Template(
                    "join graph does not connect all relations".into(),
                ));
            }
        }
        if self.select_all {
            self.select.clear();
            for (r, schema) in self.schemas.iter().enumerate() {
                for c in 0..schema.arity() {
                    self.select.push(AttrRef {
                        relation: r,
                        column: c,
                    });
                }
            }
        }
        if self.select.is_empty() {
            return Err(QueryError::Template("empty select list".into()));
        }
        // Ls' = Ls plus condition attributes not already selected.
        let mut expanded = self.select.clone();
        for ct in &self.conds {
            if !expanded.contains(&ct.attr) {
                expanded.push(ct.attr);
            }
        }
        let cond_positions = self
            .conds
            .iter()
            .map(|ct| {
                expanded
                    .iter()
                    .position(|a| *a == ct.attr)
                    .expect("condition attr is in Ls' by construction")
            })
            .collect();
        let select_positions = (0..self.select.len()).collect();
        Ok(Arc::new(QueryTemplate {
            name: self.name,
            relations: self.relations,
            schemas: self.schemas,
            joins: self.joins,
            fixed: self.fixed,
            select: self.select,
            expanded,
            conds: self.conds,
            cond_positions,
            select_positions,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Interval;
    use pmv_storage::{tuple, Column, ColumnType};

    fn r_schema() -> Schema {
        Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("c", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        )
    }

    fn s_schema() -> Schema {
        Schema::new(
            "s",
            vec![
                Column::new("d", ColumnType::Int),
                Column::new("e", ColumnType::Int),
                Column::new("g", ColumnType::Int),
            ],
        )
    }

    /// The paper's example template Eqt (Figure 1).
    fn eqt() -> Arc<QueryTemplate> {
        TemplateBuilder::new("Eqt")
            .relation(r_schema())
            .relation(s_schema())
            .join("r", "c", "s", "d")
            .unwrap()
            .select("r", "a")
            .unwrap()
            .select("s", "e")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .cond_eq("s", "g")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn emits_unique_rows_requires_embedded_keys_for_every_relation() {
        use crate::engine::Database;
        let t = eqt();
        let mut db = Database::new();
        db.create_relation(r_schema()).unwrap();
        db.create_relation(s_schema()).unwrap();
        // No declared keys anywhere: no proof.
        assert!(!t.emits_unique_rows(&db));
        // A key outside Ls' (r.c is not selected or conditioned) does
        // not help, even combined with an embedded key on s.
        db.declare_unique_key("r", &["c"]).unwrap();
        db.declare_unique_key("s", &["e", "g"]).unwrap();
        assert!(!t.emits_unique_rows(&db));
        // Once every joined relation has a declared key fully embedded
        // in Ls' = (r.a, s.e, r.f, s.g), the proof goes through.
        db.declare_unique_key("r", &["a", "f"]).unwrap();
        assert!(t.emits_unique_rows(&db));
    }

    #[test]
    fn eqt_shape() {
        let t = eqt();
        assert_eq!(t.relations(), &["r".to_string(), "s".to_string()]);
        assert_eq!(t.cond_count(), 2);
        // Ls = (r.a, s.e); Ls' adds r.f and s.g.
        assert_eq!(t.select_list().len(), 2);
        assert_eq!(t.expanded_list().len(), 4);
        assert_eq!(t.cond_position(0), 2); // r.f
        assert_eq!(t.cond_position(1), 3); // s.g
    }

    #[test]
    fn select_star_covers_all_columns() {
        let t = TemplateBuilder::new("t")
            .relation(r_schema())
            .relation(s_schema())
            .join("r", "c", "s", "d")
            .unwrap()
            .select_star()
            .cond_eq("r", "f")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(t.select_list().len(), 6);
        // f already in Ls, so Ls' == Ls.
        assert_eq!(t.expanded_list().len(), 6);
        assert_eq!(t.cond_position(0), 2);
    }

    #[test]
    fn user_tuple_projects_ls() {
        let t = eqt();
        // Ls' layout: (r.a, s.e, r.f, s.g)
        let full = tuple![1i64, 2i64, 7i64, 9i64];
        assert_eq!(t.user_tuple(&full), tuple![1i64, 2i64]);
    }

    #[test]
    fn bind_validates_arity_and_form() {
        let t = eqt();
        assert!(t.bind(vec![]).is_err());
        assert!(t
            .bind(vec![
                Condition::Equality(vec![Value::Int(1)]),
                Condition::Intervals(vec![Interval::open(0i64, 5i64)]),
            ])
            .is_err());
        let q = t
            .bind(vec![
                Condition::Equality(vec![Value::Int(1), Value::Int(3)]),
                Condition::Equality(vec![Value::Int(2), Value::Int(4)]),
            ])
            .unwrap();
        assert_eq!(q.combination_factor(), 4);
    }

    #[test]
    fn matches_select_uses_positions() {
        let t = eqt();
        let q = t
            .bind(vec![
                Condition::Equality(vec![Value::Int(1)]),
                Condition::Equality(vec![Value::Int(2)]),
            ])
            .unwrap();
        assert!(q.matches_select(&tuple![0i64, 0i64, 1i64, 2i64]));
        assert!(!q.matches_select(&tuple![0i64, 0i64, 1i64, 3i64]));
    }

    #[test]
    fn disconnected_join_graph_rejected() {
        let result = TemplateBuilder::new("bad")
            .relation(r_schema())
            .relation(s_schema())
            .select_star()
            .cond_eq("r", "f")
            .unwrap()
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn unknown_names_rejected() {
        let b = TemplateBuilder::new("t").relation(r_schema());
        assert!(b.resolve("nope", "a").is_err());
        let b = TemplateBuilder::new("t").relation(r_schema());
        assert!(b.resolve("r", "nope").is_err());
    }

    #[test]
    fn templates_without_conditions_rejected() {
        let result = TemplateBuilder::new("t")
            .relation(r_schema())
            .select_star()
            .build();
        assert!(result.is_err());
    }
}
