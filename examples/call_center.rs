//! The paper's introduction scenario: a retailer's customer-service call
//! center.
//!
//! When a customer calls, the operator fetches the items related to the
//! customer's recent purchases and asks which of them are on sale with a
//! discount of at least p% (p depends on the customer's loyalty tier).
//! The operator needs *some* answers before the customer hangs up — i.e.
//! immediate, transactionally consistent partial results.
//!
//! The discount condition is **interval-form** with the loyalty tiers as
//! natural dividing values, exactly the paper's "form-based application"
//! case where the UI's from/to lists provide the discretization.
//!
//! ```bash
//! cargo run --release --example call_center
//! ```

use pmv::core::Discretizer;
use pmv::index::IndexDef;
use pmv::prelude::*;
use pmv::query::Interval;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    // related(item, related_item): the "first relation" of the intro.
    db.create_relation(Schema::new(
        "related",
        vec![
            Column::new("item", ColumnType::Int),
            Column::new("related_item", ColumnType::Int),
        ],
    ))?;
    // rsale(item, discount): items currently on sale.
    db.create_relation(Schema::new(
        "rsale",
        vec![
            Column::new("item", ColumnType::Int),
            Column::new("discount", ColumnType::Int),
        ],
    ))?;
    for item in 0..5_000i64 {
        for k in 1..=3 {
            db.insert("related", tuple![item, (item * 13 + k * 101) % 5_000])?;
        }
        if item % 2 == 0 {
            db.insert("rsale", tuple![item, (item * 7) % 60])?;
        }
    }
    db.create_index(IndexDef::btree("related", vec![0]))?;
    db.create_index(IndexDef::btree("related", vec![1]))?;
    db.create_index(IndexDef::btree("rsale", vec![0]))?;
    db.create_index(IndexDef::btree("rsale", vec![1]))?;

    // Template Q: items related to a purchased item, on sale with a
    // discount of at least p%.
    let template = TemplateBuilder::new("call_center_offers")
        .relation(db.schema("related")?)
        .relation(db.schema("rsale")?)
        .join("related", "related_item", "rsale", "item")?
        .select("rsale", "item")?
        .select("rsale", "discount")?
        .cond_eq("related", "item")? // the purchased item(s)
        .cond_interval("rsale", "discount")? // ≥ p%, p by loyalty tier
        .build()?;

    // Loyalty tiers: gold sees ≥10%, silver ≥25%, bronze ≥40%. The tier
    // thresholds are the natural dividing values.
    let tiers = Discretizer::new(vec![Value::Int(10), Value::Int(25), Value::Int(40)]);
    let def = PartialViewDef::new("offers_pmv", template.clone(), vec![None, Some(tiers)])?;
    let mut pmv = Pmv::new(
        def,
        // 2Q: the better policy of §3.5.
        PmvConfig::new(3, 10_000, pmv::cache::PolicyKind::TwoQ),
    );
    let pipeline = PmvPipeline::new();

    // A popular purchase: item 42. Gold-tier offer query: discount ≥ 10.
    let offer_query = |purchased: Vec<i64>, min_discount: i64| {
        template.bind(vec![
            Condition::Equality(purchased.into_iter().map(Value::Int).collect()),
            Condition::Intervals(vec![Interval::above(min_discount, true)]),
        ])
    };

    // The morning rush: many calls about item 42 warm the PMV (2Q needs
    // two appearances before caching).
    for _ in 0..3 {
        pipeline.run(&db, &mut pmv, &offer_query(vec![42], 10)?)?;
    }

    // The next caller: offers pop out of the PMV immediately.
    let out = pipeline.run(&db, &mut pmv, &offer_query(vec![42], 10)?)?;
    println!(
        "caller about item 42 (gold): {} offers served in {:?}, {} more after execution ({:?})",
        out.partial.len(),
        out.timings.o2,
        out.remaining.len(),
        out.timings.exec,
    );
    for t in &out.partial {
        println!("  offer now: item {} at {}% off", t.get(0), t.get(1));
    }

    // A silver-tier caller who bought items 42 and 77: the hot item-42
    // cells still serve immediately even though 77 is cold.
    let out = pipeline.run(&db, &mut pmv, &offer_query(vec![42, 77], 25)?)?;
    println!(
        "caller about items 42+77 (silver): {} early offers, {} late, {} condition parts",
        out.partial.len(),
        out.remaining.len(),
        out.parts
    );
    assert_eq!(out.ds_leftover, 0);

    println!(
        "\nhit probability so far: {:.0}% over {} calls",
        pmv.stats().hit_probability() * 100.0,
        pmv.stats().queries
    );
    Ok(())
}
