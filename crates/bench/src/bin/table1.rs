//! Table 1 — the TPC-R test data set.
//!
//! Paper's Table 1 (per scale factor s):
//!
//! | relation | number of tuples | total size |
//! |----------|------------------|------------|
//! | customer | 0.15·s M | 23·s MB |
//! | orders   | 1.5·s M  | 114·s MB |
//! | lineitem | 6·s M    | 755·s MB |
//!
//! We regenerate the data and report measured tuple counts (exact match)
//! and in-memory MB. Our boxed-value representation is ≈ 2× a packed
//! on-disk row, so the MB column lands at about twice the paper's with
//! the same per-relation ratio.
//!
//! Default sweep uses reduced scales so it finishes in seconds; pass
//! `--paper` for the paper's s ∈ {0.5, 1, 1.5, 2} (needs several GB of
//! RAM and minutes of generation time).

use pmv_bench::tpcr_harness::arg_flag;
use pmv_bench::ExperimentReport;
use pmv_query::Database;
use pmv_workload::tpcr::{expected_counts, generate, TpcrConfig};

fn main() {
    let scales: Vec<f64> = if arg_flag("--paper") {
        vec![0.5, 1.0, 1.5, 2.0]
    } else if arg_flag("--quick") {
        vec![0.01]
    } else {
        vec![0.05, 0.1, 0.2]
    };

    let mut report = ExperimentReport::new("table1", "TPC-R test data set", "s");
    for s in scales {
        let mut db = Database::new();
        let stats = generate(
            &mut db,
            &TpcrConfig {
                scale: s,
                seed: 0xc0ffee,
                pad: true,
                date_supplier_pool: None,
            },
        )
        .expect("generate");
        let (ec, eo, el) = expected_counts(s);
        assert_eq!(stats.customers, ec, "customer count must match Table 1");
        assert_eq!(stats.orders, eo, "orders count must match Table 1");
        assert_eq!(stats.lineitems, el, "lineitem count must match Table 1");
        const MB: f64 = 1024.0 * 1024.0;
        report.push(
            format!("{s}"),
            vec![
                ("customer_tuples".into(), stats.customers as f64),
                ("customer_mb".into(), stats.customer_bytes as f64 / MB),
                ("orders_tuples".into(), stats.orders as f64),
                ("orders_mb".into(), stats.orders_bytes as f64 / MB),
                ("lineitem_tuples".into(), stats.lineitems as f64),
                ("lineitem_mb".into(), stats.lineitem_bytes as f64 / MB),
            ],
        );
        eprintln!("s={s}: generated {} tuples", ec + eo + el);
    }
    report.print();
    println!();
    println!(
        "paper reference (per unit s): customer 0.15M/23MB, orders 1.5M/114MB, lineitem 6M/755MB"
    );
}
