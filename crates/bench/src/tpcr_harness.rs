//! Shared harness for the Section 4.2 experiments (Figures 8, 9, 10).
//!
//! The paper's procedure: build the TPC-R data set, one PMV per template
//! (20K entries), and issue queries whose `Cselect` breaks into exactly
//! `h` basic condition parts, **one of which is PMV-resident**. Each
//! experiment is repeated over many runs; reported numbers are averages.
//!
//! A run here uses a fresh PMV warmed with exactly the hot bcp, so
//! "exactly one of the h bcps is resident" holds by construction.

use std::time::Duration;

use pmv_core::{PartialViewDef, Pmv, PmvConfig, PmvPipeline};
use pmv_query::{Database, QueryInstance};
use pmv_storage::Value;
use pmv_workload::queries::{t1_query, t2_query, template_t1, template_t2, values_including};
use pmv_workload::tpcr::{self, TpcrConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which template an experiment runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Template {
    /// orders ⋈ lineitem.
    T1,
    /// orders ⋈ lineitem ⋈ customer.
    T2,
}

/// Build the TPC-R database with standard indexes at `scale`.
///
/// Uses a date→supplier pool of 2 so realistic hot `(orderdate, suppkey)`
/// bcps hold well over `F` result tuples, as the Section 4.2 setup
/// requires.
pub fn build_db(scale: f64, seed: u64) -> Database {
    let mut db = Database::new();
    tpcr::generate(
        &mut db,
        &TpcrConfig {
            scale,
            seed,
            pad: false,
            date_supplier_pool: Some(2),
        },
    )
    .expect("generate TPC-R data");
    tpcr::standard_indexes(&mut db).expect("build indexes");
    db
}

/// A hot `(orderdate, suppkey, nationkey)` combination guaranteed to have
/// at least one query result, sampled from the data itself.
pub struct HotCombo {
    /// orderdate of a real order.
    pub date: i64,
    /// suppkey of a lineitem of that order.
    pub supp: i64,
    /// nationkey of the order's customer.
    pub nation: i64,
}

/// Fetch the first tuple matching `key` on the index over column 0 of
/// `relation`.
fn lookup_by_key(db: &Database, relation: &str, key: i64) -> Option<pmv_storage::Tuple> {
    let idx = db
        .index_on(relation, &[0])
        .expect("standard index on key column");
    use pmv_index::SecondaryIndex;
    let rows = idx.get(&pmv_index::IndexKey::single(Value::Int(key)));
    let row = *rows.first()?;
    db.get(relation, row).ok()
}

/// Sample a hot combo by picking a random order and walking its foreign
/// keys through the standard indexes.
pub fn sample_hot(db: &Database, rng: &mut StdRng) -> HotCombo {
    let n_orders = db.len("orders").expect("orders") as i64;
    loop {
        let okey = rng.gen_range(1..=n_orders);
        let Some(order) = lookup_by_key(db, "orders", okey) else {
            continue;
        };
        let date = order.get(2).as_int().expect("orderdate");
        let cust = order.get(1).as_int().expect("custkey");
        let Some(line) = lookup_by_key(db, "lineitem", okey) else {
            continue;
        };
        let supp = line.get(1).as_int().expect("suppkey");
        let Some(customer) = lookup_by_key(db, "customer", cust) else {
            continue;
        };
        let nation = customer.get(1).as_int().expect("nationkey");
        return HotCombo { date, supp, nation };
    }
}

/// Aggregated measurements over the runs of one experiment cell.
/// Durations are **medians** (robust against allocator/scheduler
/// outliers at microsecond scale); counts are means.
#[derive(Clone, Copy, Debug, Default)]
pub struct OverheadSample {
    /// Median overhead of "our techniques" (O1 + O2 + O3 bookkeeping).
    pub overhead: Duration,
    /// Median probe-side overhead only (O1 + O2), which excludes the
    /// result-set-size-dependent O3 bookkeeping.
    pub probe: Duration,
    /// Median full execution time.
    pub exec: Duration,
    /// Mean partial tuples served.
    pub partial_tuples: f64,
    /// Mean executor operations (index probes + range scans + tuples
    /// examined) — the unit count a disk-cost model multiplies.
    pub exec_ops: f64,
    /// Runs measured.
    pub runs: usize,
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Parameters for one measurement cell.
#[derive(Clone, Copy, Debug)]
pub struct CellConfig {
    /// Template under test.
    pub template: Template,
    /// Disjunct counts (e, f, g); `g` ignored for T1. `h = e·f(·g)`.
    pub e: usize,
    pub f_disjuncts: usize,
    pub g: usize,
    /// Tuples stored per bcp (`F`).
    pub f_cap: usize,
    /// PMV entries (paper: 20K).
    pub entries: usize,
    /// Measurement repetitions.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Run one cell: fresh PMV per run, warm exactly the hot bcp, then
/// measure a query with `h` bcps of which exactly the hot one is
/// resident.
pub fn measure_cell(db: &Database, cfg: &CellConfig) -> OverheadSample {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pipeline = PmvPipeline::new();
    let (t, def) = match cfg.template {
        Template::T1 => {
            let t = template_t1(db).expect("T1");
            let def = PartialViewDef::all_equality("pmv_t1", t.clone()).expect("def");
            (t, def)
        }
        Template::T2 => {
            let t = template_t2(db).expect("T2");
            let def = PartialViewDef::all_equality("pmv_t2", t.clone()).expect("def");
            (t, def)
        }
    };
    let scale_supp = tpcr::supplier_count(estimate_scale(db));

    let mut overheads = Vec::with_capacity(cfg.runs);
    let mut probes = Vec::with_capacity(cfg.runs);
    let mut execs = Vec::with_capacity(cfg.runs);
    let mut total = OverheadSample::default();
    for run in 0..cfg.runs {
        let mut pmv = Pmv::new(
            def.clone(),
            PmvConfig::new(cfg.f_cap, cfg.entries, pmv_cache::PolicyKind::Clock),
        );
        let hot = sample_hot(db, &mut rng);
        // Warm: make the hot bcp resident with its (≤ F) tuples.
        let warm_q = build_query(&t, cfg.template, &[hot.date], &[hot.supp], &[hot.nation]);
        pipeline.run(db, &mut pmv, &warm_q).expect("warm query");

        // Measured query: hot value in each dimension + random fillers.
        let dates = values_including(&mut rng, tpcr::NUM_DATES, cfg.e, hot.date);
        let supps = values_including(&mut rng, scale_supp, cfg.f_disjuncts, hot.supp);
        let nations = values_including(&mut rng, tpcr::NUM_NATIONS, cfg.g.max(1), hot.nation);
        let q = build_query(&t, cfg.template, &dates, &supps, &nations);
        let out = pipeline.run(db, &mut pmv, &q).expect("measured query");
        debug_assert_eq!(out.ds_leftover, 0);
        let _ = run;
        overheads.push(out.timings.overhead());
        probes.push(out.timings.o1 + out.timings.o2);
        execs.push(out.timings.exec);
        total.partial_tuples += out.partial.len() as f64;
        total.exec_ops += (out.exec_stats.index_probes
            + out.exec_stats.range_scans
            + out.exec_stats.tuples_examined) as f64;
    }
    OverheadSample {
        overhead: median(overheads),
        probe: median(probes),
        exec: median(execs),
        partial_tuples: total.partial_tuples / cfg.runs as f64,
        exec_ops: total.exec_ops / cfg.runs as f64,
        runs: cfg.runs,
    }
}

fn build_query(
    t: &std::sync::Arc<pmv_query::QueryTemplate>,
    which: Template,
    dates: &[i64],
    supps: &[i64],
    nations: &[i64],
) -> QueryInstance {
    match which {
        Template::T1 => t1_query(t, dates, supps).expect("bind T1"),
        Template::T2 => t2_query(t, dates, supps, nations).expect("bind T2"),
    }
}

/// Recover the scale factor from the generated orders cardinality.
pub fn estimate_scale(db: &Database) -> f64 {
    db.len("orders").expect("orders") as f64 / 1_500_000.0
}

/// Tiny CLI helper: `--flag value` style lookup over `std::env::args`.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let prefix = format!("{name}=");
    args.iter()
        .find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
        .or_else(|| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1).cloned())
        })
}

/// Presence of a bare `--flag`.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}
