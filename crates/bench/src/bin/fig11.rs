//! Figure 11 — total workload TW for transaction T (maintenance cost),
//! from the Section 4.3 analytical model.
//!
//! Transaction T inserts p·|ΔR| tuples into R and deletes (1-p)·|ΔR|,
//! |ΔR| = 1000. TW in I/Os, log-scale in the paper.
//!
//! Paper's reading: maintaining V_PM is at least two orders of magnitude
//! cheaper than maintaining V_M at every p; both fall as p rises; PMV
//! cost is exactly 0 at p = 100% (invisible on the log axis).

use pmv_bench::ExperimentReport;
use pmv_costmodel::CostParams;

fn main() {
    let model = CostParams::default();
    let mut report = ExperimentReport::new(
        "figure11",
        "TW for transaction T in I/Os (|ΔR| = 1000)",
        "p",
    );
    for pt in model.sweep(10) {
        report.push(
            format!("{:.0}%", pt.p * 100.0),
            vec![("MV".into(), pt.mv_tw), ("PMV".into(), pt.pmv_tw)],
        );
    }
    report.print();
    println!();
    println!(
        "note: at p = 100% the PMV needs no maintenance at all (TW = 0), which the paper's \
         log-scale plot cannot show either"
    );
}
