//! Cumulative PMV statistics.

/// Counters accumulated across a PMV's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PmvStats {
    /// Queries run through the pipeline.
    pub queries: u64,
    /// Queries for which the PMV provided at least one partial result —
    /// the numerator of the paper's *hit probability* ("if any of the h
    /// basic condition parts in the Cselect of Q exists in V_PM, Q is
    /// hit"). Note the paper's simulation counts presence of the bcp; a
    /// bcp present but with zero matching tuples still counts as a hit
    /// there. We count both, see `bcp_hit_queries`.
    pub serving_queries: u64,
    /// Queries for which at least one probed bcp was resident.
    pub bcp_hit_queries: u64,
    /// Partial result tuples served from the PMV (Operation O2).
    pub partial_tuples_served: u64,
    /// Result tuples stored into the PMV (Operation O3 fill/update).
    pub tuples_admitted: u64,
    /// bcp admissions that landed in a probation queue.
    pub probations: u64,
    /// Condition parts generated across all queries (Σ h).
    pub condition_parts: u64,
    /// Inserts into base relations that required no PMV work.
    pub maint_inserts_ignored: u64,
    /// Deletes processed via the ΔR join.
    pub maint_deletes_joined: u64,
    /// Updates skipped because no relevant attribute changed.
    pub maint_updates_ignored: u64,
    /// Updates processed like deletes.
    pub maint_updates_joined: u64,
    /// View tuples evicted by maintenance.
    pub maint_tuples_removed: u64,
}

impl PmvStats {
    /// Hit probability over the queries seen so far, by the paper's
    /// definition (bcp residency).
    pub fn hit_probability(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.bcp_hit_queries as f64 / self.queries as f64
        }
    }

    /// Fraction of queries that actually received partial tuples.
    pub fn serving_probability(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.serving_queries as f64 / self.queries as f64
        }
    }

    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &PmvStats) {
        self.queries += other.queries;
        self.serving_queries += other.serving_queries;
        self.bcp_hit_queries += other.bcp_hit_queries;
        self.partial_tuples_served += other.partial_tuples_served;
        self.tuples_admitted += other.tuples_admitted;
        self.probations += other.probations;
        self.condition_parts += other.condition_parts;
        self.maint_inserts_ignored += other.maint_inserts_ignored;
        self.maint_deletes_joined += other.maint_deletes_joined;
        self.maint_updates_ignored += other.maint_updates_ignored;
        self.maint_updates_joined += other.maint_updates_joined;
        self.maint_tuples_removed += other.maint_tuples_removed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities() {
        let s = PmvStats {
            queries: 10,
            bcp_hit_queries: 9,
            serving_queries: 8,
            ..Default::default()
        };
        assert!((s.hit_probability() - 0.9).abs() < 1e-12);
        assert!((s.serving_probability() - 0.8).abs() < 1e-12);
        assert_eq!(PmvStats::default().hit_probability(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = PmvStats {
            queries: 1,
            partial_tuples_served: 5,
            ..Default::default()
        };
        let b = PmvStats {
            queries: 2,
            partial_tuples_served: 7,
            maint_tuples_removed: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.partial_tuples_served, 12);
        assert_eq!(a.maint_tuples_removed, 3);
    }
}
