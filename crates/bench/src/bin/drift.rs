//! Adaptivity experiment (beyond the paper's figures, but testing its
//! §3.2 design principle directly):
//!
//! > "The query pattern can change from time to time. That is, the basic
//! > condition parts that are hot can keep changing. We want to
//! > automatically keep track of this change and update V_PM
//! > accordingly."
//!
//! The workload's Zipf ranking is rotated by a large offset halfway
//! through the run; we report the hit probability in windows before and
//! after the shift for each policy, showing how fast each recovers.

use pmv_bench::tpcr_harness::arg_flag;
use pmv_bench::ExperimentReport;
use pmv_cache::{ClockPolicy, PolicyKind, ReplacementPolicy, TwoQPolicy};
use pmv_workload::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(policy: PolicyKind, n: usize) -> Box<dyn ReplacementPolicy<u32> + Send> {
    match policy {
        PolicyKind::Clock => Box::new(ClockPolicy::new((n as f64 * 1.02) as usize)),
        PolicyKind::TwoQ => Box::new(TwoQPolicy::new(n)),
        other => other.build(n),
    }
}

fn main() {
    let quick = arg_flag("--quick");
    let (total, n, window, windows) = if quick {
        (50_000usize, 1_000usize, 10_000usize, 8usize)
    } else {
        (1_000_000, 20_000, 100_000, 10)
    };
    let h = 2;
    let shift_window = windows / 2;
    let offset = (total / 2) as u32;

    let mut report = ExperimentReport::new(
        "drift",
        format!(
            "Hit probability per {window}-query window; hot set rotates by {offset} \
             at window {shift_window} (alpha=1.07, h={h})"
        ),
        "window",
    );
    let policies = [
        PolicyKind::Clock,
        PolicyKind::TwoQ,
        PolicyKind::TwoQFull,
        PolicyKind::Lru,
        PolicyKind::LruK,
    ];
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for (pi, &policy) in policies.iter().enumerate() {
        let zipf = Zipf::new(total, 1.07);
        let mut rng = StdRng::seed_from_u64(4242);
        let mut p = build(policy, n);
        for w in 0..windows {
            let mut hits = 0usize;
            for _ in 0..window {
                let mut bcps = [0u32; 8];
                let mut hit = false;
                for slot in bcps.iter_mut().take(h) {
                    let rank = zipf.sample(&mut rng) as u32;
                    let bcp = if w >= shift_window {
                        (rank + offset) % total as u32
                    } else {
                        rank
                    };
                    *slot = bcp;
                    if p.contains(&bcp) {
                        hit = true;
                        p.touch(&bcp);
                    }
                }
                if hit {
                    hits += 1;
                }
                for i in 0..h {
                    if bcps[..i].contains(&bcps[i]) {
                        continue;
                    }
                    p.admit(bcps[i]);
                }
            }
            series[pi].push(hits as f64 / window as f64);
            eprintln!(
                "{} window {w}: hit={:.4}{}",
                policy.name(),
                hits as f64 / window as f64,
                if w + 1 == shift_window {
                    "  << shift next"
                } else {
                    ""
                }
            );
        }
    }
    #[allow(clippy::needless_range_loop)] // indexing two parallel axes
    for w in 0..windows {
        report.push(
            format!("{w}{}", if w == shift_window { " (shift)" } else { "" }),
            policies
                .iter()
                .enumerate()
                .map(|(pi, p)| (p.name().to_string(), series[pi][w]))
                .collect(),
        );
    }
    report.print();
}
