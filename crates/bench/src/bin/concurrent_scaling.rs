//! Concurrent PMV probe throughput: thread count × shard count sweep.
//!
//! The sharded `SharedPmv` replaces the old whole-PMV mutex with one
//! `RwLock`ed store per bcp-hash shard, so O2 probes for *different* bcps
//! proceed in parallel. This experiment measures exactly that: a warmed
//! PMV over `B` disjoint bcps is probed by `t` threads, each owning a
//! disjoint slice of the bcp space (thread `i` queries bcps `i, i+t, …`),
//! and reports end-to-end queries/second for every (threads × shards)
//! combination plus the speedup over the single-thread run at the same
//! shard count.
//!
//! Expected shape: with 1 shard every probe serializes on the single
//! shard lock and speedup stays near 1×; with shards ≥ threads the
//! disjoint bcps hash across different shards and throughput scales with
//! the thread count until execution cost dominates. (On a single-core
//! host every configuration serializes on the CPU and speedups hover
//! around 1× regardless of shard count — run on a multi-core machine to
//! see the shard effect.)
//!
//! `--quick` scales the workload down ~10× for a smoke run.
//! `--faults <spec>` installs a `pmv-faultinject` plan for the measured
//! phase (e.g. `seed=42;exec-start:panic@0.05`), turning the
//! `degraded_query_rate` / `quarantine_events` series non-zero so the
//! degradation overhead can be compared against the clean run.

use std::time::Instant;

use pmv_bench::tpcr_harness::{arg_flag, arg_value};
use pmv_bench::ExperimentReport;
use pmv_cache::PolicyKind;
use pmv_core::{PartialViewDef, PmvConfig, SharedPmv};
use pmv_index::IndexDef;
use pmv_query::{Condition, Database, TemplateBuilder};
use pmv_storage::{tuple, Column, ColumnType, Schema, Value};

fn main() {
    let quick = arg_flag("--quick");
    let (rows, bcps, per_thread) = if quick {
        (2_000i64, 32i64, 300usize)
    } else {
        (20_000i64, 64i64, 2_000usize)
    };
    let faulty = arg_value("--faults").map(|spec| {
        let plan = pmv_faultinject::FaultPlan::parse(&spec).unwrap_or_else(|e| {
            eprintln!("bad --faults spec: {e}");
            std::process::exit(2);
        });
        eprintln!("fault injection active: {spec}");
        pmv_faultinject::install(std::sync::Arc::new(plan))
    });

    if faulty.is_some() {
        // Injected panics are caught by the serving path; keep the
        // default hook from spamming a backtrace for each one.
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.starts_with(pmv_faultinject::PANIC_PREFIX))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.starts_with(pmv_faultinject::PANIC_PREFIX))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    }

    let mut db = Database::new();
    db.create_relation(Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("f", ColumnType::Int),
        ],
    ))
    .unwrap();
    for i in 0..rows {
        db.insert("r", tuple![i, i % bcps]).unwrap();
    }
    db.create_index(IndexDef::btree("r", vec![1])).unwrap();
    let template = TemplateBuilder::new("by_f")
        .relation(db.schema("r").unwrap())
        .select("r", "a")
        .unwrap()
        .cond_eq("r", "f")
        .unwrap()
        .build()
        .unwrap();

    let thread_counts = [1usize, 2, 4, 8];
    let shard_counts = [1usize, 4, 16];

    let mut report = ExperimentReport::new(
        "concurrent_scaling",
        "O2 probe throughput, threads x shards, disjoint bcps",
        "threads",
    );
    let mut baselines = vec![0.0f64; shard_counts.len()];
    for &threads in &thread_counts {
        let mut values = Vec::new();
        for (si, &shards) in shard_counts.iter().enumerate() {
            let def = PartialViewDef::all_equality("bench_pmv", template.clone()).unwrap();
            let config = PmvConfig::new(8, (bcps as usize) * 2, PolicyKind::Clock);
            let shared = SharedPmv::with_shards(def, config, shards);
            // Warm every bcp: the first run fills it, the second serves
            // partials, so the measured phase is all O2 hits.
            for f in 0..bcps {
                let q = template
                    .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                    .unwrap();
                shared.run(&db, &q).unwrap();
                shared.run(&db, &q).unwrap();
            }
            shared.reset_stats();

            let start = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let shared = shared.clone();
                    let template = template.clone();
                    let db = &db;
                    scope.spawn(move || {
                        // Disjoint slice of the bcp space per thread.
                        let mut f = t as i64 % bcps;
                        for _ in 0..per_thread {
                            let q = template
                                .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                                .unwrap();
                            let out = shared.run(db, &q).unwrap();
                            assert_eq!(out.ds_leftover, 0);
                            f = (f + threads as i64) % bcps;
                        }
                    });
                }
            });
            let secs = start.elapsed().as_secs_f64();
            let total = (threads * per_thread) as f64;
            let qps = total / secs;
            let stats = shared.stats();
            assert_eq!(stats.queries as usize, threads * per_thread);
            if threads == 1 {
                baselines[si] = qps;
            }
            let speedup = qps / baselines[si];
            eprintln!(
                "threads={threads} shards={shards}: {qps:.0} q/s ({speedup:.2}x), \
                 hit rate {:.3}",
                stats.bcp_hit_queries as f64 / stats.queries as f64
            );
            values.push((format!("shards={shards} q/s"), qps));
            values.push((format!("shards={shards} speedup"), speedup));
            values.push((
                format!("shards={shards} degraded_query_rate"),
                stats.degraded_query_rate(),
            ));
            values.push((
                format!("shards={shards} quarantine_events"),
                stats.quarantine_events as f64,
            ));
        }
        report.push(threads.to_string(), values);
    }
    report.print();
}
