//! Deterministic kill-point crash/recovery matrix.
//!
//! Each case runs a seeded workload of durable group commits —
//! interleaved with checkpoints — against an [`EpochDb`] whose disk I/O
//! is routed through `pmv_wal::dio`, with a one-shot fault armed at one
//! disk site (`wal.append`, `wal.fsync`, `ckpt.write`, `ckpt.rename`,
//! `wal.truncate`). [`FaultKind::CrashPoint`] rules simulate `kill -9`:
//! the process state is torn down mid-operation (an unwind the harness
//! catches via [`is_crash_panic`]) and the directory is reopened as a
//! fresh process would. The oracle then asserts the recovery contract:
//!
//! * the recovered heap equals, RowId for RowId, the in-memory shadow
//!   database advanced to exactly `durable_lsn` commits — no committed
//!   transaction lost, no uncommitted delta visible;
//! * every acked commit is within the durable prefix
//!   (`acked <= durable_lsn <= attempted`);
//! * a PMV registered on the recovered database serves every query with
//!   `ds_leftover == 0` (revalidation-clean);
//! * the engine accepts new commits after recovery.
//!
//! Survivable faults ([`FaultKind::Io`], [`FaultKind::TornWrite`]) take
//! the same matrix slots without killing the process: the commit must
//! fail with `CoreError::Durability`, roll back, and leave the engine
//! serving the pre-fault state.
//!
//! Honors `PMV_CRASH_SEED=<u64>` (the CI `crash-recovery` job runs a
//! seed matrix); defaults to 42.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, Once};

use pmv_cache::PolicyKind;
use pmv_core::{CoreError, EpochDb, PartialViewDef, PmvConfig, SharedPmv};
use pmv_faultinject::{install, is_crash_panic, is_injected_panic, FaultKind, FaultPlan, Site};
use pmv_index::IndexDef;
use pmv_obs::ObsRegistry;
use pmv_query::{Condition, Database, TemplateBuilder, Transaction};
use pmv_storage::{tuple, Column, ColumnType, RowId, Schema, Tuple, Value};

/// The fault plan is process-global; serialize the matrix cases.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| is_injected_panic(s))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| is_injected_panic(s))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

fn seed_from_env() -> u64 {
    std::env::var("PMV_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn schema() -> Schema {
    Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("f", ColumnType::Int),
        ],
    )
}

/// One workload step, decided against the shadow state so the durable
/// and shadow databases always receive identical operations.
#[derive(Clone, Debug)]
enum Op {
    Insert(i64),
    Delete(RowId),
    Update(RowId, i64),
}

fn next_op(rng: &mut u64, shadow: &Database) -> Op {
    let live: Vec<RowId> = {
        let handle = shadow.relation("r").unwrap();
        let rel = handle.read();
        rel.iter().map(|(row, _)| row).collect()
    };
    let roll = splitmix(rng);
    let val = (splitmix(rng) % 1000) as i64;
    if live.is_empty() || roll.is_multiple_of(3) {
        Op::Insert(val)
    } else if roll % 3 == 1 {
        Op::Delete(live[(splitmix(rng) as usize) % live.len()])
    } else {
        Op::Update(live[(splitmix(rng) as usize) % live.len()], val)
    }
}

fn apply_shadow(shadow: &mut Database, op: &Op) {
    let mut txn = Transaction::begin(shadow);
    match op {
        Op::Insert(v) => {
            txn.insert("r", tuple![*v, *v % 10]).unwrap();
        }
        Op::Delete(row) => {
            txn.delete("r", *row).unwrap();
        }
        Op::Update(row, v) => {
            txn.update("r", *row, tuple![*v, *v % 10]).unwrap();
        }
    }
    txn.commit();
}

fn commit_durable(edb: &EpochDb, op: Op) -> Result<(), CoreError> {
    edb.commit(&[], move |db| {
        let mut txn = Transaction::begin(db);
        match &op {
            Op::Insert(v) => {
                txn.insert("r", tuple![*v, *v % 10])?;
            }
            Op::Delete(row) => {
                txn.delete("r", *row)?;
            }
            Op::Update(row, v) => {
                txn.update("r", *row, tuple![*v, *v % 10])?;
            }
        }
        Ok(((), txn.commit()))
    })
}

fn dump(db: &Database) -> Vec<(u32, Tuple)> {
    let handle = db.relation("r").unwrap();
    let rel = handle.read();
    let mut rows: Vec<(u32, Tuple)> = rel.iter().map(|(row, t)| (row.0, t.clone())).collect();
    rows.sort_by_key(|(row, _)| *row);
    rows
}

fn dump_epoch(edb: &EpochDb) -> Vec<(u32, Tuple)> {
    let guard = edb.read();
    let handle = guard.relation("r").unwrap();
    let rel = handle.read();
    let mut rows: Vec<(u32, Tuple)> = rel.iter().map(|(row, t)| (row.0, t.clone())).collect();
    rows.sort_by_key(|(row, _)| *row);
    rows
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pmv_crash_matrix").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Register a PMV over the recovered database and check every equality
/// class answers with `ds_leftover == 0` — the serving-path equivalent
/// of a clean revalidation (the cold store under-serves, never lies).
fn assert_serving_clean(edb: &EpochDb) {
    let template = {
        let guard = edb.read();
        TemplateBuilder::new("t")
            .relation(guard.schema("r").unwrap())
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .build()
            .unwrap()
    };
    let def = PartialViewDef::all_equality("recovered", template.clone()).unwrap();
    let pmv = SharedPmv::with_shards(def, PmvConfig::new(4, 16, PolicyKind::Clock), 4);
    for f in 0..10i64 {
        let q = template
            .bind(vec![Condition::Equality(vec![Value::Int(f)])])
            .unwrap();
        let out = edb.query(&pmv, &q).unwrap();
        assert_eq!(out.ds_leftover, 0, "recovered serving must dedup cleanly");
    }
    pmv.debug_validate();
}

/// Run one matrix case. Returns a human-readable outcome tag (asserts
/// internally).
fn run_case(name: &str, seed: u64, site: Site, kind: FaultKind, nth: u64) -> &'static str {
    const STEPS: usize = 24;
    const CKPT_EVERY: usize = 8;

    let dir = tmp_dir(name);
    let obs = Arc::new(ObsRegistry::new());
    let (edb, _) = EpochDb::open_durable(&dir, obs).unwrap();
    edb.with_write(|db| {
        db.create_relation(schema()).unwrap();
        db.create_index(IndexDef::btree("r", vec![1])).unwrap();
        for i in 0..20i64 {
            db.insert("r", tuple![i, i % 10]).unwrap();
        }
    });
    // Baseline checkpoint makes the setup durable before faults arm.
    edb.checkpoint(Vec::new()).unwrap();

    let mut shadow = Database::new();
    shadow.create_relation(schema()).unwrap();
    shadow.create_index(IndexDef::btree("r", vec![1])).unwrap();
    for i in 0..20i64 {
        shadow.insert("r", tuple![i, i % 10]).unwrap();
    }
    // `states[k]` is the heap content after k durable commits.
    let mut states: Vec<Vec<(u32, Tuple)>> = vec![dump(&shadow)];

    let mut rng = seed ^ (site as u64).wrapping_mul(0x1000_0001);
    let plan_guard = install(Arc::new(FaultPlan::new(seed).with_rule_at(site, kind, nth)));

    let mut acked = 0u64;
    let mut pending: Option<Op> = None;
    let crash = catch_unwind(AssertUnwindSafe(|| {
        for step in 0..STEPS {
            if step > 0 && step % CKPT_EVERY == 0 {
                edb.checkpoint(Vec::new()).unwrap();
                continue;
            }
            let op = next_op(&mut rng, &shadow);
            pending = Some(op.clone());
            match commit_durable(&edb, op.clone()) {
                Ok(()) => {
                    apply_shadow(&mut shadow, &op);
                    states.push(dump(&shadow));
                    acked += 1;
                    pending = None;
                }
                Err(CoreError::Durability(_)) => {
                    // Survivable injected fault: the round rolled back.
                    // The shadow does not advance; the engine must keep
                    // serving the pre-fault state.
                    pending = None;
                    assert_eq!(dump_epoch(&edb), states[acked as usize]);
                }
                Err(e) => panic!("unexpected commit error: {e}"),
            }
        }
    }));
    drop(plan_guard);

    let crashed = match crash {
        Ok(()) => false,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("")
                .to_string();
            assert!(
                is_crash_panic(&*payload),
                "only injected crash points may unwind, got: {msg}"
            );
            true
        }
    };

    drop(edb);

    // "Reboot": reopen the directory the way a fresh process would.
    let obs = Arc::new(ObsRegistry::new());
    let (recovered, _) = EpochDb::open_durable(&dir, obs).unwrap();
    let durable = recovered.durability().unwrap().durable_lsn();
    assert!(
        durable >= acked,
        "acked commit lost: acked={acked} durable={durable}"
    );
    // If the in-flight commit's record reached the disk before the
    // crash, recovery legitimately includes it: advance the oracle to
    // match. (An unacked-but-durable commit is a valid prefix
    // extension — exactly what a real crash between write and ack
    // leaves behind.)
    if durable > acked {
        let op = pending
            .take()
            .expect("durable advanced past acked without an in-flight commit");
        apply_shadow(&mut shadow, &op);
        states.push(dump(&shadow));
    }
    assert!(
        (durable as usize) < states.len(),
        "recovered beyond attempted prefix: durable={durable} states={}",
        states.len()
    );
    assert_eq!(
        dump_epoch(&recovered),
        states[durable as usize],
        "recovered heap must equal the shadow at exactly {durable} commits"
    );
    assert_serving_clean(&recovered);

    // The recovered engine accepts new durable commits.
    let op = next_op(&mut rng, &shadow);
    commit_durable(&recovered, op).unwrap();
    assert_eq!(recovered.durability().unwrap().durable_lsn(), durable + 1);

    std::fs::remove_dir_all(&dir).ok();
    if crashed {
        "crashed+recovered"
    } else {
        "completed"
    }
}

#[test]
fn kill_point_matrix() {
    let _guard = TEST_LOCK.lock().unwrap();
    install_quiet_panic_hook();
    let seed = seed_from_env();
    let sites = [
        Site::WalAppend,
        Site::WalFsync,
        Site::CkptWrite,
        Site::CkptRename,
        Site::WalTruncate,
    ];
    let mut crashes = 0;
    for site in sites {
        for nth in [0u64, 2] {
            let name = format!("crash_{}_{nth}_{seed}", site.as_str().replace('.', "_"));
            let outcome = run_case(&name, seed, site, FaultKind::CrashPoint, nth);
            if outcome == "crashed+recovered" {
                crashes += 1;
            }
        }
    }
    // The matrix must actually exercise crashes: every site fires at
    // least for nth=0 on the append/fsync path, and checkpoint sites
    // fire at the first in-loop checkpoint.
    assert!(crashes >= 6, "only {crashes} kill points fired");
}

#[test]
fn survivable_disk_faults_roll_back() {
    let _guard = TEST_LOCK.lock().unwrap();
    install_quiet_panic_hook();
    let seed = seed_from_env();
    for (site, kind, tag) in [
        (Site::WalAppend, FaultKind::TornWrite, "torn"),
        (Site::WalAppend, FaultKind::Io, "io_append"),
        (Site::WalFsync, FaultKind::Io, "io_fsync"),
    ] {
        let name = format!("fault_{tag}_{seed}");
        let outcome = run_case(&name, seed, site, kind, 1);
        assert_eq!(outcome, "completed", "{tag}: faults must not kill");
    }
}
