//! `pmv-analyze` — whole-program verification of the PMV lock/pin/
//! durability contracts over a source tree.
//!
//! ```text
//! pmv-analyze [--json] [--sarif FILE] [--deny-warnings]
//!             [--baseline FILE] [--write-baseline FILE] [paths…]
//! ```
//!
//! Runs the file-local lint rules plus the interprocedural passes
//! (call-graph reachability of locks, executor entry points, raw
//! filesystem writes, and the durable-before-visible publish check).
//! With no paths, analyzes `crates/` under the current directory.
//!
//! `--json` prints a SARIF 2.1.0 document to stdout; `--sarif FILE`
//! writes the same document to a file (CI uploads it as an artifact).
//!
//! `--write-baseline FILE` records current finding counts per
//! (rule, file) and exits 0; `--baseline FILE` then fails only when a
//! count *exceeds* its baselined value — new debt fails, known debt is
//! tolerated while it is paid down.
//!
//! Exit status: 0 clean, 1 findings fail the run, 2 usage or I/O
//! errors, 3 when a path does not exist or zero `.rs` files matched.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use pmv_analysis::lint::{Level, RULES};
use pmv_analysis::rules_ipa::{analyze_tree, AnalyzeReport, IPA_RULES};
use pmv_analysis::sarif::{to_sarif, SarifResult, SarifRule};

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut sarif_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--sarif" => match args.next() {
                Some(f) => sarif_out = Some(PathBuf::from(f)),
                None => return usage_err("--sarif requires a file argument"),
            },
            "--baseline" => match args.next() {
                Some(f) => baseline = Some(PathBuf::from(f)),
                None => return usage_err("--baseline requires a file argument"),
            },
            "--write-baseline" => match args.next() {
                Some(f) => write_baseline = Some(PathBuf::from(f)),
                None => return usage_err("--write-baseline requires a file argument"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: pmv-analyze [--json] [--sarif FILE] [--deny-warnings]\n\
                     \x20                  [--baseline FILE] [--write-baseline FILE] [paths...]"
                );
                println!("whole-program verification of the PMV lock/pin/durability contracts");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("pmv-analyze: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("crates"));
    }
    for path in &paths {
        if !path.exists() {
            eprintln!("pmv-analyze: path does not exist: {}", path.display());
            return ExitCode::from(3);
        }
    }

    let report = match analyze_tree(&paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pmv-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if report.files_scanned == 0 {
        eprintln!(
            "pmv-analyze: no .rs files found under {}",
            paths
                .iter()
                .map(|p| p.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(3);
    }

    if let Some(path) = &write_baseline {
        let text = baseline_text(&report);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("pmv-analyze: write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "pmv-analyze: baseline written to {} ({} finding(s))",
            path.display(),
            report.findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let sarif = render_sarif(&report);
    if let Some(path) = &sarif_out {
        if let Err(e) = std::fs::write(path, &sarif) {
            eprintln!("pmv-analyze: write sarif {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        println!("{sarif}");
    } else {
        print_human(&report, deny_warnings);
    }

    let failed = match &baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                let over = exceeds_baseline(&report, &text);
                for line in &over {
                    eprintln!("pmv-analyze: over baseline: {line}");
                }
                !over.is_empty()
            }
            Err(e) => {
                eprintln!("pmv-analyze: read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => report.failed(deny_warnings),
    };
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("pmv-analyze: {msg}");
    ExitCode::from(2)
}

fn print_human(report: &AnalyzeReport, deny_warnings: bool) {
    for f in &report.findings {
        println!("{f}");
    }
    for a in &report.allows_used {
        println!(
            "note: pmv::allow({}) in effect at {}:{}",
            a.rule,
            a.file.display(),
            a.line
        );
    }
    let errors = report
        .findings
        .iter()
        .filter(|f| f.level == Level::Error || deny_warnings)
        .count();
    let warnings = report.findings.len() - errors;
    println!(
        "pmv-analyze: {} file(s) scanned, {} fn(s) indexed, {} error(s), {} warning(s), \
         {} allow entrie(s)",
        report.files_scanned,
        report.fns_indexed,
        errors,
        warnings,
        report.allows_used.len()
    );
}

fn render_sarif(report: &AnalyzeReport) -> String {
    let mut rules: Vec<SarifRule> = Vec::new();
    for (id, _) in RULES.iter().chain(IPA_RULES.iter()) {
        if rules.iter().any(|r| r.id == *id) {
            continue;
        }
        rules.push(SarifRule {
            id: (*id).to_string(),
            short: rule_short(id).to_string(),
        });
    }
    let results: Vec<SarifResult> = report
        .findings
        .iter()
        .map(|f| SarifResult {
            rule_id: f.rule.to_string(),
            level: match f.level {
                Level::Error => "error",
                Level::Warning => "warning",
            },
            message: f.message.clone(),
            file: Some(f.file.display().to_string()),
            line: Some(f.line),
        })
        .collect();
    to_sarif("pmv-analyze", &rules, &results)
}

fn rule_short(id: &str) -> &'static str {
    match id {
        "write_guard_across_exec" => "no shard write guard held across an executor entry point",
        "lock_in_catch_unwind" => "no lock acquisition inside a catch_unwind closure",
        "lock_order" => "DB master lock before shard locks, never the reverse",
        "relaxed_outside_stats" => "Relaxed atomics only in designated statistics modules",
        "lock_in_pin_region" => "no blocking lock while an epoch pin is live",
        "raw_fs_write" => "no raw std::fs writes in durable crates outside wal::dio",
        "pin_reaches_blocking_lock" => "no blocking lock transitively reachable from a pin region",
        "dio_funnel_reach" => "durable crates reach the filesystem only through wal::dio",
        "durable_before_visible" => {
            "WAL append+fsync dominates snapshot publish; error arms roll back"
        }
        _ => "PMV protocol rule",
    }
}

/// Baseline format: sorted `rule\tfile\tcount` lines.
fn baseline_text(report: &AnalyzeReport) -> String {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in &report.findings {
        *counts
            .entry((f.rule.to_string(), f.file.display().to_string()))
            .or_insert(0) += 1;
    }
    let mut out = String::new();
    for ((rule, file), count) in counts {
        out.push_str(&format!("{rule}\t{file}\t{count}\n"));
    }
    out
}

/// `(rule, file)` buckets whose current count exceeds the baselined one.
fn exceeds_baseline(report: &AnalyzeReport, baseline: &str) -> Vec<String> {
    let mut allowed: BTreeMap<(String, String), usize> = BTreeMap::new();
    for line in baseline.lines() {
        let mut parts = line.split('\t');
        if let (Some(rule), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next()) {
            if let Ok(count) = count.trim().parse::<usize>() {
                allowed.insert((rule.to_string(), file.to_string()), count);
            }
        }
    }
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in &report.findings {
        *counts
            .entry((f.rule.to_string(), f.file.display().to_string()))
            .or_insert(0) += 1;
    }
    counts
        .into_iter()
        .filter(|(key, count)| *count > allowed.get(key).copied().unwrap_or(0))
        .map(|((rule, file), count)| format!("{rule}\t{file}\t{count}"))
        .collect()
}
