//! ORDER BY handling (Section 3.6 mentions queries "with order by
//! clauses" alongside aggregates; details deferred to \[25\]).
//!
//! Interface change, as with aggregates: the early partial results are
//! delivered sorted (a correctly ordered *sample* of the answer), and the
//! full, totally ordered answer follows after execution. The combined
//! stream cannot be globally ordered before execution finishes — that is
//! inherent — so the API exposes both the ordered prefix view and the
//! final ordering.

use std::cmp::Ordering;

use pmv_query::{Database, QueryInstance};
use pmv_storage::{Tuple, Value};

use crate::pipeline::{Pmv, PmvPipeline, QueryTimings};
use crate::Result;

/// Sort direction for one key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// An ORDER BY specification: positions in the user select list with
/// directions, applied lexicographically.
#[derive(Clone, Debug)]
pub struct OrderBy {
    /// `(user-layout position, direction)` pairs, major key first.
    pub keys: Vec<(usize, Direction)>,
}

impl OrderBy {
    /// Ascending ordering over the given positions.
    pub fn asc(positions: &[usize]) -> Self {
        OrderBy {
            keys: positions.iter().map(|&p| (p, Direction::Asc)).collect(),
        }
    }

    /// Compare two user-layout tuples under this ordering.
    pub fn cmp(&self, a: &Tuple, b: &Tuple) -> Ordering {
        for &(pos, dir) in &self.keys {
            let (x, y): (&Value, &Value) = (a.get(pos), b.get(pos));
            let ord = x.cmp(y);
            let ord = match dir {
                Direction::Asc => ord,
                Direction::Desc => ord.reverse(),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// Sort tuples under this ordering (stable).
    pub fn sort(&self, tuples: &mut [Tuple]) {
        tuples.sort_by(|a, b| self.cmp(a, b));
    }
}

/// Outcome of an ordered run.
#[derive(Clone, Debug)]
pub struct OrderedOutcome {
    /// Partial results, sorted under the requested ordering — an ordered
    /// sample available immediately.
    pub partial_sorted: Vec<Tuple>,
    /// The complete answer, totally sorted.
    pub all_sorted: Vec<Tuple>,
    /// Whether any probed bcp was resident.
    pub bcp_hit: bool,
    /// Timing breakdown of the underlying run.
    pub timings: QueryTimings,
}

/// Run `q` with ORDER BY semantics.
pub fn run_ordered(
    pipeline: &PmvPipeline,
    db: &Database,
    pmv: &mut Pmv,
    q: &QueryInstance,
    order: &OrderBy,
) -> Result<OrderedOutcome> {
    let outcome = pipeline.run(db, pmv, q)?;
    let mut partial_sorted = outcome.partial.clone();
    order.sort(&mut partial_sorted);
    let mut all_sorted = outcome.all_results();
    order.sort(&mut all_sorted);
    Ok(OrderedOutcome {
        partial_sorted,
        all_sorted,
        bcp_hit: outcome.bcp_hit,
        timings: outcome.timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_storage::tuple;

    #[test]
    fn lexicographic_multi_key() {
        let order = OrderBy {
            keys: vec![(0, Direction::Asc), (1, Direction::Desc)],
        };
        let mut rows = vec![
            tuple![2i64, 1i64],
            tuple![1i64, 5i64],
            tuple![1i64, 9i64],
            tuple![2i64, 7i64],
        ];
        order.sort(&mut rows);
        assert_eq!(
            rows,
            vec![
                tuple![1i64, 9i64],
                tuple![1i64, 5i64],
                tuple![2i64, 7i64],
                tuple![2i64, 1i64],
            ]
        );
    }

    #[test]
    fn asc_helper() {
        let order = OrderBy::asc(&[1]);
        let mut rows = vec![tuple![0i64, 3i64], tuple![0i64, 1i64]];
        order.sort(&mut rows);
        assert_eq!(rows[0], tuple![0i64, 1i64]);
    }
}
