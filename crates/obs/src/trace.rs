//! Bounded ring-buffer trace recorder: per-query lifecycle events.
//!
//! Aggregate histograms answer "how slow", traces answer "why": one
//! [`QueryTrace`] records the ordered [`TraceEvent`]s of a single pass
//! through the serving path — decomposition, per-shard probes, the
//! first-results point, execution, fill/eviction, degradation and
//! breaker decisions, and any fault-injection site that fired. The
//! recorder keeps the last `capacity` traces in a [`VecDeque`] ring
//! behind a [`Mutex`]; the `id` counter is a relaxed atomic — it is a
//! statistics sequence number, not synchronization.
//!
//! [`TraceScope`] is the span API: the serving path holds one per
//! query/maintenance pass, appends events as phases complete, and the
//! scope publishes itself into the ring on drop — so early-return and
//! degraded paths are captured without extra bookkeeping. A scope opened
//! on a disabled registry carries no recorder reference and allocates
//! nothing.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What kind of pass a trace covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// One query through O1/O2/O3.
    Query,
    /// One maintenance delta batch (ΔR join + shard eviction).
    Maintenance,
    /// One revalidation sweep.
    Revalidate,
}

impl TraceKind {
    /// Stable name, used in the JSON rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Query => "query",
            TraceKind::Maintenance => "maintenance",
            TraceKind::Revalidate => "revalidate",
        }
    }
}

/// One lifecycle event inside a trace. `at_us` on the enclosing
/// [`TraceEvent`] is the offset from the start of the pass.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// O1 finished: the query decomposed into `parts` condition parts.
    Decompose {
        /// Condition parts produced (the paper's `h`).
        parts: usize,
        /// O1 duration in microseconds.
        us: u64,
    },
    /// The circuit breaker's serve decision for this pass.
    Breaker {
        /// Whether O2/fill are allowed.
        serving: bool,
        /// Breaker state name at decision time (a static name — the
        /// serving path records this per query, so it must not
        /// allocate).
        state: &'static str,
    },
    /// One shard's O2 probe critical section completed.
    ShardProbe {
        /// Shard index probed.
        shard: usize,
        /// Distinct bcps probed on this shard.
        parts: usize,
        /// Cumulative partial tuples served after this shard.
        served: usize,
        /// Probe duration in microseconds.
        us: u64,
    },
    /// O2 complete: the partial results are available to the caller —
    /// the time-to-first-result point.
    FirstResults {
        /// Partial tuples served from the cache.
        tuples: usize,
        /// Whether any probed bcp was resident (the paper's "hit").
        bcp_hit: bool,
        /// Offset from query start in microseconds (TTFR).
        us: u64,
    },
    /// O3 execution finished.
    Exec {
        /// Result tuples produced.
        rows: usize,
        /// Executor tuples examined.
        tuples_examined: usize,
        /// Executor exact-match index probes.
        index_probes: usize,
        /// Execution duration in microseconds.
        us: u64,
    },
    /// One shard's O3 fill critical section completed (cache
    /// admission/eviction events).
    Fill {
        /// Shard index filled.
        shard: usize,
        /// Tuples admitted into the store.
        admitted: u64,
        /// Entries evicted by the replacement policy during the fill.
        evicted: u64,
        /// Fill duration in microseconds.
        us: u64,
    },
    /// The pass degraded: O3 did not complete.
    Degraded {
        /// Degradation reason (rendered from `DegradeReason`).
        reason: String,
        /// Staleness upper bound in microseconds.
        staleness_us: u64,
    },
    /// A shard was drained into quarantine during this pass.
    Quarantine {
        /// Shard index drained.
        shard: usize,
    },
    /// An injected fault fired during this pass (site + kind; latency
    /// carries its duration in microseconds).
    FaultFired {
        /// Fault site name (`pmv_faultinject::Site::as_str`).
        site: String,
        /// `"error"`, `"panic"`, or `"latency:<N>us"`.
        kind: String,
    },
    /// One maintenance batch finished.
    MaintBatch {
        /// Base relation the delta targets.
        relation: String,
        /// Deletes + relevant updates joined.
        joined: usize,
        /// ΔR ⋈ R_j rows produced.
        join_rows: usize,
        /// View tuples removed.
        removed: usize,
        /// Transient-failure retries.
        retries: usize,
        /// Fallback invalidations (retries exhausted).
        fallbacks: usize,
    },
    /// One revalidation sweep finished.
    Revalidated {
        /// Stale tuples removed.
        removed: usize,
    },
}

impl EventKind {
    /// Stable event name, used as the JSON `event` field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Decompose { .. } => "decompose",
            EventKind::Breaker { .. } => "breaker",
            EventKind::ShardProbe { .. } => "shard_probe",
            EventKind::FirstResults { .. } => "first_results",
            EventKind::Exec { .. } => "exec",
            EventKind::Fill { .. } => "fill",
            EventKind::Degraded { .. } => "degraded",
            EventKind::Quarantine { .. } => "quarantine",
            EventKind::FaultFired { .. } => "fault_fired",
            EventKind::MaintBatch { .. } => "maint_batch",
            EventKind::Revalidated { .. } => "revalidated",
        }
    }

    fn json_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            EventKind::Decompose { parts, us } => {
                let _ = write!(out, "\"parts\":{parts},\"us\":{us}");
            }
            EventKind::Breaker { serving, state } => {
                let _ = write!(out, "\"serving\":{serving},\"state\":\"{}\"", esc(state));
            }
            EventKind::ShardProbe {
                shard,
                parts,
                served,
                us,
            } => {
                let _ = write!(
                    out,
                    "\"shard\":{shard},\"parts\":{parts},\"served\":{served},\"us\":{us}"
                );
            }
            EventKind::FirstResults {
                tuples,
                bcp_hit,
                us,
            } => {
                let _ = write!(out, "\"tuples\":{tuples},\"bcp_hit\":{bcp_hit},\"us\":{us}");
            }
            EventKind::Exec {
                rows,
                tuples_examined,
                index_probes,
                us,
            } => {
                let _ = write!(
                    out,
                    "\"rows\":{rows},\"tuples_examined\":{tuples_examined},\
                     \"index_probes\":{index_probes},\"us\":{us}"
                );
            }
            EventKind::Fill {
                shard,
                admitted,
                evicted,
                us,
            } => {
                let _ = write!(
                    out,
                    "\"shard\":{shard},\"admitted\":{admitted},\"evicted\":{evicted},\"us\":{us}"
                );
            }
            EventKind::Degraded {
                reason,
                staleness_us,
            } => {
                let _ = write!(
                    out,
                    "\"reason\":\"{}\",\"staleness_us\":{staleness_us}",
                    esc(reason)
                );
            }
            EventKind::Quarantine { shard } => {
                let _ = write!(out, "\"shard\":{shard}");
            }
            EventKind::FaultFired { site, kind } => {
                let _ = write!(out, "\"site\":\"{}\",\"kind\":\"{}\"", esc(site), esc(kind));
            }
            EventKind::MaintBatch {
                relation,
                joined,
                join_rows,
                removed,
                retries,
                fallbacks,
            } => {
                let _ = write!(
                    out,
                    "\"relation\":\"{}\",\"joined\":{joined},\"join_rows\":{join_rows},\
                     \"removed\":{removed},\"retries\":{retries},\"fallbacks\":{fallbacks}",
                    esc(relation)
                );
            }
            EventKind::Revalidated { removed } => {
                let _ = write!(out, "\"removed\":{removed}");
            }
        }
    }
}

/// One timestamped event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the start of the pass.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A completed trace: the full lifecycle of one pass.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// Monotonic sequence number assigned by the recorder.
    pub id: u64,
    /// Pass kind.
    pub kind: TraceKind,
    /// Template (or view) name the pass targeted. Shared (`Arc<str>`)
    /// so hot paths publish a refcount bump, not a string copy.
    pub template: Arc<str>,
    /// Total pass duration in microseconds.
    pub total_us: u64,
    /// Ordered lifecycle events.
    pub events: Vec<TraceEvent>,
}

impl QueryTrace {
    /// Hand-rolled JSON object (same idiom as `VerifyReport::to_json`;
    /// the serde_json shim has no serializer derive).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(128 + self.events.len() * 64);
        let _ = write!(
            out,
            "{{\"id\":{},\"kind\":\"{}\",\"template\":\"{}\",\"total_us\":{},\"events\":[",
            self.id,
            self.kind.as_str(),
            esc(&self.template),
            self.total_us
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_us\":{},\"event\":\"{}\",",
                e.at_us,
                e.kind.name()
            );
            e.kind.json_fields(&mut out);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "#{} {} '{}' ({} µs)",
            self.id,
            self.kind.as_str(),
            self.template,
            self.total_us
        )?;
        for e in &self.events {
            writeln!(f, "  +{:>8} µs  {:?}", e.at_us, e.kind)?;
        }
        Ok(())
    }
}

/// Bounded ring of the most recent traces.
#[derive(Debug)]
pub struct TraceRecorder {
    capacity: usize,
    next_id: AtomicU64,
    ring: Mutex<VecDeque<QueryTrace>>,
}

impl TraceRecorder {
    /// Recorder keeping the last `capacity` traces (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRecorder {
            capacity,
            next_id: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Maximum traces retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no trace has been recorded (or all have been dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Open a span. The scope buffers events locally and publishes into
    /// the ring when dropped.
    pub fn begin(&self, kind: TraceKind, template: &str) -> TraceScope<'_> {
        self.begin_shared(kind, &Arc::from(template))
    }

    /// [`TraceRecorder::begin`] without the string copy: the caller
    /// holds the template name in an `Arc<str>` (e.g. one per view,
    /// created at registration) and each span costs one refcount bump.
    pub fn begin_shared(&self, kind: TraceKind, template: &Arc<str>) -> TraceScope<'_> {
        TraceScope {
            rec: Some(self),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            kind,
            template: Some(Arc::clone(template)),
            start: Instant::now(),
            events: Vec::new(),
        }
    }

    /// The last `n` traces, oldest first (clones — the ring keeps its
    /// copies).
    pub fn tail(&self, n: usize) -> Vec<QueryTrace> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Drop every retained trace (the id sequence keeps counting).
    pub fn clear(&self) {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    fn push(&self, trace: QueryTrace) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }
}

/// A live span over one pass. Append events with [`TraceScope::event`];
/// the trace publishes into the recorder's ring when the scope drops, so
/// every exit path (including degraded early returns) is captured.
pub struct TraceScope<'a> {
    rec: Option<&'a TraceRecorder>,
    id: u64,
    kind: TraceKind,
    /// `Some` iff `rec` is `Some`; `None` in a noop scope so disabled
    /// observability allocates nothing.
    template: Option<Arc<str>>,
    start: Instant,
    events: Vec<TraceEvent>,
}

impl TraceScope<'_> {
    /// A scope that records nothing (disabled observability). All
    /// methods are near-free no-ops.
    pub fn noop() -> Self {
        TraceScope {
            rec: None,
            id: 0,
            kind: TraceKind::Query,
            template: None,
            start: Instant::now(),
            events: Vec::new(),
        }
    }

    /// Whether events are being captured.
    pub fn active(&self) -> bool {
        self.rec.is_some()
    }

    /// Microseconds since the scope opened.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Append one event, stamped with the current offset.
    pub fn event(&mut self, kind: EventKind) {
        if self.rec.is_some() {
            self.events.push(TraceEvent {
                at_us: self.elapsed_us(),
                kind,
            });
        }
    }

    /// Append one event with an explicit offset (e.g. the TTFR point
    /// measured by the caller).
    pub fn event_at(&mut self, at_us: u64, kind: EventKind) {
        if self.rec.is_some() {
            self.events.push(TraceEvent { at_us, kind });
        }
    }
}

impl Drop for TraceScope<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            let template = self.template.take().unwrap_or_else(|| Arc::from(""));
            rec.push(QueryTrace {
                id: self.id,
                kind: self.kind,
                template,
                total_us: self.elapsed_us(),
                events: std::mem::take(&mut self.events),
            });
        }
    }
}

/// Minimal string escaping shared by the JSON and Prometheus renderers.
/// `\`, `"`, and newline become two-character escapes — the exact set
/// the Prometheus text exposition format requires inside label values,
/// and a subset of legal JSON string escapes, so one function serves
/// both outputs.
pub(crate) fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_capacity_traces() {
        let rec = TraceRecorder::new(3);
        for i in 0..5 {
            let mut s = rec.begin(TraceKind::Query, &format!("t{i}"));
            s.event(EventKind::Decompose { parts: 1, us: 2 });
        }
        assert_eq!(rec.len(), 3);
        let tail = rec.tail(10);
        assert_eq!(tail.len(), 3);
        assert_eq!(&*tail[0].template, "t2");
        assert_eq!(&*tail[2].template, "t4");
        assert_eq!(tail[2].id, 4, "ids keep counting past evicted traces");
        assert_eq!(rec.tail(1).len(), 1);
        rec.clear();
        assert!(rec.is_empty());
    }

    #[test]
    fn scope_publishes_on_drop_including_early_return() {
        let rec = TraceRecorder::new(8);
        fn early(rec: &TraceRecorder) -> u32 {
            let mut s = rec.begin(TraceKind::Query, "q");
            s.event(EventKind::Breaker {
                serving: false,
                state: "quarantined",
            });
            7 // scope drops here, mid-"pipeline"
        }
        assert_eq!(early(&rec), 7);
        let tail = rec.tail(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].events.len(), 1);
    }

    #[test]
    fn noop_scope_records_nothing() {
        let mut s = TraceScope::noop();
        assert!(!s.active());
        s.event(EventKind::Decompose { parts: 3, us: 1 });
        drop(s); // must not panic or publish anywhere
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let rec = TraceRecorder::new(2);
        {
            let mut s = rec.begin(TraceKind::Query, "t\"1\"");
            s.event(EventKind::ShardProbe {
                shard: 2,
                parts: 1,
                served: 3,
                us: 9,
            });
            s.event(EventKind::FaultFired {
                site: "exec-row".into(),
                kind: "latency:2000us".into(),
            });
        }
        let j = rec.tail(1)[0].to_json();
        assert!(j.starts_with("{\"id\":0,\"kind\":\"query\""), "{j}");
        assert!(j.contains("\"template\":\"t\\\"1\\\"\""), "{j}");
        assert!(j.contains("\"event\":\"shard_probe\""), "{j}");
        assert!(j.contains("\"site\":\"exec-row\""), "{j}");
        assert!(j.ends_with("]}"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn concurrent_scopes_do_not_lose_traces() {
        let rec = std::sync::Arc::new(TraceRecorder::new(10_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let rec = std::sync::Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let mut s = rec.begin(TraceKind::Query, "x");
                    s.event(EventKind::Decompose { parts: 1, us: 0 });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.len(), 800);
    }
}
