//! Offline shim of the `proptest` API surface this workspace uses:
//! the [`Strategy`] trait with `prop_map`, [`Just`], [`any`], integer
//! ranges, tuples, a tiny character-class regex strategy for `&'static
//! str`, `collection::{vec, btree_set}`, and the `proptest!`,
//! `prop_oneof!`, `prop_assert*!`, `prop_assume!` macros.
//!
//! Cases are generated deterministically (seeded from the test name and
//! the case index) so failures are reproducible. There is no shrinking:
//! a failing case is reported as-is, which keeps the shim small while
//! preserving the property-checking power of the originals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Seed from a test-name hash and case index.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        ))
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// `prop_assume!` filtered the case out; it is retried, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A property violation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A filtered-out case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-case outcome alias, as in upstream.
pub type TestCaseResult = std::result::Result<(), TestCaseError>;

/// Test-runner settings.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Weighted choice among boxed strategies (`prop_oneof!` output).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.0.gen_range(0..self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.gen_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident.$idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Types with a default full-domain strategy (upstream's `Arbitrary`).
pub trait ArbValue: Sized {
    /// Draw one value from the full domain.
    fn arb(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl ArbValue for $t {
            fn arb(rng: &mut TestRng) -> Self {
                rng.0.gen()
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl ArbValue for f64 {
    fn arb(rng: &mut TestRng) -> Self {
        // Full bit-pattern domain: exercises subnormals, infinities and
        // NaN, which is what callers using `any::<f64>()` want.
        f64::from_bits(rng.0.gen())
    }
}

/// Full-domain strategy for `T` (see [`any`]).
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: ArbValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arb(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: ArbValue>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// `&'static str` regex-lite strategy: supports patterns made of literal
/// characters and character classes `[a-z0-9_]` with an optional `{n}` /
/// `{m,n}` repetition, e.g. `"[a-z]{0,8}"`. Anything fancier panics with
/// a clear message.
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unterminated '[' in pattern {self:?}"))
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                c @ ('{' | '}' | '(' | ')' | '*' | '+' | '?' | '|' | '\\' | '.' | '^' | '$') => {
                    panic!(
                        "regex feature '{c}' unsupported by the proptest shim (pattern {self:?})"
                    )
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional repetition suffix.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated '{{' in pattern {self:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim()
                            .parse::<usize>()
                            .expect("bad repetition lower bound"),
                        n.trim()
                            .parse::<usize>()
                            .expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!alphabet.is_empty(), "empty character class in {self:?}");
            let count = rng.0.gen_range(lo..=hi);
            for _ in 0..count {
                out.push(alphabet[rng.0.gen_range(0..alphabet.len())]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::*;

    /// Element counts acceptable to collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy yielding `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Strategy yielding `BTreeSet`s of `element` values.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::btree_set(element, sizes)`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.0.gen_range(self.size.lo..=self.size.hi);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set; bounded retries keep generation
            // total even when the element domain is small.
            for _ in 0..target.saturating_mul(20).max(32) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.gen_value(rng));
            }
            set
        }
    }
}

/// Runner used by the `proptest!` macro expansion; not public API.
pub fn run_property<F: FnMut(&mut TestRng) -> TestCaseResult>(
    name: &str,
    config: &ProptestConfig,
    mut case: F,
) {
    // `PROPTEST_CASES` overrides the per-test case count, mirroring the
    // real crate. CI uses it to shrink the matrix under slow
    // interpreters (Miri) and sanitizers.
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(config.cases);
    let mut accepted: u64 = 0;
    let mut attempts: u64 = 0;
    let max_attempts = (cases as u64).saturating_mul(20).max(64);
    while accepted < cases as u64 {
        if attempts >= max_attempts {
            assert!(
                accepted > 0,
                "proptest '{name}': every generated case was rejected by prop_assume!"
            );
            break;
        }
        let mut rng = TestRng::for_case(name, attempts);
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {} (attempt {}): {msg}",
                    accepted,
                    attempts - 1
                );
            }
        }
    }
}

/// Everything a test file normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_property(stringify!($name), &config, |__rng| {
                $(let $pat = {
                    let __strategy = $strat;
                    $crate::Strategy::gen_value(&__strategy, __rng)
                };)+
                let mut __case = || -> $crate::TestCaseResult { $body Ok(()) };
                #[allow(clippy::redundant_closure_call)]
                __case()
            });
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted (or unweighted) choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assert_eq failed: `{}` = {:?} vs `{}` = {:?}",
            stringify!($left), l, stringify!($right), r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assert_eq failed: {:?} vs {:?}: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Fail if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assert_ne failed: both sides were {:?}",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assert_ne failed: both sides were {:?}: {}",
            l, format!($($fmt)+)
        );
    }};
}

/// Reject (and retry) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in -5i64..9, w in 0usize..4) {
            prop_assert!((-5..9).contains(&v));
            prop_assert!(w < 4);
        }

        #[test]
        fn tuples_and_maps(pair in (0i64..10, 0i64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!((0..19).contains(&pair));
        }

        #[test]
        fn assume_filters(v in 0i64..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }

        #[test]
        fn oneof_weighted(v in prop_oneof![3 => Just(1i64), 1 => 10i64..20]) {
            prop_assert!(v == 1 || (10..20).contains(&v));
        }

        #[test]
        fn regex_lite(s in "[a-z]{0,8}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in collection::vec(0u8..10, 0..5)) {
            prop_assert!(v.len() < 5);
        }
    }

    use crate::collection;

    #[test]
    fn btree_set_hits_min_size() {
        let strat = collection::btree_set(0i64..100, 3..4);
        let mut rng = crate::TestRng::for_case("btree", 0);
        for _ in 0..50 {
            let s = crate::Strategy::gen_value(&strat, &mut rng);
            assert_eq!(s.len(), 3);
        }
    }
}
