// IPA corpus: a durable-crate function reaches a raw filesystem write
// through a helper in a *non-durable* crate. The file-local rule only
// sees direct writes inside durable crates; the funnel contract is a
// reachability property.

fn fx_flush(path: &Path, bytes: &[u8]) -> Result<(), Error> {
    fx_spill(path, bytes)
}
