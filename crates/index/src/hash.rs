//! Equality-probe hash index.
//!
//! A thin wrapper over `HashMap<IndexKey, Vec<RowId>>`. This is the index
//! shape the PMV uses for its bcp index I (Section 3.2): bcp probes are
//! always exact-match, so hashing beats ordering there (one of the
//! design-choice ablations in `pmv-bench`).

use std::collections::HashMap;

use pmv_storage::RowId;

use crate::key::IndexKey;
use crate::SecondaryIndex;

/// Hash index: exact-match lookups only. `Clone` supports the
/// copy-on-write snapshot layer (see `BTreeIndex`).
#[derive(Clone, Default)]
pub struct HashIndex {
    map: HashMap<IndexKey, Vec<RowId>>,
    entries: usize,
}

impl HashIndex {
    /// Empty index.
    pub fn new() -> Self {
        HashIndex::default()
    }

    /// Empty index pre-sized for `keys` distinct keys.
    pub fn with_capacity(keys: usize) -> Self {
        HashIndex {
            map: HashMap::with_capacity(keys),
            entries: 0,
        }
    }

    /// Iterate over all `(key, postings)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&IndexKey, &[RowId])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Rows whose key components equal `parts`, without materializing an
    /// [`IndexKey`] — the zero-copy probe path (via
    /// `Borrow<[Value]> for IndexKey`).
    pub fn get_by_parts(&self, parts: &[pmv_storage::Value]) -> &[RowId] {
        self.map.get(parts).map_or(&[], Vec::as_slice)
    }
}

impl SecondaryIndex for HashIndex {
    fn insert(&mut self, key: IndexKey, row: RowId) {
        self.map.entry(key).or_default().push(row);
        self.entries += 1;
    }

    fn remove(&mut self, key: &IndexKey, row: RowId) -> bool {
        if let Some(rows) = self.map.get_mut(key) {
            if let Some(pos) = rows.iter().position(|&r| r == row) {
                rows.swap_remove(pos);
                self.entries -= 1;
                if rows.is_empty() {
                    self.map.remove(key);
                }
                return true;
            }
        }
        false
    }

    fn get(&self, key: &IndexKey) -> &[RowId] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    fn key_count(&self) -> usize {
        self.map.len()
    }

    fn entry_count(&self) -> usize {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_storage::Value;

    fn k(v: i64) -> IndexKey {
        IndexKey::single(Value::Int(v))
    }

    #[test]
    fn insert_and_get() {
        let mut idx = HashIndex::new();
        idx.insert(k(1), RowId(10));
        idx.insert(k(1), RowId(11));
        idx.insert(k(2), RowId(20));
        assert_eq!(idx.get(&k(1)), &[RowId(10), RowId(11)]);
        assert_eq!(idx.get(&k(2)), &[RowId(20)]);
        assert_eq!(idx.get(&k(3)), &[] as &[RowId]);
        assert_eq!(idx.key_count(), 2);
        assert_eq!(idx.entry_count(), 3);
    }

    #[test]
    fn remove_specific_posting() {
        let mut idx = HashIndex::new();
        idx.insert(k(1), RowId(10));
        idx.insert(k(1), RowId(11));
        assert!(idx.remove(&k(1), RowId(10)));
        assert_eq!(idx.get(&k(1)), &[RowId(11)]);
        assert!(!idx.remove(&k(1), RowId(10)));
        assert_eq!(idx.entry_count(), 1);
    }

    #[test]
    fn remove_last_posting_drops_key() {
        let mut idx = HashIndex::new();
        idx.insert(k(1), RowId(10));
        assert!(idx.remove(&k(1), RowId(10)));
        assert_eq!(idx.key_count(), 0);
    }

    #[test]
    fn duplicate_rows_per_key_allowed() {
        // Multiset semantics: the same row can appear twice (e.g. a
        // relation with duplicate tuples indexed by value).
        let mut idx = HashIndex::new();
        idx.insert(k(1), RowId(5));
        idx.insert(k(1), RowId(5));
        assert_eq!(idx.get(&k(1)).len(), 2);
        idx.remove(&k(1), RowId(5));
        assert_eq!(idx.get(&k(1)).len(), 1);
    }
}
