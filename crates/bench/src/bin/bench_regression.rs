//! CI regression gate: diff a fresh `concurrent_scaling --quick --json`
//! run against the committed `BENCH_pmv.json` baseline and fail the
//! build when the serving path got materially slower.
//!
//! Cells are matched by `(threads, shards)`. The gates are calibrated
//! for small shared CI runners, where per-cell numbers are noisy but
//! aggregates are stable (measured ~11% run-to-run spread on a 1-core
//! host vs >2× swings for individual multi-thread tail cells):
//!
//! - **qps**: the *sum* across matched cells may not drop more than
//!   `--max-qps-drop-pct` (default 20%); any single cell dropping more
//!   than twice that is flagged as a collapse regardless of the
//!   aggregate.
//! - **ttfr_p99_us**: per-cell, may not grow more than
//!   `--max-p99-growth`× (default 2×). Time-to-first-result is the
//!   wait-free serving path's own latency and stays in the tens of
//!   microseconds at every thread count, so tail growth here is signal.
//! - **full_p99_us**: same growth gate, but only for cells the host
//!   could actually schedule concurrently (`oversubscribed: false`,
//!   i.e. `threads <= cores`; older baselines without the flag fall
//!   back to `threads == 1`). With more runnable threads than cores
//!   the end-to-end tail is one descheduling (multiple milliseconds of
//!   timeslice), pure scheduler lottery — the 4.1 ms outliers in the
//!   pre-group-commit baseline were exactly this, not a writer convoy
//!   (the sweep's measured phase performs zero commits).
//! - **speedup at 8 threads**: when the *current* host has ≥ 8 cores,
//!   the best `speedup` across `threads == 8` cells must reach
//!   `--min-speedup-at-8` (default 3×). On smaller hosts every thread
//!   serializes on the CPU, speedup is meaningless, and the gate is
//!   skipped with a notice rather than silently passed.
//!
//! Both p99 gates ignore cells whose current value is under
//! `--p99-floor-us` (default 100 µs): 2× of single-digit-microsecond
//! noise is still noise. Runs with different `quick` workloads or
//! `snapshot_mode`s are refused rather than diffed apples-to-oranges,
//! and when the baseline and current runs come from hosts with a
//! different core count the *relative* qps gates are skipped too —
//! absolute throughput across machines is not a regression signal.
//!
//! The `maintenance` section (always emitted by `concurrent_scaling`)
//! is gated on its **counter ratio**, not wall-clock: the delta-key
//! index must touch at least `--min-maint-improvement` (default 10×)
//! fewer rows per delete than the ΔR-join baseline replaying the same
//! Zipfian delete stream. Rows-touched counts are deterministic for a
//! given workload, so this gate holds even on noisy shared runners. A
//! section present in the baseline but missing from the current run
//! fails the build, like the durability section below.
//!
//! When both files carry a `durability` section (`concurrent_scaling
//! --durability`), its `wal_commits_per_sec` is gated like a cell qps
//! but at twice the allowed drop — fsync latency on shared CI storage
//! is far noisier than in-memory serving. A section present in the
//! baseline but missing from the current run is a failure (the
//! durability cell silently disappearing from CI is itself a
//! regression); the reverse merely notes the baseline predates the
//! section.
//!
//! Usage:
//!   bench_regression --baseline BENCH_pmv.json --current BENCH_current.json
//!
//! Exit status: 0 clean, 1 regression (or incomparable inputs), 2 bad
//! invocation.

use pmv_bench::tpcr_harness::arg_value;
use serde_json::Value;

fn main() {
    let baseline_path = arg_value("--baseline").unwrap_or_else(|| "BENCH_pmv.json".to_string());
    let current_path = arg_value("--current").unwrap_or_else(|| "BENCH_current.json".to_string());
    let max_qps_drop_pct = parse_f64("--max-qps-drop-pct", 20.0);
    let max_p99_growth = parse_f64("--max-p99-growth", 2.0);
    let p99_floor_us = parse_f64("--p99-floor-us", 100.0);
    let min_speedup_at_8 = parse_f64("--min-speedup-at-8", 3.0);
    let min_maint_improvement = parse_f64("--min-maint-improvement", 10.0);

    let baseline = load(&baseline_path);
    let current = load(&current_path);

    for key in ["quick", "snapshot_mode"] {
        let (b, c) = (baseline.get(key), current.get(key));
        // Baselines written before the field existed are accepted; a
        // present-but-different value is an apples-to-oranges diff.
        if b.is_some() && format!("{b:?}") != format!("{c:?}") {
            eprintln!(
                "bench_regression: '{key}' differs (baseline {b:?}, current {c:?}); \
                 runs are not comparable"
            );
            std::process::exit(1);
        }
    }

    // Host core counts (absent in baselines predating the field).
    let base_cores = doc_cores(&baseline);
    let cur_cores = doc_cores(&current);
    let comparable_hosts = match (base_cores, cur_cores) {
        (Some(b), Some(c)) => b == c,
        // Legacy file with no 'cores': assume same host, keep the gates.
        _ => true,
    };
    if !comparable_hosts {
        eprintln!(
            "bench_regression: host cores differ (baseline {base_cores:?}, current \
             {cur_cores:?}); skipping relative qps gates"
        );
    }

    let base_cells = series(&baseline, &baseline_path);
    let cur_cells = series(&current, &current_path);

    let mut failures = 0usize;
    let mut compared = 0usize;
    let mut base_qps_sum = 0.0f64;
    let mut cur_qps_sum = 0.0f64;
    for b in base_cells {
        let (threads, shards) = cell_key(b);
        let Some(c) = cur_cells.iter().find(|c| cell_key(c) == (threads, shards)) else {
            eprintln!("FAIL threads={threads} shards={shards}: cell missing from current run");
            failures += 1;
            continue;
        };
        compared += 1;
        let b_qps = num(b, "qps");
        let c_qps = num(c, "qps");
        base_qps_sum += b_qps;
        cur_qps_sum += c_qps;
        let drop_pct = (1.0 - c_qps / b_qps) * 100.0;
        if comparable_hosts && drop_pct > 2.0 * max_qps_drop_pct {
            eprintln!(
                "FAIL threads={threads} shards={shards}: qps {b_qps:.0} -> {c_qps:.0} \
                 ({drop_pct:.1}% drop; single-cell collapse limit is {:.0}%)",
                2.0 * max_qps_drop_pct
            );
            failures += 1;
        }
        // full_p99 is only meaningful where the current host could run
        // every thread concurrently; oversubscribed tails are scheduler
        // timeslices, not serving-path latency (see module docs).
        let full_p99_gated = match c.get("oversubscribed").and_then(Value::as_bool) {
            Some(oversub) => !oversub,
            None => threads == 1,
        };
        let gated_p99s: &[&str] = if full_p99_gated {
            &["ttfr_p99_us", "full_p99_us"]
        } else {
            &["ttfr_p99_us"]
        };
        for p99 in gated_p99s {
            let b_p99 = num(b, p99);
            let c_p99 = num(c, p99);
            if c_p99 <= p99_floor_us {
                continue; // below the noise floor: never a regression
            }
            if c_p99 > b_p99.max(p99_floor_us) * max_p99_growth {
                eprintln!(
                    "FAIL threads={threads} shards={shards}: {p99} {b_p99:.0} -> {c_p99:.0} \
                     (> {max_p99_growth:.1}x growth)"
                );
                failures += 1;
            }
        }
    }
    if compared > 0 && comparable_hosts {
        let agg_drop_pct = (1.0 - cur_qps_sum / base_qps_sum) * 100.0;
        if agg_drop_pct > max_qps_drop_pct {
            eprintln!(
                "FAIL aggregate: sum qps {base_qps_sum:.0} -> {cur_qps_sum:.0} \
                 ({agg_drop_pct:.1}% drop > {max_qps_drop_pct:.0}% allowed)"
            );
            failures += 1;
        } else {
            eprintln!(
                "aggregate qps {base_qps_sum:.0} -> {cur_qps_sum:.0} ({agg_drop_pct:+.1}% change)"
            );
        }
    }

    // Absolute scaling gate: on a host wide enough to run the 8-thread
    // cells without oversubscription, group commit + incremental publish
    // + pin caching must deliver real parallel speedup.
    if cur_cores.is_some_and(|c| c >= 8) {
        let best_speedup = cur_cells
            .iter()
            .filter(|c| cell_key(c).0 == 8)
            .map(|c| num(c, "speedup"))
            .fold(0.0f64, f64::max);
        if best_speedup < min_speedup_at_8 {
            eprintln!(
                "FAIL scaling: best speedup at 8 threads is {best_speedup:.2}x \
                 (< {min_speedup_at_8:.1}x required on a {}-core host)",
                cur_cores.unwrap_or(0)
            );
            failures += 1;
        } else {
            eprintln!("scaling: best speedup at 8 threads {best_speedup:.2}x");
        }
    } else {
        eprintln!(
            "bench_regression: current host has {cur_cores:?} core(s) (< 8); \
             skipping --min-speedup-at-8 gate"
        );
    }

    // Maintenance cell: the delta-key index must keep beating the
    // ΔR-join baseline on rows touched per delete. The ratio is a
    // deterministic counter quotient, so it is gated on every host.
    match (baseline.get("maintenance"), current.get("maintenance")) {
        (_, Some(c)) => {
            match c.get("improvement_x").and_then(Value::as_f64) {
                Some(x) if x >= min_maint_improvement => {
                    eprintln!(
                        "maintenance: rows-per-delete improvement {x:.1}x \
                         (>= {min_maint_improvement:.0}x required)"
                    );
                }
                Some(x) => {
                    eprintln!(
                        "FAIL maintenance: rows-per-delete improvement {x:.1}x \
                         (< {min_maint_improvement:.0}x required)"
                    );
                    failures += 1;
                }
                None => {
                    eprintln!("FAIL maintenance: section lacks numeric 'improvement_x'");
                    failures += 1;
                }
            }
        }
        (Some(_), None) => {
            eprintln!(
                "FAIL maintenance: baseline has a maintenance section but the current \
                 run does not (rerun concurrent_scaling)"
            );
            failures += 1;
        }
        (None, None) => {
            eprintln!("bench_regression: no maintenance section in either run; gate skipped");
        }
    }

    // Durability cell: commit throughput with a WAL fsync per round.
    match (baseline.get("durability"), current.get("durability")) {
        (Some(b), Some(c)) => {
            let b_cps = b.get("wal_commits_per_sec").and_then(Value::as_f64);
            let c_cps = c.get("wal_commits_per_sec").and_then(Value::as_f64);
            match (b_cps, c_cps) {
                (Some(b_cps), Some(c_cps)) if comparable_hosts => {
                    let drop_pct = (1.0 - c_cps / b_cps) * 100.0;
                    let limit = 2.0 * max_qps_drop_pct;
                    if drop_pct > limit {
                        eprintln!(
                            "FAIL durability: wal_commits_per_sec {b_cps:.0} -> {c_cps:.0} \
                             ({drop_pct:.1}% drop > {limit:.0}% allowed)"
                        );
                        failures += 1;
                    } else {
                        eprintln!(
                            "durability: wal_commits_per_sec {b_cps:.0} -> {c_cps:.0} \
                             ({drop_pct:+.1}% change)"
                        );
                    }
                }
                (Some(_), Some(_)) => {
                    eprintln!("durability: hosts differ; skipping wal_commits_per_sec gate");
                }
                _ => {
                    eprintln!("FAIL durability: section lacks numeric 'wal_commits_per_sec'");
                    failures += 1;
                }
            }
        }
        (Some(_), None) => {
            eprintln!(
                "FAIL durability: baseline has a durability section but the current run \
                 does not (run concurrent_scaling with --durability)"
            );
            failures += 1;
        }
        (None, _) => {
            eprintln!("bench_regression: baseline has no durability section; gate skipped");
        }
    }

    if failures > 0 {
        eprintln!("bench_regression: {failures} regression(s) across {compared} compared cell(s)");
        std::process::exit(1);
    }
    eprintln!(
        "bench_regression: {compared} cell(s) within gates (aggregate qps drop <= \
         {max_qps_drop_pct:.0}%, p99 growth <= {max_p99_growth:.1}x above {p99_floor_us:.0} µs floor)"
    );
}

fn parse_f64(flag: &str, default: f64) -> f64 {
    match arg_value(flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bench_regression: {flag} wants a number, got '{v}'");
            std::process::exit(2);
        }),
    }
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_regression: cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bench_regression: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn series<'a>(doc: &'a Value, path: &str) -> &'a Vec<Value> {
    doc.get("series")
        .and_then(Value::as_array)
        .unwrap_or_else(|| {
            eprintln!("bench_regression: {path} has no 'series' array");
            std::process::exit(2);
        })
}

fn doc_cores(doc: &Value) -> Option<i64> {
    doc.get("cores").and_then(Value::as_i64)
}

fn cell_key(cell: &Value) -> (i64, i64) {
    (
        cell.get("threads").and_then(Value::as_i64).unwrap_or(-1),
        cell.get("shards").and_then(Value::as_i64).unwrap_or(-1),
    )
}

fn num(cell: &Value, key: &str) -> f64 {
    let (threads, shards) = cell_key(cell);
    cell.get(key).and_then(Value::as_f64).unwrap_or_else(|| {
        eprintln!("bench_regression: cell threads={threads} shards={shards} lacks numeric '{key}'");
        std::process::exit(2);
    })
}
