//! `Dio` — the durable I/O chokepoint.
//!
//! Every byte this workspace writes to disk goes through the functions
//! in this module, for two reasons:
//!
//! 1. **Deterministic crash testing.** Each operation fires a
//!    `pmv-faultinject` disk site *before* acting, so a seeded plan can
//!    fail it ([`FaultKind::Io`]), tear it ([`FaultKind::TornWrite`] —
//!    a prefix of the buffer reaches the file, then the call errors),
//!    or kill the process at it ([`FaultKind::CrashPoint`] — an unwind
//!    with [`pmv_faultinject::CRASH_PREFIX`] that the crash harness
//!    catches as a simulated `kill -9`). The kill-point matrix test
//!    places one-shot crash rules at every site.
//! 2. **Lintability.** The `pmv-lint` `raw_fs_write` rule denies direct
//!    `std::fs` write access (`File::create`, `write`, `rename`, …)
//!    everywhere in `crates/{core,storage,wal}` *except* this file, so
//!    a code path cannot quietly bypass fault injection — if it writes,
//!    it is testable.
//!
//! [`FaultKind::Io`]: pmv_faultinject::FaultKind::Io
//! [`FaultKind::TornWrite`]: pmv_faultinject::FaultKind::TornWrite
//! [`FaultKind::CrashPoint`]: pmv_faultinject::FaultKind::CrashPoint

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

use pmv_faultinject::{fire_disk, DiskFault, Site};

fn injected(site: Site) -> io::Error {
    io::Error::other(format!("injected disk fault at {site}"))
}

/// Create (or truncate) a file for writing.
pub fn create(path: &Path) -> io::Result<File> {
    File::create(path)
}

/// Open a file for appending, creating it if absent. Returns the file
/// positioned at its current end.
pub fn open_append(path: &Path) -> io::Result<File> {
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .read(true)
        .open(path)?;
    f.seek(SeekFrom::End(0))?;
    Ok(f)
}

/// Create a directory and all parents.
pub fn create_dir_all(path: &Path) -> io::Result<()> {
    std::fs::create_dir_all(path)
}

/// Write the whole buffer at the file's current position, under the
/// given fault site. A [`DiskFault::Torn`] persists only the first half
/// of the buffer before failing — the torn-tail case recovery must
/// detect and truncate.
pub fn write_all(file: &mut File, site: Site, buf: &[u8]) -> io::Result<()> {
    match fire_disk(site) {
        Ok(()) => file.write_all(buf),
        Err(DiskFault::Io) => Err(injected(site)),
        Err(DiskFault::Torn) => {
            file.write_all(&buf[..buf.len() / 2])?;
            Err(injected(site))
        }
    }
}

/// Flush file contents and metadata to stable storage, under the given
/// fault site. This is the durability point: a commit is durable iff
/// its record's fsync returned.
pub fn fsync(file: &File, site: Site) -> io::Result<()> {
    match fire_disk(site) {
        Ok(()) => file.sync_all(),
        Err(_) => Err(injected(site)),
    }
}

/// Truncate `file` back to `len` bytes — the append-failure cleanup
/// path, undoing a torn in-process write so the running process keeps a
/// clean log tail. Not fault-sited: it runs *inside* failure handling,
/// and if the process dies anyway the recovery scan truncates the same
/// bytes.
pub fn truncate(file: &File, len: u64) -> io::Result<()> {
    file.set_len(len)
}

/// Atomically rename `from` to `to` (same directory), under
/// [`Site::CkptRename`] — the checkpoint publication point.
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    match fire_disk(Site::CkptRename) {
        Ok(()) => std::fs::rename(from, to),
        Err(_) => Err(injected(Site::CkptRename)),
    }
}

/// Remove a file, under [`Site::WalTruncate`] — WAL segments behind a
/// checkpoint are deleted through this.
pub fn remove_file(path: &Path) -> io::Result<()> {
    match fire_disk(Site::WalTruncate) {
        Ok(()) => std::fs::remove_file(path),
        Err(_) => Err(injected(Site::WalTruncate)),
    }
}

/// Fsync a directory, making renames/creates/removals inside it
/// durable. Errors are ignored on platforms where directories cannot be
/// opened for sync.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_faultinject::{install, FaultKind, FaultPlan};
    use std::sync::Arc;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pmv_dio_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn torn_write_persists_half_then_errors() {
        let path = tmp("torn.bin");
        let _ = std::fs::remove_file(&path);
        let mut f = open_append(&path).unwrap();
        let plan =
            Arc::new(FaultPlan::new(0).with_rule_at(Site::WalAppend, FaultKind::TornWrite, 0));
        let g = install(plan);
        let buf = [0xABu8; 64];
        assert!(write_all(&mut f, Site::WalAppend, &buf).is_err());
        drop(g);
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap().len(), 32);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn io_fault_persists_nothing() {
        let path = tmp("io.bin");
        let _ = std::fs::remove_file(&path);
        let mut f = open_append(&path).unwrap();
        let plan = Arc::new(FaultPlan::new(0).with_rule_at(Site::WalAppend, FaultKind::Io, 0));
        let g = install(plan);
        assert!(write_all(&mut f, Site::WalAppend, &[1, 2, 3]).is_err());
        drop(g);
        drop(f);
        assert!(std::fs::read(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clean_write_and_fsync_roundtrip() {
        let path = tmp("clean.bin");
        let _ = std::fs::remove_file(&path);
        let mut f = open_append(&path).unwrap();
        write_all(&mut f, Site::WalAppend, b"hello").unwrap();
        fsync(&f, Site::WalFsync).unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        remove_file(&path).unwrap();
        assert!(!path.exists());
    }
}
