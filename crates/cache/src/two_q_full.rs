//! Full 2Q (Johnson & Shasha, VLDB '94), as opposed to the paper's
//! *simplified* 2Q: three queues —
//!
//! * `A1in`: a FIFO of recently admitted keys, **resident**;
//! * `A1out`: a FIFO of ghost keys recently expelled from `A1in`
//!   (metadata only, not resident);
//! * `Am`: the main LRU, holding keys re-referenced while in `A1out`.
//!
//! A first-time key enters `A1in` (so one-shot scans never pollute `Am`);
//! only a reference *after* it has aged out into `A1out` proves recurring
//! interest and promotes it to `Am`. Included as an ablation point next
//! to the paper's simplified 2Q.

use std::collections::{HashSet, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

use crate::lru::LruPolicy;
use crate::{AdmitOutcome, ReplacementPolicy};

/// Full 2Q: resident set = `Am ∪ A1in`.
pub struct TwoQFullPolicy<K> {
    am: LruPolicy<K>,
    a1in: VecDeque<K>,
    a1in_set: HashSet<K>,
    a1in_capacity: usize,
    a1out: VecDeque<K>,
    a1out_set: HashSet<K>,
    a1out_capacity: usize,
    capacity: usize,
}

impl<K: Clone + Eq + Hash + Debug> TwoQFullPolicy<K> {
    /// Full 2Q with `capacity` resident entries, using the classic
    /// tuning: `Kin = capacity/4` (min 1), `Kout = capacity/2` (min 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "full 2Q needs capacity >= 2");
        let a1in_capacity = (capacity / 4).max(1);
        TwoQFullPolicy {
            am: LruPolicy::new(capacity - a1in_capacity),
            a1in: VecDeque::with_capacity(a1in_capacity),
            a1in_set: HashSet::with_capacity(a1in_capacity),
            a1in_capacity,
            a1out: VecDeque::new(),
            a1out_set: HashSet::new(),
            a1out_capacity: (capacity / 2).max(1),
            capacity,
        }
    }

    /// Is `key` in the ghost queue?
    pub fn in_ghost(&self, key: &K) -> bool {
        self.a1out_set.contains(key)
    }

    fn drop_from_a1in(&mut self, key: &K) {
        if self.a1in_set.remove(key) {
            if let Some(pos) = self.a1in.iter().position(|k| k == key) {
                self.a1in.remove(pos);
            }
        }
    }

    fn drop_from_a1out(&mut self, key: &K) {
        if self.a1out_set.remove(key) {
            if let Some(pos) = self.a1out.iter().position(|k| k == key) {
                self.a1out.remove(pos);
            }
        }
    }

    /// Expel the A1in head into A1out; returns the evicted (resident)
    /// key.
    fn age_out_a1in(&mut self) -> Option<K> {
        let victim = self.a1in.pop_front()?;
        self.a1in_set.remove(&victim);
        if self.a1out.len() == self.a1out_capacity {
            if let Some(old) = self.a1out.pop_front() {
                self.a1out_set.remove(&old);
            }
        }
        self.a1out_set.insert(victim.clone());
        self.a1out.push_back(victim.clone());
        Some(victim)
    }
}

impl<K: Clone + Eq + Hash + Debug> ReplacementPolicy<K> for TwoQFullPolicy<K> {
    fn contains(&self, key: &K) -> bool {
        self.am.contains(key) || self.a1in_set.contains(key)
    }

    fn touch(&mut self, key: &K) {
        // A1in entries deliberately do NOT move on re-reference (that is
        // 2Q's scan resistance); Am entries refresh their LRU position.
        self.am.touch(key);
    }

    fn admit(&mut self, key: K) -> AdmitOutcome<K> {
        if self.am.contains(&key) {
            self.am.touch(&key);
            return AdmitOutcome::Resident { evicted: vec![] };
        }
        if self.a1in_set.contains(&key) {
            return AdmitOutcome::Resident { evicted: vec![] };
        }
        if self.a1out_set.contains(&key) {
            // Proven recurring: promote to Am.
            self.drop_from_a1out(&key);
            return self.am.admit(key);
        }
        // First sighting: resident via A1in.
        let mut evicted = Vec::new();
        if self.a1in.len() == self.a1in_capacity {
            if let Some(victim) = self.age_out_a1in() {
                evicted.push(victim);
            }
        }
        self.a1in_set.insert(key.clone());
        self.a1in.push_back(key);
        AdmitOutcome::Resident { evicted }
    }

    fn remove(&mut self, key: &K) {
        self.am.remove(key);
        self.drop_from_a1in(key);
        self.drop_from_a1out(key);
    }

    fn resident_count(&self) -> usize {
        self.am.resident_count() + self.a1in.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resident_keys(&self) -> Vec<K> {
        let mut keys = self.am.resident_keys();
        keys.extend(self.a1in.iter().cloned());
        keys
    }

    fn name(&self) -> &'static str {
        "2Q-full"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sighting_is_resident_via_a1in() {
        let mut q = TwoQFullPolicy::new(8);
        let out = q.admit(1u32);
        assert!(out.is_resident());
        assert!(q.contains(&1));
        assert_eq!(q.resident_count(), 1);
    }

    #[test]
    fn one_shot_scan_does_not_reach_am() {
        let mut q = TwoQFullPolicy::new(8); // Kin = 2, Kout = 4
        for k in 0..20u32 {
            q.admit(k);
        }
        // A scan of 20 distinct keys leaves only Kin of them resident.
        assert_eq!(q.resident_count(), 2);
        assert!(q.contains(&19) && q.contains(&18));
    }

    #[test]
    fn reference_from_ghost_promotes_to_am() {
        let mut q = TwoQFullPolicy::new(8); // Kin = 2, Kout = 4
        q.admit(1u32);
        q.admit(2);
        q.admit(3); // 1 ages out into A1out
        assert!(!q.contains(&1));
        assert!(q.in_ghost(&1));
        let out = q.admit(1);
        assert!(out.is_resident());
        assert!(q.contains(&1), "ghost re-reference lands in Am");
        // Now survives further scans.
        for k in 10..30u32 {
            q.admit(k);
        }
        assert!(q.contains(&1), "Am member survives a scan");
    }

    #[test]
    fn ghost_queue_is_bounded() {
        let mut q = TwoQFullPolicy::new(8); // Kout = 4
        for k in 0..50u32 {
            q.admit(k);
        }
        assert!(q.a1out.len() <= 4);
        assert_eq!(q.a1out.len(), q.a1out_set.len());
    }

    #[test]
    fn remove_clears_all_queues() {
        let mut q = TwoQFullPolicy::new(8);
        q.admit(1u32);
        q.remove(&1);
        assert!(!q.contains(&1));
        q.admit(2u32);
        q.admit(3u32);
        q.admit(4u32); // 2 aged out to ghost
        q.remove(&2);
        assert!(!q.in_ghost(&2));
        // Re-admission of 2 is a fresh first sighting (A1in), not a
        // promotion.
        q.admit(2u32);
        assert!(q.contains(&2));
        assert!(!q.in_ghost(&2));
    }

    #[test]
    fn resident_never_exceeds_capacity() {
        let mut q = TwoQFullPolicy::new(6);
        for k in 0..200u32 {
            q.admit(k % 37);
            assert!(q.resident_count() <= 6, "at key {k}");
        }
    }
}
