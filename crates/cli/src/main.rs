//! `pmv-cli` — interactive shell for the PMV system.
//!
//! ```bash
//! cargo run --release -p pmv-cli              # interactive
//! cargo run --release -p pmv-cli script.pmv   # run a command script
//! ```

use std::io::{BufRead, Write};

use pmv_cli::Session;

fn main() {
    let mut session = Session::new();
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = args.get(1) {
        // Script mode: run each line, echoing commands and output.
        let script = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        for line in script.lines() {
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            println!("pmv> {line}");
            match session.execute(line) {
                Ok(out) if out.is_empty() => {}
                Ok(out) => println!("{out}"),
                Err(e) if e == "bye" => return,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    println!("pmv-cli — Partial Materialized Views (type `help`)");
    let stdin = std::io::stdin();
    loop {
        print!("pmv> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        match session.execute(&line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) if e == "bye" => break,
            Err(e) => println!("error: {e}"),
        }
    }
}
