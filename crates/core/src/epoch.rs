//! Epoch-published database snapshots — the write side of the lock-free
//! serving path.
//!
//! [`EpochDb`] pairs the mutable [`Database`] (behind a
//! `parking_lot::RwLock`) with a published immutable [`DbSnapshot`] in a
//! [`LeftRight`] cell. Readers *pin* the current snapshot with one
//! wait-free [`LeftRight::load`] — no database lock, no reference
//! counting beyond the `Arc` clone — and run entire queries against it
//! ([`SharedPmv::run_pinned`]); relations and indexes inside the
//! snapshot are copy-on-write `Arc`s, so pinning is O(1) regardless of
//! data size.
//!
//! # The commit protocol (group commit)
//!
//! [`EpochDb::commit`] is the only place new database states become
//! visible. Commits are **coalesced, flat-combining style** (DESIGN.md
//! §15): each committer enqueues a request, then races for the master
//! write lock. Whichever committer holds the lock — the *combiner* —
//! drains the whole queue and runs the three steps the correctness
//! argument (DESIGN.md §14) needs, once for the entire batch:
//!
//! 1. **Mutate**: apply every drained transaction's closure under the
//!    write lock (each bumping the database version — the epoch).
//! 2. **Maintain** every distinct registered PMV against the new state
//!    over the *merged* `DeltaBatch`es, still under the write lock.
//!    This evicts cached tuples any Δ invalidated and advances each
//!    view's `maint_epoch` past the whole batch.
//! 3. **Publish** one new snapshot (incrementally — untouched
//!    relations are reused, [`Database::publish_snapshot`]), mark every
//!    drained request complete, then release the lock.
//!
//! Committers whose request was drained by another combiner find their
//! result slot filled and never do the work themselves; under
//! contention, N transactions cost one maintenance scan and one
//! snapshot publish instead of N of each.
//!
//! Because maintenance over the merged batch completes *before* the
//! coalesced snapshot publishes, any reader pinned at epoch `e` sees
//! shard views whose surviving tuples with `fill_epoch ≤ e` are true
//! results at `e` — exactly the §14 argument, unchanged: intermediate
//! epochs inside a combine round are simply never published, and
//! maintenance is removal-only, so later commits can only make a
//! pinned reader under-serve, never lie. That is the paper's
//! Section 3.6 S-lock guarantee, recovered without the lock.
//!
//! # The read path
//!
//! Readers *pin* snapshots. [`EpochDb::pin`] hands out the published
//! `Arc<DbSnapshot>`; [`EpochDb::with_pin`] goes one step further and
//! serves from a **per-thread snapshot cache** revalidated by one
//! atomic load of the publish counter ([`LeftRight::version_hint`]),
//! so the steady-state read path performs *no* shared-memory write at
//! all — not even the `Arc` refcount bump, which at 8+ threads is a
//! single cache line every reader bounces through.
//!
//! In-flight readers keep their pinned snapshot alive through its
//! `Arc`; memory is reclaimed when the last pinned query (and any
//! thread-local cache entry) drops it.

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{
    AtomicBool, AtomicU64,
    Ordering::{Acquire, Release, SeqCst},
};
use std::sync::Arc;
use std::time::Instant;

use std::path::{Path, PathBuf};

use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use pmv_obs::{HistSnapshot, LatencyHistogram, ObsRegistry, Phase};
use pmv_query::{Database, DbSnapshot, QueryInstance};
use pmv_storage::DeltaBatch;
use pmv_sync::LeftRight;
use pmv_wal::{CheckpointMeta, Durability, ViewSpec};

use crate::concurrent::SharedPmv;
use crate::pipeline::QueryOutcome;
use crate::stats::{AtomicPmvStats, PmvStats};
use crate::{CoreError, Result};

use std::sync::atomic::Ordering::Relaxed;

/// Type-erased result a commit closure hands back through its slot.
type ErasedResult = Result<Box<dyn Any + Send>>;

/// One enqueued transaction awaiting a combiner.
struct CommitReq {
    /// The transaction body, type-erased: mutate the database, return
    /// the caller's output plus the delta batches produced.
    #[allow(clippy::type_complexity)]
    apply: Box<dyn FnOnce(&mut Database) -> Result<(Box<dyn Any + Send>, Vec<DeltaBatch>)> + Send>,
    /// Views this transaction wants maintained (deduped across the
    /// batch by the combiner).
    views: Vec<SharedPmv>,
    /// Where the combiner deposits the outcome.
    slot: Arc<CommitSlot>,
}

/// Completion slot for one commit request. `done` flips (`Release`)
/// only after `result` is filled, so a committer that observes
/// `done` (`Acquire`) can take the result without further ceremony.
#[derive(Default)]
struct CommitSlot {
    done: AtomicBool,
    result: Mutex<Option<ErasedResult>>,
}

impl CommitSlot {
    fn fill(&self, res: ErasedResult) {
        *self.result.lock() = Some(res);
        self.done.store(true, Release);
    }

    fn take<T: 'static>(&self) -> Result<T> {
        let res = self
            .result
            .lock()
            .take()
            .expect("commit slot marked done without a result");
        res.map(|out| {
            *out.downcast::<T>()
                .expect("group-commit result type mismatch")
        })
    }
}

/// Per-thread pinned-snapshot cache entry (see [`EpochDb::with_pin`]).
struct PinEntry {
    db: u64,
    version: usize,
    snap: Arc<DbSnapshot>,
    /// Cache hits accumulated thread-locally since the last publish to
    /// the shared counters. Flushed on the next miss (the rare path),
    /// so a steady-state hit still writes no shared cache line; hits in
    /// the tail after the final miss go unreported — acceptable for a
    /// rate statistic.
    hits: u64,
}

thread_local! {
    /// Cached pins, one per `EpochDb` this thread has queried. Held in
    /// a `Cell` (taken for the duration of each query) rather than a
    /// `RefCell` so a re-entrant query degrades to an uncached pin
    /// instead of a borrow panic.
    static PIN_CACHE: Cell<Vec<PinEntry>> = const { Cell::new(Vec::new()) };
}

/// Distinguishes `EpochDb` instances in the per-thread pin cache.
static NEXT_DB_ID: AtomicU64 = AtomicU64::new(0);

/// A database with an epoch-published snapshot for lock-free serving.
pub struct EpochDb {
    id: u64,
    db: RwLock<Database>,
    published: LeftRight<DbSnapshot>,
    /// Commit requests awaiting a combiner (module docs).
    queue: Mutex<Vec<CommitReq>>,
    /// Transactions committed / combine rounds run — the ratio is the
    /// achieved group-commit batch size.
    commits: AtomicU64,
    combines: AtomicU64,
    /// Set once the first epoch-path query is served; guards
    /// [`EpochDb::with_write`]'s no-maintenance republish.
    served: AtomicBool,
    /// Optional durability engine. When present, the combiner appends
    /// one fsynced WAL record per round *before* maintenance and
    /// publish — durable strictly precedes visible — and a WAL failure
    /// rolls the round's deltas back and publishes nothing.
    durability: Option<Arc<Durability>>,
    /// Durable mark: the last published snapshot paired with the
    /// highest LSN it reflects. Checkpoints serialize from this pair so
    /// the image and its "replay after me" LSN agree exactly; updated
    /// by the combiner (and `with_write`) after each publish.
    durable: Mutex<Option<(Arc<DbSnapshot>, u64)>>,
    /// Commit-pipeline observability: master-lock wait, combine drain,
    /// snapshot publish — and, in durable mode, the WAL/checkpoint/
    /// recovery phases too (the registry is shared with [`Durability`],
    /// so `wal_append`/`wal_fsync`/`ckpt_write`/`recovery_replay`
    /// surface through [`EpochDb::obs`] instead of staying orphaned in
    /// the engine).
    obs: Arc<ObsRegistry>,
    /// Group-commit efficacy counters (`commit_batches`,
    /// `commit_reqs_coalesced`, `maint_passes_saved`) — bumped once per
    /// combine round, off the serving path.
    pipeline: AtomicPmvStats,
    /// Requests drained per combine round (recorded as raw counts, not
    /// nanoseconds).
    batch_sizes: LatencyHistogram,
    /// Queue depth observed by each enqueuer right after pushing.
    queue_depths: LatencyHistogram,
    /// TLS pin-cache efficacy. Relaxed orderings throughout:
    /// "statistics, not synchronization" — flushed hit counts and miss
    /// tallies carry no happens-before obligation.
    pin_hits: AtomicU64,
    pin_misses: AtomicU64,
}

impl EpochDb {
    /// Wrap `db` and publish its current state as the first snapshot.
    /// Pure in-memory mode: no WAL, no checkpoints, zero durability
    /// overhead on the commit path.
    pub fn new(mut db: Database) -> Self {
        let snap = Arc::new(db.publish_snapshot());
        EpochDb {
            id: NEXT_DB_ID.fetch_add(1, SeqCst),
            db: RwLock::new(db),
            published: LeftRight::new(snap),
            queue: Mutex::new(Vec::new()),
            commits: AtomicU64::new(0),
            combines: AtomicU64::new(0),
            served: AtomicBool::new(false),
            durability: None,
            durable: Mutex::new(None),
            obs: Arc::new(ObsRegistry::new()),
            pipeline: AtomicPmvStats::new(),
            batch_sizes: LatencyHistogram::new(),
            queue_depths: LatencyHistogram::new(),
            pin_hits: AtomicU64::new(0),
            pin_misses: AtomicU64::new(0),
        }
    }

    /// Wrap a (typically just-recovered) `db` with a durability engine:
    /// every subsequent commit is WAL-logged and fsynced before it
    /// becomes visible. The durable mark starts at the engine's current
    /// durable LSN paired with the initial snapshot.
    pub fn with_durability(mut db: Database, durability: Arc<Durability>) -> Self {
        let snap = Arc::new(db.publish_snapshot());
        let lsn = durability.durable_lsn();
        // Adopt the engine's registry: the WAL/checkpoint/recovery
        // phases it records and the commit-pipeline phases recorded
        // here land in one place (satisfying the "metrics reports the
        // durable path" contract).
        let obs = Arc::clone(durability.obs());
        EpochDb {
            id: NEXT_DB_ID.fetch_add(1, SeqCst),
            db: RwLock::new(db),
            published: LeftRight::new(Arc::clone(&snap)),
            queue: Mutex::new(Vec::new()),
            commits: AtomicU64::new(0),
            combines: AtomicU64::new(0),
            served: AtomicBool::new(false),
            durability: Some(durability),
            durable: Mutex::new(Some((snap, lsn))),
            obs,
            pipeline: AtomicPmvStats::new(),
            batch_sizes: LatencyHistogram::new(),
            queue_depths: LatencyHistogram::new(),
            pin_hits: AtomicU64::new(0),
            pin_misses: AtomicU64::new(0),
        }
    }

    /// Open (or create) a durable database at `dir`: recover the newest
    /// valid checkpoint plus the WAL tail (see `pmv-wal`), and return
    /// the serving-ready [`EpochDb`] together with the recovered
    /// checkpoint metadata — the host re-registers views from
    /// `meta.views` (cold; their stores refill from queries, and
    /// revalidation can confirm consistency). Recovery progress is
    /// recorded into `obs` (`recovery_replay` phase; WAL/checkpoint
    /// phases accumulate there from then on).
    pub fn open_durable(dir: &Path, obs: Arc<ObsRegistry>) -> Result<(Self, CheckpointMeta)> {
        let recovered = Durability::open_with_obs(dir, obs)?;
        Ok((
            EpochDb::with_durability(recovered.db, Arc::new(recovered.durability)),
            recovered.meta,
        ))
    }

    /// Pin the current published snapshot: one wait-free load plus an
    /// `Arc` clone. The returned snapshot stays valid (and its memory
    /// alive) for as long as the caller holds it, no matter how many
    /// commits happen meanwhile.
    pub fn pin(&self) -> Arc<DbSnapshot> {
        self.published.load()
    }

    /// Run `f` against the current snapshot via the per-thread pin
    /// cache: one `Acquire` load of the publish counter revalidates the
    /// cached `Arc<DbSnapshot>`, and only an actual publish since the
    /// thread's last query forces a shared [`LeftRight::load`]. The
    /// steady-state read path therefore writes no shared cache line —
    /// the `Arc` refcount ping-pong that serializes [`EpochDb::pin`]
    /// across cores never happens.
    ///
    /// A thread's cache entry keeps its snapshot alive until that
    /// thread queries again (or exits); on a read-mostly serving tier
    /// that is exactly the pin lifetime readers already have.
    pub fn with_pin<R>(&self, f: impl FnOnce(&DbSnapshot) -> R) -> R {
        // One relaxed load; when off, the pin path is exactly as before.
        let track = self.obs.enabled();
        PIN_CACHE.with(|tls| {
            let mut cache = tls.take();
            // Hint is read BEFORE the load below: if a publish lands in
            // between, the cached entry is newer than its tag and just
            // revalidates once more than strictly needed — never the
            // other way around (a tag newer than the snapshot would
            // serve extra-stale reads without revalidating).
            let hint = self.published.version_hint();
            let idx = match cache.iter().position(|e| e.db == self.id) {
                Some(i) => {
                    if cache[i].version != hint {
                        cache[i].snap = self.published.load();
                        cache[i].version = hint;
                        if track {
                            // The miss is the rare path: publish the
                            // hits banked since the last one, so hits
                            // never write a shared cache line.
                            self.pin_misses.fetch_add(1, Relaxed);
                            self.pin_hits.fetch_add(cache[i].hits, Relaxed);
                            cache[i].hits = 0;
                        }
                    } else if track {
                        cache[i].hits += 1;
                    }
                    i
                }
                None => {
                    if track {
                        self.pin_misses.fetch_add(1, Relaxed);
                    }
                    cache.push(PinEntry {
                        db: self.id,
                        version: hint,
                        snap: self.published.load(),
                        hits: 0,
                    });
                    cache.len() - 1
                }
            };
            let out = f(&cache[idx].snap);
            tls.set(cache);
            out
        })
    }

    /// Shared read access to the live database, for locked-mode serving
    /// ([`SharedPmv::run`]) and inspection. Blocks commits while held.
    pub fn read(&self) -> RwLockReadGuard<'_, Database> {
        self.db.read()
    }

    /// Commit one transaction through the group-commit queue: `f`
    /// mutates the database and returns the delta batches it produced
    /// (e.g. from `pmv_query::Transaction::commit`); every view in
    /// `views` is maintained and a new snapshot published before the
    /// result returns — the maintain-before-publish protocol the epoch
    /// serving path's correctness rests on (module docs).
    ///
    /// Under concurrency the enqueue→combine protocol coalesces work:
    /// whichever committer wins the master write lock drains *all*
    /// queued transactions, maintains each distinct view once over the
    /// merged batches, and publishes a single snapshot for the group.
    /// An error from `f` fails only that transaction; a maintenance
    /// error aborts the round's publish and fails every transaction in
    /// it with [`CoreError::Commit`].
    pub fn commit<T: Send + 'static>(
        &self,
        views: &[&SharedPmv],
        f: impl FnOnce(&mut Database) -> Result<(T, Vec<DeltaBatch>)> + Send + 'static,
    ) -> Result<T> {
        let slot = Arc::new(CommitSlot::default());
        let track = self.obs.enabled();
        let depth = {
            let mut queue = self.queue.lock();
            queue.push(CommitReq {
                apply: Box::new(move |db| {
                    let (out, batches) = f(db)?;
                    Ok((Box::new(out) as Box<dyn Any + Send>, batches))
                }),
                views: views.iter().map(|&v| v.clone()).collect(),
                slot: Arc::clone(&slot),
            });
            queue.len()
        };
        if track {
            self.queue_depths.record_ns(depth as u64);
        }
        loop {
            // A combiner may have drained our request while we raced
            // for the lock; slots are filled before the lock releases,
            // so `done` observed here (or right after acquiring) means
            // the result is ready and the lock is untouched by us.
            if slot.done.load(Acquire) {
                return slot.take();
            }
            let t_wait = track.then(Instant::now);
            let mut guard = self.db.write();
            if let Some(t0) = t_wait {
                self.obs.record(Phase::lock_master_commit, t0.elapsed());
            }
            if slot.done.load(Acquire) {
                drop(guard);
                return slot.take();
            }
            // We are the combiner. Our own request is still queued
            // (fills happen under the lock we now hold), and combine
            // drains the entire queue — so this iteration completes it.
            self.combine(&mut guard);
            debug_assert!(
                slot.done.load(Acquire),
                "combiner drained the queue without completing its own request"
            );
        }
    }

    /// Drain and apply every queued commit request under the held write
    /// lock: apply each transaction, maintain each distinct view once
    /// over the merged delta batches, publish one snapshot, fill every
    /// slot. No-op on an empty queue.
    fn combine(&self, db: &mut Database) {
        let reqs: Vec<CommitReq> = std::mem::take(&mut *self.queue.lock());
        if reqs.is_empty() {
            return;
        }
        let track = self.obs.enabled();
        let t_drain = track.then(Instant::now);
        let batch = reqs.len() as u64;
        self.commits.fetch_add(batch, SeqCst);
        self.combines.fetch_add(1, SeqCst);
        if track {
            self.batch_sizes.record_ns(batch);
        }
        let mut applied: Vec<(Arc<CommitSlot>, Box<dyn Any + Send>)> =
            Vec::with_capacity(reqs.len());
        let mut batches: Vec<DeltaBatch> = Vec::new();
        let mut views: Vec<SharedPmv> = Vec::new();
        // View registrations across applied requests, before batch
        // dedup — `view_slots - views.len()` is the maintenance passes
        // the coalescing saved.
        let mut view_slots = 0u64;
        for req in reqs {
            match (req.apply)(db) {
                Ok((out, mut b)) => {
                    batches.append(&mut b);
                    view_slots += req.views.len() as u64;
                    for v in req.views {
                        if !views.iter().any(|w| w.same_view(&v)) {
                            views.push(v);
                        }
                    }
                    applied.push((req.slot, out));
                }
                // A failed transaction fails alone; the rest of the
                // round proceeds (its closure is responsible for its
                // own atomicity, as before).
                Err(e) => req.slot.fill(Err(e)),
            }
        }
        self.pipeline.add(&PmvStats {
            commit_batches: 1,
            commit_reqs_coalesced: batch - 1,
            maint_passes_saved: view_slots - views.len() as u64,
            ..Default::default()
        });
        // Durable-before-visible: one WAL record for the whole round,
        // fsynced before any maintenance or publish. On failure the
        // round's deltas are rolled back (exact inverses, in reverse
        // order), every transaction reports the error, and nothing
        // publishes — readers keep the last durable snapshot.
        if let Some(dur) = &self.durability {
            if !batches.iter().all(|b| b.is_empty()) {
                if let Err(e) = dur.append_commit(&batches) {
                    for batch in batches.iter().rev() {
                        for delta in batch.deltas().iter().rev() {
                            db.undo_delta_exact(batch.relation(), delta).expect(
                                "undo of a just-applied delta cannot fail: \
                                 inverses target the exact rows the round wrote",
                            );
                        }
                    }
                    for (slot, _) in applied {
                        slot.fill(Err(CoreError::Durability(format!(
                            "WAL append failed; round rolled back, not published: {e}"
                        ))));
                    }
                    if let Some(t0) = t_drain {
                        self.obs.record(Phase::commit_drain, t0.elapsed());
                    }
                    return;
                }
            }
        }
        let mut failure: Option<String> = None;
        for view in &views {
            if let Err(e) = view.maintain_all(db, &batches) {
                failure = Some(e.to_string());
                break;
            }
        }
        match failure {
            None => {
                let t_pub = track.then(Instant::now);
                let snap = Arc::new(db.publish_snapshot());
                self.published.publish(Arc::clone(&snap));
                if let Some(t0) = t_pub {
                    self.obs.record(Phase::snapshot_publish, t0.elapsed());
                }
                if let Some(dur) = &self.durability {
                    // Safe to read here: all appends happen under the
                    // write lock this combiner holds, so durable_lsn is
                    // exactly this round's last record.
                    *self.durable.lock() = Some((snap, dur.durable_lsn()));
                }
                for (slot, out) in applied {
                    slot.fill(Ok(out));
                }
            }
            Some(msg) => {
                // Maintenance failed: nothing publishes (readers keep
                // the last good snapshot) and every transaction in the
                // round reports the failure.
                for (slot, _) in applied {
                    slot.fill(Err(CoreError::Commit(format!(
                        "maintenance failed; coalesced snapshot not published: {msg}"
                    ))));
                }
            }
        }
        if let Some(t0) = t_drain {
            self.obs.record(Phase::commit_drain, t0.elapsed());
        }
    }

    /// Transactions committed and combine rounds run so far. The ratio
    /// `commits / combines` is the achieved group-commit batch size.
    pub fn commit_counts(&self) -> (u64, u64) {
        (self.commits.load(SeqCst), self.combines.load(SeqCst))
    }

    /// This database's observability registry: commit-pipeline phases
    /// (`lock_master_commit`, `commit_drain`, `snapshot_publish`), and
    /// in durable mode the WAL/checkpoint/recovery phases the
    /// [`Durability`] engine records into the same registry.
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.obs
    }

    /// Group-commit efficacy counters (`commit_batches`,
    /// `commit_reqs_coalesced`, `maint_passes_saved`; other fields
    /// zero).
    pub fn pipeline_stats(&self) -> PmvStats {
        self.pipeline.snapshot()
    }

    /// Requests-per-combine-round distribution (raw counts recorded on
    /// the nanosecond scale: `count()` is rounds, `mean()`'s nanosecond
    /// reading is the mean batch size).
    pub fn batch_size_hist(&self) -> HistSnapshot {
        self.batch_sizes.snapshot()
    }

    /// Queue depth seen by each enqueuer right after pushing (raw
    /// counts, same convention as [`EpochDb::batch_size_hist`]).
    pub fn queue_depth_hist(&self) -> HistSnapshot {
        self.queue_depths.snapshot()
    }

    /// TLS pin-cache `(hits, misses)` published so far. Hits are banked
    /// thread-locally and flushed on each miss, so the hit count trails
    /// reality by at most one thread's current streak.
    pub fn pin_cache_counts(&self) -> (u64, u64) {
        (self.pin_hits.load(Relaxed), self.pin_misses.load(Relaxed))
    }

    /// Incremental snapshot-publish accounting from the underlying
    /// database: publishes, relation entries re-captured (dirty) versus
    /// reused (pointer-shared) — the SnapCache reuse ratio.
    pub fn snap_stats(&self) -> pmv_query::SnapStats {
        self.db.read().snap_stats()
    }

    /// Pin-cache hit rate in `[0, 1]` (0 before any pin is published).
    pub fn pin_cache_hit_rate(&self) -> f64 {
        let (hits, misses) = self.pin_cache_counts();
        match hits + misses {
            0 => 0.0,
            n => hits as f64 / n as f64,
        }
    }

    /// Zero the pipeline series (bench warm-up resets): pipeline
    /// counters, batch/queue histograms, and pin-cache tallies.
    /// `commits`/`combines` and the durable mark are untouched.
    pub fn reset_pipeline_obs(&self) {
        self.pipeline.reset();
        self.batch_sizes.reset();
        self.queue_depths.reset();
        self.pin_hits.store(0, Relaxed);
        self.pin_misses.store(0, Relaxed);
    }

    /// Exclusive setup access (schema, bulk loads, index builds) with a
    /// snapshot republish on exit. Unlike [`EpochDb::commit`] this runs
    /// no maintenance — it is only sound before views start serving
    /// (debug-asserted): republishing after would pair a new database
    /// state with stale PMV shards, silently breaking the
    /// maintain-before-publish invariant. Once serving has begun, route
    /// every change through [`EpochDb::commit`].
    pub fn with_write<T>(&self, f: impl FnOnce(&mut Database) -> T) -> T {
        debug_assert!(
            !self.served.load(Acquire),
            "EpochDb::with_write after serving began: republishing without \
             maintenance pairs a new DB with stale PMV shards — route the \
             change through EpochDb::commit instead"
        );
        let mut guard = self.db.write();
        let out = f(&mut guard);
        let snap = Arc::new(guard.publish_snapshot());
        // pmv::allow(durable_before_visible): setup path — DDL and bulk
        // loads are checkpoint-durable, not WAL-logged (§16), and the
        // debug assertion above proves no reader is being served yet.
        self.published.publish(Arc::clone(&snap));
        if let Some(dur) = &self.durability {
            // Setup-path changes (DDL, bulk loads) are not WAL-logged —
            // the log carries DML deltas only — so they become durable
            // at the next checkpoint. Refresh the mark so that
            // checkpoint captures them; hosts checkpoint right after
            // setup (the CLI does) to close the window.
            *self.durable.lock() = Some((snap, dur.durable_lsn()));
        }
        out
    }

    /// Write a checkpoint from the current durable mark: the last
    /// published snapshot serialized together with the exact LSN it
    /// reflects, plus the caller's registered view specs. Runs off the
    /// write path — commits keep flowing while the image is written —
    /// then rotates the WAL and deletes segments behind the checkpoint.
    /// Returns the checkpoint file path, or an error when the database
    /// is in-memory (no durability engine attached).
    pub fn checkpoint(&self, views: Vec<ViewSpec>) -> Result<PathBuf> {
        let dur = self.durability.as_ref().ok_or_else(|| {
            CoreError::Durability("no data directory attached (in-memory mode)".to_string())
        })?;
        let (snap, lsn) = self
            .durable
            .lock()
            .clone()
            .expect("durable mark is initialized whenever durability is attached");
        use pmv_query::DataView;
        let meta = CheckpointMeta {
            lsn,
            epoch: snap.view_epoch(),
            analyzed: snap.stats_view().is_some(),
            views,
        };
        let path = dur.checkpoint(&snap, &meta)?;
        Ok(path)
    }

    /// The durability engine, when this database has one.
    pub fn durability(&self) -> Option<&Arc<Durability>> {
        self.durability.as_ref()
    }

    /// Highest LSN reflected in the published snapshot (`None` in
    /// in-memory mode).
    pub fn durable_lsn(&self) -> Option<u64> {
        self.durable.lock().as_ref().map(|(_, lsn)| *lsn)
    }

    /// Serve one query on the epoch path: revalidate this thread's
    /// cached pin (recorded as [`Phase::epoch_pin`] when observability
    /// is enabled) and run it through [`SharedPmv::run_pinned`]. Takes
    /// no lock — and in steady state writes no shared cache line —
    /// anywhere on the read path.
    pub fn query(&self, pmv: &SharedPmv, q: &QueryInstance) -> Result<QueryOutcome> {
        if !self.served.load(Acquire) {
            self.served.store(true, Release);
        }
        // One atomic load when no flight recorder is attached; otherwise
        // time the whole call so the anomaly check below sees end-to-end
        // latency including the pin revalidation.
        let t_flight = pmv.flight_attached().then(Instant::now);
        let out = if pmv.obs().enabled() {
            let t0 = Instant::now();
            self.with_pin(|snap| {
                pmv.obs().record(Phase::epoch_pin, t0.elapsed());
                pmv.run_pinned(snap, q)
            })
        } else {
            self.with_pin(|snap| pmv.run_pinned(snap, q))
        };
        // Anomaly check OUTSIDE the pin region: a flight dump locks the
        // trace ring and writes to the spool sink, neither of which may
        // happen while a snapshot is pinned (`lock_in_pin_region`).
        if let (Some(t0), Ok(outcome)) = (&t_flight, &out) {
            pmv.flight_check(outcome, t0.elapsed());
        }
        out
    }

    /// Epoch (database version) of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        use pmv_query::DataView;
        self.pin().view_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{PartialViewDef, PmvConfig};
    use pmv_cache::PolicyKind;
    use pmv_index::IndexDef;
    use pmv_query::{Condition, TemplateBuilder, Transaction};
    use pmv_storage::{tuple, Column, ColumnType, Schema, Value};

    fn setup() -> (EpochDb, SharedPmv) {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
        for i in 0..200i64 {
            db.insert("r", tuple![i, i % 10]).unwrap();
        }
        db.create_index(IndexDef::btree("r", vec![1])).unwrap();
        let t = TemplateBuilder::new("t")
            .relation(db.schema("r").unwrap())
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .build()
            .unwrap();
        let def = PartialViewDef::all_equality("epoch", t).unwrap();
        let pmv = SharedPmv::with_shards(def, PmvConfig::new(4, 16, PolicyKind::Clock), 4);
        (EpochDb::new(db), pmv)
    }

    #[test]
    fn pinned_queries_match_locked_queries() {
        let (edb, pmv) = setup();
        let t = pmv.def().template().clone();
        for round in 0..3 {
            for f in 0..10i64 {
                let q = t
                    .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                    .unwrap();
                let pinned = edb.query(&pmv, &q).unwrap();
                assert_eq!(pinned.ds_leftover, 0);
                let guard = edb.read();
                let locked = pmv.run(&guard, &q).unwrap();
                let mut a = pinned.all_results();
                let mut b = locked.all_results();
                a.sort();
                b.sort();
                assert_eq!(a, b, "round {round} f={f}");
            }
        }
        pmv.debug_validate();
        assert!(pmv.stats().bcp_hit_queries > 0, "epoch fills must serve");
        assert!(pmv.obs().snapshot(Phase::epoch_pin).count() >= 30);
        assert!(pmv.obs().snapshot(Phase::snapshot_swap).count() >= 1);
    }

    #[test]
    fn pinned_reader_survives_commits() {
        let (edb, pmv) = setup();
        let t = pmv.def().template().clone();
        let q = t
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        // Warm the cache, then pin BEFORE a delete commits. (The row to
        // delete is found before pinning: `lock_in_pin_region` bans
        // blocking acquisitions while a pin is live, even in tests.)
        let row = {
            let guard = edb.read();
            let handle = guard.relation("r").unwrap();
            let rel = handle.read();
            let row = rel
                .iter()
                .find(|(_, tu)| tu.get(1) == &Value::Int(3))
                .map(|(r, _)| r)
                .unwrap();
            row
        };
        edb.query(&pmv, &q).unwrap();
        let pinned = edb.pin();
        let before = edb.query(&pmv, &q).unwrap().all_results().len();
        edb.commit(&[&pmv], move |db| {
            let mut txn = Transaction::begin(db);
            txn.delete("r", row).unwrap();
            Ok(((), txn.commit()))
        })
        .unwrap();
        // The old pin still answers from the pre-delete state.
        let stale = pmv.run_pinned(&*pinned, &q).unwrap();
        assert_eq!(stale.all_results().len(), before);
        assert_eq!(stale.ds_leftover, 0);
        // A fresh pin sees the delete.
        let fresh = edb.query(&pmv, &q).unwrap();
        assert_eq!(fresh.all_results().len(), before - 1);
        assert_eq!(fresh.ds_leftover, 0);
        pmv.debug_validate();
    }

    #[test]
    fn epoch_advances_on_commit() {
        let (edb, pmv) = setup();
        let e0 = edb.epoch();
        edb.commit(&[&pmv], move |db| {
            let mut txn = Transaction::begin(db);
            txn.insert("r", tuple![900i64, 3i64]).unwrap();
            Ok(((), txn.commit()))
        })
        .unwrap();
        assert!(edb.epoch() > e0);
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pmv_epoch_durable").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_commit_survives_reopen() {
        let dir = tmp_dir("reopen");
        let obs = Arc::new(ObsRegistry::new());
        let (edb, meta) = EpochDb::open_durable(&dir, obs).unwrap();
        assert!(meta.views.is_empty());
        edb.with_write(|db| {
            db.create_relation(Schema::new(
                "r",
                vec![
                    Column::new("a", ColumnType::Int),
                    Column::new("f", ColumnType::Int),
                ],
            ))
            .unwrap();
            db.insert("r", tuple![1i64, 1i64]).unwrap();
        });
        // Setup-path changes become durable via checkpoint.
        edb.checkpoint(Vec::new()).unwrap();
        // A WAL-logged commit rides the tail past the checkpoint.
        edb.commit(&[], |db| {
            let mut txn = Transaction::begin(db);
            txn.insert("r", tuple![2i64, 2i64]).unwrap();
            Ok(((), txn.commit()))
        })
        .unwrap();
        assert_eq!(edb.durable_lsn(), Some(1));
        drop(edb);

        let obs = Arc::new(ObsRegistry::new());
        let (edb2, _) = EpochDb::open_durable(&dir, Arc::clone(&obs)).unwrap();
        let info = edb2.durability().unwrap().recovery_info().clone();
        assert!(info.checkpoint_found);
        assert_eq!(info.replayed_records, 1);
        assert_eq!(info.durable_lsn, 1);
        assert_eq!(edb2.read().relation("r").unwrap().read().len(), 2);
        assert!(obs.snapshot(Phase::recovery_replay).count() >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_failure_rolls_back_and_publishes_nothing() {
        use pmv_faultinject::{install, FaultKind, FaultPlan, Site};
        let dir = tmp_dir("wal_fail");
        let obs = Arc::new(ObsRegistry::new());
        let (edb, _) = EpochDb::open_durable(&dir, obs).unwrap();
        edb.with_write(|db| {
            db.create_relation(Schema::new("r", vec![Column::new("a", ColumnType::Int)]))
                .unwrap();
        });
        edb.checkpoint(Vec::new()).unwrap();
        let epoch_before = edb.epoch();

        let plan = Arc::new(FaultPlan::new(7).with_rule_at(Site::WalFsync, FaultKind::Io, 0));
        let guard = install(plan);
        let err = edb
            .commit(&[], |db| {
                let mut txn = Transaction::begin(db);
                txn.insert("r", tuple![10i64]).unwrap();
                Ok(((), txn.commit()))
            })
            .unwrap_err();
        drop(guard);
        assert!(matches!(err, CoreError::Durability(_)), "got {err}");
        // Rolled back: nothing published, nothing in the heap, and the
        // LSN was not consumed.
        assert_eq!(edb.epoch(), epoch_before);
        assert_eq!(edb.read().relation("r").unwrap().read().len(), 0);
        assert_eq!(edb.durability().unwrap().durable_lsn(), 0);

        // The engine keeps working after the fault clears.
        edb.commit(&[], |db| {
            let mut txn = Transaction::begin(db);
            txn.insert("r", tuple![11i64]).unwrap();
            Ok(((), txn.commit()))
        })
        .unwrap();
        assert_eq!(edb.durable_lsn(), Some(1));
        assert_eq!(edb.read().relation("r").unwrap().read().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_pin_never_writes_back_past_maintenance() {
        let (edb, pmv) = setup();
        let t = pmv.def().template().clone();
        let q = t
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        let row = {
            let guard = edb.read();
            let handle = guard.relation("r").unwrap();
            let rel = handle.read();
            let row = rel
                .iter()
                .find(|(_, tu)| tu.get(1) == &Value::Int(3))
                .map(|(r, _)| r)
                .unwrap();
            row
        };
        let pinned = edb.pin();
        // Maintenance completes at a later epoch…
        edb.commit(&[&pmv], move |db| {
            let mut txn = Transaction::begin(db);
            txn.delete("r", row).unwrap();
            Ok(((), txn.commit()))
        })
        .unwrap();
        // …so the stale pin's results (which still contain the deleted
        // row) must not be cached.
        let stale = pmv.run_pinned(&*pinned, &q).unwrap();
        assert_eq!(stale.ds_leftover, 0);
        assert_eq!(pmv.tuple_count(), 0, "stale fill must be gated off");
        // And the fresh pin's results may be.
        edb.query(&pmv, &q).unwrap();
        assert!(pmv.tuple_count() > 0);
        pmv.debug_validate();
    }
}
