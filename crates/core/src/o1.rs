//! Operation O1: break a query's `Cselect` into non-overlapping condition
//! parts (Section 3.3).
//!
//! For each condition `Ci` a set `S_i` is formed — the equality values, or
//! the fragments of basic intervals overlapped by the query's intervals —
//! and `Cselect` is broken into the cross product `∏ S_i`. Each resulting
//! condition part is either a basic condition part itself or is contained
//! in exactly one (its *containing* bcp), as in the paper's Figure 5 grid.

use pmv_query::{Condition, Interval, QueryInstance};
use pmv_storage::{Tuple, Value};

use crate::bcp::{BcpDim, BcpKey};
use crate::view::PartialViewDef;
use crate::{CoreError, Result};

/// One dimension of a condition part: the actual (possibly clipped)
/// constraint the query asks for in this dimension.
#[derive(Clone, Debug, PartialEq)]
pub enum PartDim {
    /// Equality constraint.
    Eq(Value),
    /// Interval constraint (a fragment of a basic interval).
    Iv(Interval),
}

impl PartDim {
    /// Whether `v` satisfies this dimension.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            PartDim::Eq(x) => v == x,
            PartDim::Iv(iv) => iv.contains(v),
        }
    }
}

/// A condition part: per-dimension constraints plus its containing bcp.
#[derive(Clone, Debug, PartialEq)]
pub struct ConditionPart {
    /// Per-condition constraints, in `Cselect` order.
    pub dims: Vec<PartDim>,
    /// The containing basic condition part.
    pub bcp: BcpKey,
    /// True iff this part *is* its containing bcp (every interval
    /// dimension covers its whole basic interval).
    pub is_basic: bool,
}

impl ConditionPart {
    /// Whether an `Ls'`-layout tuple falls inside this part (used by
    /// tests; Operation O2 checks the full `Cselect` instead, which is
    /// equivalent for entry tuples of the containing bcp).
    pub fn contains_tuple(&self, def: &PartialViewDef, tuple: &Tuple) -> bool {
        self.dims
            .iter()
            .enumerate()
            .all(|(i, d)| d.matches(tuple.get(def.template().cond_position(i))))
    }
}

/// Per-dimension element used during cross-product construction.
struct DimElement {
    part: PartDim,
    bcp: BcpDim,
    whole: bool,
}

/// Hard cap on generated condition parts; queries beyond this are
/// malformed for PMV purposes (the paper's h tops out at 10).
pub const MAX_CONDITION_PARTS: usize = 1 << 20;

/// Operation O1: decompose `q`'s `Cselect` into condition parts.
pub fn decompose(def: &PartialViewDef, q: &QueryInstance) -> Result<Vec<ConditionPart>> {
    def.check_instance(q)?;
    let m = q.conds().len();
    let mut per_dim: Vec<Vec<DimElement>> = Vec::with_capacity(m);
    for (i, cond) in q.conds().iter().enumerate() {
        let mut elems = Vec::new();
        match cond {
            Condition::Equality(values) => {
                for v in values {
                    elems.push(DimElement {
                        part: PartDim::Eq(v.clone()),
                        bcp: BcpDim::Eq(v.clone()),
                        whole: true,
                    });
                }
            }
            Condition::Intervals(intervals) => {
                let d = def
                    .discretizer(i)
                    .expect("interval-form condition has a discretizer (validated at definition)");
                for iv in intervals {
                    for id in d.overlapping_ids(iv) {
                        if let Some((frag, whole)) = d.fragment(id, iv) {
                            elems.push(DimElement {
                                part: PartDim::Iv(frag),
                                bcp: BcpDim::Iv(id),
                                whole,
                            });
                        }
                    }
                }
            }
        }
        if elems.is_empty() {
            // A condition with no satisfiable disjunct: the whole query is
            // empty, so there are no condition parts.
            return Ok(Vec::new());
        }
        per_dim.push(elems);
    }

    let total: usize = per_dim.iter().map(Vec::len).product();
    if total > MAX_CONDITION_PARTS {
        return Err(CoreError::Definition(format!(
            "query decomposes into {total} condition parts (cap {MAX_CONDITION_PARTS})"
        )));
    }

    // Cross product ∏ S_i.
    let mut parts = Vec::with_capacity(total);
    let mut cursor = vec![0usize; m];
    loop {
        let mut dims = Vec::with_capacity(m);
        let mut bcp_dims = Vec::with_capacity(m);
        let mut is_basic = true;
        for (i, &c) in cursor.iter().enumerate() {
            let e = &per_dim[i][c];
            dims.push(e.part.clone());
            bcp_dims.push(e.bcp.clone());
            is_basic &= e.whole;
        }
        parts.push(ConditionPart {
            dims,
            bcp: BcpKey::new(bcp_dims),
            is_basic,
        });
        // Odometer increment.
        let mut i = m;
        loop {
            if i == 0 {
                return Ok(parts);
            }
            i -= 1;
            cursor[i] += 1;
            if cursor[i] < per_dim[i].len() {
                break;
            }
            cursor[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcp::Discretizer;
    use pmv_query::{QueryTemplate, TemplateBuilder};
    use pmv_storage::{Column, ColumnType, Schema};
    use std::sync::Arc;

    fn template() -> Arc<QueryTemplate> {
        TemplateBuilder::new("t")
            .relation(Schema::new(
                "r",
                vec![
                    Column::new("a", ColumnType::Int),
                    Column::new("f", ColumnType::Int),
                    Column::new("g", ColumnType::Int),
                ],
            ))
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .cond_interval("r", "g")
            .unwrap()
            .build()
            .unwrap()
    }

    fn def() -> PartialViewDef {
        PartialViewDef::new(
            "v",
            template(),
            vec![None, Some(Discretizer::int_grid(0, 10, 4))], // dividers 0,10,20,30
        )
        .unwrap()
    }

    #[test]
    fn equality_times_interval_cross_product() {
        let d = def();
        let q = d
            .template()
            .bind(vec![
                Condition::Equality(vec![Value::Int(1), Value::Int(2)]),
                // (5, 25) overlaps basic intervals [0,10), [10,20), [20,30).
                Condition::Intervals(vec![Interval::open(5i64, 25i64)]),
            ])
            .unwrap();
        let parts = decompose(&d, &q).unwrap();
        assert_eq!(parts.len(), 2 * 3);
        // Exactly the middle fragment is a whole basic interval, so parts
        // with bcp dim Iv(2) ([10,20)) are basic.
        let basics: Vec<_> = parts.iter().filter(|p| p.is_basic).collect();
        assert_eq!(basics.len(), 2);
        for b in basics {
            assert_eq!(b.bcp.dims()[1], BcpDim::Iv(2));
        }
    }

    #[test]
    fn parts_are_pairwise_disjoint() {
        let d = def();
        let q = d
            .template()
            .bind(vec![
                Condition::Equality(vec![Value::Int(1), Value::Int(2)]),
                Condition::Intervals(vec![
                    Interval::open(5i64, 15i64),
                    Interval::open(22i64, 28i64),
                ]),
            ])
            .unwrap();
        let parts = decompose(&d, &q).unwrap();
        // Probe a grid of tuples; each must fall in at most one part.
        for f in 0..4i64 {
            for g in -5..40i64 {
                let tup = pmv_storage::tuple![0i64, f, g];
                let n = parts.iter().filter(|p| p.contains_tuple(&d, &tup)).count();
                assert!(n <= 1, "tuple (f={f}, g={g}) in {n} parts");
            }
        }
    }

    #[test]
    fn parts_cover_exactly_the_query() {
        let d = def();
        let q = d
            .template()
            .bind(vec![
                Condition::Equality(vec![Value::Int(1)]),
                Condition::Intervals(vec![Interval::closed(5i64, 25i64)]),
            ])
            .unwrap();
        let parts = decompose(&d, &q).unwrap();
        for g in -5..40i64 {
            let tup = pmv_storage::tuple![0i64, 1i64, g];
            let in_query = q.matches_select(&tup);
            let in_parts = parts.iter().any(|p| p.contains_tuple(&d, &tup));
            assert_eq!(in_query, in_parts, "coverage mismatch at g={g}");
        }
    }

    #[test]
    fn each_part_contained_in_its_bcp() {
        let d = def();
        let q = d
            .template()
            .bind(vec![
                Condition::Equality(vec![Value::Int(9)]),
                Condition::Intervals(vec![Interval::open(-3i64, 33i64)]),
            ])
            .unwrap();
        for p in decompose(&d, &q).unwrap() {
            for (i, dim) in p.dims.iter().enumerate() {
                match (&p.bcp.dims()[i], dim) {
                    (BcpDim::Eq(b), PartDim::Eq(v)) => assert_eq!(b, v),
                    (BcpDim::Iv(id), PartDim::Iv(frag)) => {
                        let basic = d.discretizer(i).unwrap().interval_of(*id);
                        // Fragment ⊆ basic interval: their intersection is
                        // the fragment itself.
                        assert_eq!(basic.intersect(frag), Some(frag.clone()));
                    }
                    other => panic!("mismatched dims {other:?}"),
                }
            }
        }
    }

    #[test]
    fn whole_basic_interval_marks_basic_part() {
        let d = def();
        let q = d
            .template()
            .bind(vec![
                Condition::Equality(vec![Value::Int(1)]),
                // Exactly [10, 20): one basic part.
                Condition::Intervals(vec![Interval::half_open(10i64, 20i64)]),
            ])
            .unwrap();
        let parts = decompose(&d, &q).unwrap();
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_basic);
        assert_eq!(parts[0].bcp.dims()[1], BcpDim::Iv(2));
    }

    #[test]
    fn two_query_intervals_can_share_one_bcp() {
        let d = def();
        let q = d
            .template()
            .bind(vec![
                Condition::Equality(vec![Value::Int(1)]),
                // Both inside basic interval [10, 20).
                Condition::Intervals(vec![
                    Interval::open(11i64, 13i64),
                    Interval::open(15i64, 17i64),
                ]),
            ])
            .unwrap();
        let parts = decompose(&d, &q).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].bcp, parts[1].bcp);
        assert!(!parts[0].is_basic && !parts[1].is_basic);
    }

    #[test]
    fn combination_factor_matches_part_count_for_basic_queries() {
        // When every disjunct is exactly one basic interval or equality
        // value, h = ∏ u_i (the paper's combination factor).
        let d = def();
        let q = d
            .template()
            .bind(vec![
                Condition::Equality(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
                Condition::Intervals(vec![
                    Interval::half_open(0i64, 10i64),
                    Interval::half_open(20i64, 30i64),
                ]),
            ])
            .unwrap();
        let parts = decompose(&d, &q).unwrap();
        assert_eq!(parts.len(), q.combination_factor());
        assert!(parts.iter().all(|p| p.is_basic));
    }
}
