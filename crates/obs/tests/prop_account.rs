//! Property tests for the per-template accounting table: N threads
//! recording a partitioned workload into one shared [`AccountTable`]
//! must produce exactly the table a serial oracle produces from the
//! same records — the merge/addition laws (relaxed counters, bucket-wise
//! histogram merge) make concurrent accounting lossless once writers
//! quiesce.

use pmv_obs::account::{AccountTable, O2Outcome, TemplateAccount};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// One accounting record, small enough to generate by the hundreds.
#[derive(Clone, Debug)]
struct Rec {
    template: u8,
    outcome: O2Outcome,
    ttfr_us: u64,
    full_us: u64,
    o3_rows: u64,
    maint_us: u64,
    maint_rows: u64,
}

fn rec_strategy() -> impl Strategy<Value = Rec> {
    (
        (0u8..4, 0u8..3),
        (1u64..50_000, 1u64..500_000, 0u64..10_000),
        (0u64..5_000, 0u64..1_000),
    )
        .prop_map(
            |((template, oc), (ttfr_us, full_us, o3_rows), (maint_us, maint_rows))| Rec {
                template,
                outcome: match oc {
                    0 => O2Outcome::Hit,
                    1 => O2Outcome::Partial,
                    _ => O2Outcome::Miss,
                },
                ttfr_us,
                full_us,
                o3_rows,
                maint_us,
                maint_rows,
            },
        )
}

fn apply(acct: &TemplateAccount, r: &Rec) {
    acct.record_query(
        r.outcome,
        Duration::from_micros(r.ttfr_us),
        Duration::from_micros(r.full_us),
        r.o3_rows,
    );
    if r.maint_us > 0 || r.maint_rows > 0 {
        acct.record_maintenance(Duration::from_micros(r.maint_us), r.maint_rows);
    }
}

fn template_name(id: u8) -> Arc<str> {
    Arc::from(format!("template_{id}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concurrent recording (4 threads, interleaved registration and
    /// recording, shared template ids) equals the serial oracle.
    #[test]
    fn concurrent_table_matches_serial_oracle(
        recs in prop_vec(rec_strategy(), 1..200),
    ) {
        // Serial oracle: one thread, one table, in order.
        let oracle = AccountTable::new();
        for r in &recs {
            apply(&oracle.register(&template_name(r.template)), r);
        }

        // Concurrent run: round-robin partition across 4 threads. Each
        // thread re-registers its templates (registration must be
        // idempotent under contention or statistics would split).
        let table = Arc::new(AccountTable::new());
        let mut handles = Vec::new();
        for t in 0..4usize {
            let table = Arc::clone(&table);
            let part: Vec<Rec> = recs
                .iter()
                .skip(t)
                .step_by(4)
                .cloned()
                .collect();
            handles.push(std::thread::spawn(move || {
                for r in &part {
                    apply(&table.register(&template_name(r.template)), r);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let got = table.snapshot_all();
        let want = oracle.snapshot_all();
        prop_assert_eq!(got.len(), want.len());
        for ((gn, gs), (wn, ws)) in got.iter().zip(want.iter()) {
            prop_assert_eq!(gn, wn);
            prop_assert_eq!(gs, ws, "template {}", gn);
        }
    }

    /// Per-thread private accounts merged via `AccountSnapshot::merge`
    /// equal one shared account fed everything (the fold law the bench
    /// relies on when aggregating worker-local accounts).
    #[test]
    fn merged_thread_snapshots_match_shared_account(
        recs in prop_vec(rec_strategy(), 1..200),
    ) {
        let shared = TemplateAccount::new();
        for r in &recs {
            apply(&shared, r);
        }

        let mut merged = pmv_obs::AccountSnapshot::default();
        for t in 0..4usize {
            let local = TemplateAccount::new();
            for r in recs.iter().skip(t).step_by(4) {
                apply(&local, r);
            }
            merged.merge(&local.snapshot());
        }
        prop_assert_eq!(merged, shared.snapshot());
    }
}
