//! Workspace function table and call graph over masked source text.
//!
//! This is the substrate for the interprocedural rules in
//! [`crate::rules_ipa`]: a hand-rolled (offline, no `syn`) item parser
//! that walks every `.rs` file under the scan roots, extracts `fn`
//! items and `impl` blocks from the masked text, attributes call sites
//! to their innermost enclosing function, and resolves them to
//! candidate definitions by name.
//!
//! ## Approximations (documented in DESIGN.md §17)
//!
//! - **No trait-object or generic dispatch.** A method call `x.m(…)`
//!   resolves only when exactly one function named `m` exists in the
//!   workspace; trait methods with several impls produce no edge.
//! - **Closures are attributed to the enclosing fn.** A call inside a
//!   closure body is an edge from the function that syntactically
//!   contains it (sound for the region rules: the guard/pin scopes that
//!   matter are lexical too).
//! - **`Drop` impls are invisible.** Nothing models the implicit call
//!   at scope exit (e.g. `TraceScope::drop` publishing into a mutexed
//!   ring); such paths are reviewed by hand and documented.
//! - **Function references are not edges.** Only `name(…)` call syntax
//!   is recognized; `iter.map(helper)` produces nothing.
//! - **Lock/pin method names are patterns, not calls.** `.read()`,
//!   `.write()`, `.lock()`, `.pin()` and their `try_` forms are what
//!   the rules *detect*; resolving them as calls would alias every
//!   `RwLock` acquisition to unrelated workspace functions.
//! - **Test code cannot be a callee of production code.** Candidates in
//!   test files (or below `#[cfg(test)]`) are dropped when the caller
//!   is production code, so lint corpus fixtures never pollute
//!   resolution of the real tree.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lint::{
    collect_rs_files, find_all, line_index, mask_comments_and_strings, prev_is_ident,
    DURABLE_CRATES,
};

/// One scanned file with its masked text and derived classifications.
pub struct FileIndex {
    /// Path as given by the scan (joined scan root + relative path).
    pub path: PathBuf,
    /// Original text (escape-hatch comments live here).
    pub source: String,
    /// Comment/string-masked text all offsets refer to.
    pub masked: String,
    /// Byte offset → 1-based line number.
    pub line_of: Vec<usize>,
    /// Offset of the first `#[cfg(test)]`, or `masked.len()`.
    pub test_start: usize,
    /// Whether the file lies under a `tests/`, `benches/` or
    /// `examples/` directory *relative to its scan root* — fixture
    /// trees scanned from their own root are production code.
    pub is_test_file: bool,
    /// Whether the file is production source of a durable crate
    /// (`crates/{core,storage,wal}/src`).
    pub in_durable_src: bool,
    /// Whether the file is the sanctioned `wal/src/dio.rs` funnel.
    pub is_dio: bool,
    /// Crate directory name (component after the last `crates/`), used
    /// for qualified-path resolution.
    pub crate_dir: Option<String>,
    /// File stem (`dio` for `dio.rs`), used for module-qualified calls.
    pub stem: String,
}

/// One `fn` item.
pub struct FnDef {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type name, when inside an impl block.
    pub impl_of: Option<String>,
    /// Byte offset of the `fn` keyword in the masked text.
    pub start: usize,
    /// Body span `(open_brace, close_brace)`; `None` for declarations
    /// (trait methods without default bodies).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Test code: below `#[cfg(test)]` or in a test file.
    pub is_test: bool,
}

/// One recognized call site, attributed to its enclosing function.
pub struct Call {
    /// Caller function id.
    pub caller: usize,
    /// File the call appears in (same as the caller's file).
    pub file: usize,
    /// Byte offset of the callee identifier in the masked text.
    pub offset: usize,
    /// Callee identifier.
    pub name: String,
    /// Resolved candidate definitions (empty when unresolvable).
    pub targets: Vec<usize>,
}

/// The parsed workspace: files, functions, and the resolved call graph.
pub struct Workspace {
    pub files: Vec<FileIndex>,
    pub fns: Vec<FnDef>,
    pub calls: Vec<Call>,
    /// fn id → call ids made from its body, in source order.
    pub fn_calls: Vec<Vec<usize>>,
}

/// Keywords, intrinsic attribute names, and common `std` method names
/// that must never resolve to workspace functions. The std entries are
/// the collision-prone prelude surface: a workspace `fn push` on a
/// mutex-guarded ring must not become the target of every `vec.push(…)`
/// in the tree.
const NEVER_CALLEES: &[&str] = &[
    // keywords and reserved words
    "if",
    "else",
    "while",
    "for",
    "loop",
    "match",
    "return",
    "let",
    "in",
    "as",
    "move",
    "ref",
    "mut",
    "impl",
    "pub",
    "use",
    "mod",
    "where",
    "unsafe",
    "async",
    "await",
    "dyn",
    "crate",
    "super",
    "self",
    "break",
    "continue",
    "const",
    "static",
    "struct",
    "enum",
    "trait",
    "type",
    "extern",
    "true",
    "false",
    "fn",
    // attribute vocabulary (attributes survive masking)
    "cfg",
    "derive",
    "inline",
    "allow",
    "deny",
    "warn",
    "expect",
    "cfg_attr",
    "test",
    "ignore",
    "doc",
    "must_use",
    "repr",
    "non_exhaustive",
    "track_caller",
    "cold",
    "feature",
    "clippy",
    "rustfmt",
    "path",
    "any",
    "all",
    "not",
    // lock/pin acquisition patterns — detected by rules, never edges
    "read",
    "write",
    "lock",
    "try_read",
    "try_write",
    "try_lock",
    "pin",
    "upgrade",
    "downgrade",
    // collision-prone std prelude methods
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "take",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "drain",
    "clear",
    "extend",
    "entry",
    "keys",
    "values",
    "sort",
    "sort_unstable",
    "sort_by",
    "retain",
    "dedup",
    "last",
    "first",
    "map",
    "filter",
    "fold",
    "for_each",
    "find",
    "position",
    "count",
    "rev",
    "zip",
    "chain",
    "skip",
    "peek",
    "next",
    "nth",
    "then",
    "clone",
    "drop",
    "default",
    "fmt",
    "from",
    "into",
    "to_string",
    "to_owned",
    "to_vec",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_bytes",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "and_then",
    "or_else",
    "flatten",
    "swap",
    "replace",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "deref",
    "deref_mut",
    "borrow",
    "borrow_mut",
    "join",
    "split",
    "starts_with",
    "ends_with",
    "contains",
    "contains_key",
    "trim",
    "parse",
    "min",
    "max",
    "abs",
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "compare_exchange",
    "send",
    "recv",
    "spawn",
    "sleep",
    "now",
    "elapsed",
    "with",
    "set",
    "new",
];

/// Upper bound on the candidate set a single call may fan out to;
/// anything wider is treated as unresolvable noise.
const MAX_TARGETS: usize = 8;

impl Workspace {
    /// Parse every `.rs` file under the scan roots (each a file or a
    /// directory) and resolve the call graph.
    pub fn scan(roots: &[PathBuf]) -> io::Result<Workspace> {
        let mut file_paths: Vec<(PathBuf, PathBuf)> = Vec::new(); // (root, path)
        for root in roots {
            if root.is_file() {
                file_paths.push((root.clone(), root.clone()));
            } else {
                let mut under = Vec::new();
                collect_rs_files(root, &mut under)?;
                for p in under {
                    file_paths.push((root.clone(), p));
                }
            }
        }
        file_paths.sort_by(|a, b| a.1.cmp(&b.1));
        file_paths.dedup_by(|a, b| a.1 == b.1);

        let mut ws = Workspace {
            files: Vec::new(),
            fns: Vec::new(),
            calls: Vec::new(),
            fn_calls: Vec::new(),
        };
        for (root, path) in file_paths {
            let source = fs::read_to_string(&path)?;
            ws.add_file(&root, &path, source);
        }
        ws.resolve();
        Ok(ws)
    }

    fn add_file(&mut self, root: &Path, path: &Path, source: String) {
        let masked = mask_comments_and_strings(&source);
        let line_of = line_index(&masked);
        let comps: Vec<String> = path
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        let rel: Vec<String> = path
            .strip_prefix(root)
            .map(|r| {
                r.components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect()
            })
            .unwrap_or_default();
        let is_test_file = rel
            .iter()
            .any(|c| c == "tests" || c == "benches" || c == "examples");
        let in_durable_src = comps
            .windows(3)
            .any(|w| w[0] == "crates" && DURABLE_CRATES.contains(&w[1].as_str()) && w[2] == "src");
        let is_dio = comps
            .windows(3)
            .any(|w| w[0] == "wal" && w[1] == "src" && w[2] == "dio.rs");
        let crate_dir = comps
            .windows(2)
            .rfind(|w| w[0] == "crates")
            .map(|w| w[1].clone());
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let test_start = masked.find("#[cfg(test)]").unwrap_or(masked.len());

        let file_id = self.files.len();
        let impls = parse_impls(&masked);
        let fn_base = self.fns.len();
        parse_fns(&masked, |start, name, body| {
            let impl_of = impls
                .iter()
                .filter(|(open, close, _)| (*open..=*close).contains(&start))
                .min_by_key(|(open, close, _)| close - open)
                .map(|(_, _, ty)| ty.clone());
            self.fns.push(FnDef {
                file: file_id,
                name: name.to_string(),
                impl_of,
                start,
                body,
                line: line_of[start.min(line_of.len().saturating_sub(1))],
                is_test: is_test_file || start >= test_start,
            });
        });
        self.fn_calls.resize(self.fns.len(), Vec::new());

        // Innermost-enclosing-fn lookup: bodies nest properly, so the
        // containing fn with the greatest body start is the innermost.
        let local: Vec<usize> = (fn_base..self.fns.len()).collect();
        let enclosing = |offset: usize| -> Option<usize> {
            local
                .iter()
                .copied()
                .filter(|&id| {
                    self.fns[id]
                        .body
                        .is_some_and(|(open, close)| (open..=close).contains(&offset))
                })
                .max_by_key(|&id| self.fns[id].body.unwrap().0)
        };
        for (offset, name) in extract_call_idents(&masked) {
            let Some(caller) = enclosing(offset) else {
                continue;
            };
            let call_id = self.calls.len();
            self.calls.push(Call {
                caller,
                file: file_id,
                offset,
                name,
                targets: Vec::new(),
            });
            self.fn_calls[caller].push(call_id);
        }

        self.files.push(FileIndex {
            path: path.to_path_buf(),
            source,
            masked,
            line_of,
            test_start,
            is_test_file,
            in_durable_src,
            is_dio,
            crate_dir,
            stem,
        });
    }

    /// Resolve every call site to candidate definitions.
    fn resolve(&mut self) {
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (id, f) in self.fns.iter().enumerate() {
            if f.body.is_some() {
                by_name.entry(&f.name).or_default().push(id);
            }
        }
        let mut resolved: Vec<Vec<usize>> = Vec::with_capacity(self.calls.len());
        for call in &self.calls {
            resolved.push(self.resolve_call(call, &by_name));
        }
        for (call, targets) in self.calls.iter_mut().zip(resolved) {
            call.targets = targets;
        }
    }

    fn resolve_call(&self, call: &Call, by_name: &HashMap<&str, Vec<usize>>) -> Vec<usize> {
        let Some(all) = by_name.get(call.name.as_str()) else {
            return Vec::new();
        };
        let caller = &self.fns[call.caller];
        // Production code cannot call test code; dropping test-file
        // candidates for production callers keeps corpus fixtures from
        // aliasing real definitions during whole-repo scans.
        let visible: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&id| caller.is_test || !self.fns[id].is_test)
            .collect();
        if visible.is_empty() {
            return Vec::new();
        }
        let masked = &self.files[call.file].masked;
        let bytes = masked.as_bytes();
        let before = &bytes[..call.offset];
        let qualifier = if before.ends_with(b"::") {
            let q_end = call.offset - 2;
            let mut q_start = q_end;
            while q_start > 0
                && (bytes[q_start - 1].is_ascii_alphanumeric() || bytes[q_start - 1] == b'_')
            {
                q_start -= 1;
            }
            (q_start < q_end).then(|| masked[q_start..q_end].to_string())
        } else {
            None
        };
        let dotted = before.last() == Some(&b'.');

        let cap = |v: Vec<usize>| if v.len() > MAX_TARGETS { Vec::new() } else { v };
        if let Some(mut q) = qualifier {
            if q == "Self" {
                match &caller.impl_of {
                    Some(ty) => q = ty.clone(),
                    None => return Vec::new(),
                }
            }
            // `Type::name` — impl match first, then module-file match
            // (`dio::write_all` → wal/src/dio.rs), then crate match
            // (`pmv_faultinject::fire_soft` → crates/faultinject).
            let by_impl: Vec<usize> = visible
                .iter()
                .copied()
                .filter(|&id| self.fns[id].impl_of.as_deref() == Some(q.as_str()))
                .collect();
            if !by_impl.is_empty() {
                return cap(by_impl);
            }
            let by_stem: Vec<usize> = visible
                .iter()
                .copied()
                .filter(|&id| self.files[self.fns[id].file].stem == q)
                .collect();
            if !by_stem.is_empty() {
                return cap(by_stem);
            }
            let crate_name = q.strip_prefix("pmv_").unwrap_or(&q).replace('_', "-");
            let by_crate: Vec<usize> = visible
                .iter()
                .copied()
                .filter(|&id| {
                    self.fns[id].impl_of.is_none()
                        && self.files[self.fns[id].file]
                            .crate_dir
                            .as_deref()
                            .is_some_and(|c| c == crate_name || c == q)
                })
                .collect();
            if !by_crate.is_empty() {
                return cap(by_crate);
            }
            return if visible.len() == 1 {
                visible
            } else {
                Vec::new()
            };
        }
        if dotted || before.ends_with(b">::") {
            // Method call (or qualified path we cannot read): resolve
            // only on a workspace-unique name.
            return if visible.len() == 1 {
                visible
            } else {
                Vec::new()
            };
        }
        // Free call: same file, then same crate, then any free fn.
        let free: Vec<usize> = visible
            .iter()
            .copied()
            .filter(|&id| self.fns[id].impl_of.is_none())
            .collect();
        let pool = if free.is_empty() { &visible } else { &free };
        let same_file: Vec<usize> = pool
            .iter()
            .copied()
            .filter(|&id| self.fns[id].file == call.file)
            .collect();
        if !same_file.is_empty() {
            return cap(same_file);
        }
        let caller_crate = self.files[caller.file].crate_dir.as_deref();
        let same_crate: Vec<usize> = pool
            .iter()
            .copied()
            .filter(|&id| self.files[self.fns[id].file].crate_dir.as_deref() == caller_crate)
            .collect();
        if !same_crate.is_empty() {
            return cap(same_crate);
        }
        if free.is_empty() && visible.len() > 1 {
            return Vec::new();
        }
        cap(pool.clone())
    }

    /// 1-based line of a byte offset in a file.
    pub fn line_at(&self, file: usize, offset: usize) -> usize {
        let lo = &self.files[file].line_of;
        lo.get(offset).copied().unwrap_or(lo.len().max(1))
    }

    /// Display name for a function (`Type::name` or `name`).
    pub fn fn_name(&self, id: usize) -> String {
        let f = &self.fns[id];
        match &f.impl_of {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    }
}

/// Byte offset of the `}` matching the `{` at `open` (or text end).
pub(crate) fn brace_match(masked: &str, open: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0i64;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Parse `impl [Trait for] Type` blocks: `(body_open, body_close,
/// type_name)`.
fn parse_impls(masked: &str) -> Vec<(usize, usize, String)> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for pos in find_all(masked, "impl") {
        if prev_is_ident(bytes, pos) {
            continue;
        }
        let after = pos + 4;
        if after >= bytes.len() || !(bytes[after] == b' ' || bytes[after] == b'<') {
            continue;
        }
        // Type-position `impl` (`-> impl Iterator`, `x: impl Fn()`,
        // `+ impl …`) is not an item: item impls follow `;`, `}`, `{`,
        // an attribute `]`, or nothing.
        let prev = masked[..pos].trim_end().as_bytes().last().copied();
        if matches!(
            prev,
            Some(b'>' | b'+' | b'(' | b',' | b':' | b'&' | b'=' | b'<' | b'|')
        ) {
            continue;
        }
        // Scan to the opening `{` at angle-depth 0 (skipping `->`). A
        // paren outside generics means this is a bound like `impl
        // Fn(u32)`, not an item header.
        let mut i = after;
        let mut angle = 0i64;
        let mut open = None;
        while i < bytes.len() && i < pos + 600 {
            match bytes[i] {
                b'<' => angle += 1,
                b'>' if i > 0 && bytes[i - 1] != b'-' => angle -= 1,
                b'(' | b')' if angle == 0 => break,
                b'{' if angle == 0 => {
                    open = Some(i);
                    break;
                }
                b';' if angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        let Some(open) = open else { continue };
        let header = &masked[after..open];
        let ty_part = match header.rfind(" for ") {
            Some(p) => &header[p + 5..],
            None => {
                // Skip the generic parameter list, if any.
                let mut h = header;
                if h.trim_start().starts_with('<') {
                    let lt = h.find('<').unwrap();
                    let mut depth = 0i64;
                    let mut end = h.len();
                    for (j, b) in h.bytes().enumerate().skip(lt) {
                        match b {
                            b'<' => depth += 1,
                            b'>' => {
                                depth -= 1;
                                if depth == 0 {
                                    end = j + 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    h = &h[end..];
                }
                h
            }
        };
        let Some(name) = last_path_segment(ty_part) else {
            continue;
        };
        out.push((open, brace_match(masked, open), name));
    }
    out
}

/// Final identifier of a (possibly referenced / generic) type path:
/// `&'a mut foo::Bar<T>` → `Bar`.
fn last_path_segment(ty: &str) -> Option<String> {
    let ty = ty.trim();
    let mut best = None;
    let bytes = ty.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            break;
        }
        if (bytes[i].is_ascii_alphabetic() || bytes[i] == b'_') && !prev_is_ident(bytes, i) {
            let mut j = i;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            let word = &ty[i..j];
            if !matches!(word, "mut" | "dyn" | "for") {
                best = Some(word.to_string());
            }
            i = j;
        } else {
            i += 1;
        }
    }
    best
}

/// Parse `fn` items, invoking `sink(start, name, body_span)` for each.
fn parse_fns(masked: &str, mut sink: impl FnMut(usize, &str, Option<(usize, usize)>)) {
    let bytes = masked.as_bytes();
    for pos in find_all(masked, "fn ") {
        if prev_is_ident(bytes, pos) {
            continue;
        }
        let mut i = pos + 3;
        while i < bytes.len() && bytes[i] == b' ' {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        if i == name_start {
            continue; // `fn` in a type position (`fn(` pointer), etc.
        }
        let name = &masked[name_start..i];
        // Signature scan: the body `{` (or declaration `;`) at
        // paren/angle/bracket depth 0. `->` is skipped so return-type
        // arrows do not unbalance the angle count.
        let mut paren = 0i64;
        let mut angle = 0i64;
        let mut bracket = 0i64;
        let mut body = None;
        let mut found = false;
        while i < bytes.len() && i < name_start + 4000 {
            match bytes[i] {
                b'(' => paren += 1,
                b')' => paren -= 1,
                b'[' => bracket += 1,
                b']' => bracket -= 1,
                b'<' => angle += 1,
                b'>' if bytes[i - 1] != b'-' => angle -= 1,
                b'{' if paren == 0 && bracket == 0 && angle <= 0 => {
                    body = Some((i, brace_match(masked, i)));
                    found = true;
                }
                b';' if paren == 0 && bracket == 0 => {
                    found = true;
                }
                _ => {}
            }
            if found {
                break;
            }
            i += 1;
        }
        if found {
            sink(pos, name, body);
        }
    }
}

/// Yield `(offset, name)` for every identifier immediately followed by
/// `(` that plausibly names a workspace function call.
fn extract_call_idents(masked: &str) -> Vec<(usize, String)> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') || prev_is_ident(bytes, i) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'(' {
            continue;
        }
        let name = &masked[start..i];
        if name.len() <= 2
            || name.as_bytes()[0].is_ascii_uppercase()
            || NEVER_CALLEES.contains(&name)
        {
            continue;
        }
        // A definition, not a call: `fn name(`.
        if masked[..start].trim_end().ends_with("fn") {
            continue;
        }
        // A macro: `name!(` never reaches here (the `!` breaks the
        // ident+paren adjacency), but `name !(` with a space would —
        // rustfmt never emits that, so no special case is needed.
        out.push((start, name.to_string()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_from(src: &str) -> Workspace {
        let mut ws = Workspace {
            files: Vec::new(),
            fns: Vec::new(),
            calls: Vec::new(),
            fn_calls: Vec::new(),
        };
        ws.add_file(Path::new("root"), Path::new("root/a.rs"), src.to_string());
        ws.resolve();
        ws
    }

    #[test]
    fn parses_fns_impls_and_resolves_free_calls() {
        let src = r#"
struct T;
impl T {
    fn method(&self) {
        helper(1);
    }
}
fn helper(x: u32) -> u32 { x }
fn decl_only();
"#;
        let ws = ws_from(src);
        let names: Vec<&str> = ws.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["method", "helper", "decl_only"]);
        assert_eq!(ws.fns[0].impl_of.as_deref(), Some("T"));
        assert!(ws.fns[2].body.is_none());
        let call = &ws.calls[0];
        assert_eq!(call.name, "helper");
        assert_eq!(ws.fn_calls[0], vec![0]);
        assert_eq!(call.targets, vec![1]);
    }

    #[test]
    fn qualified_and_method_resolution() {
        let src = r#"
struct A;
struct B;
impl A { fn make() -> A { A } fn only_here(&self) {} }
impl B { fn make() -> B { B } }
fn use_them(a: &A) {
    let x = A::make();
    let y = B::make();
    a.only_here();
    a.make_unknowable();
}
"#;
        let ws = ws_from(src);
        let by_name = |n: &str| {
            ws.calls
                .iter()
                .find(|c| c.name == n)
                .unwrap()
                .targets
                .clone()
        };
        let a_make = ws.fns.iter().position(|f| f.name == "make").unwrap();
        assert_eq!(by_name("make"), vec![a_make], "A::make resolves by impl");
        let only = ws.fns.iter().position(|f| f.name == "only_here").unwrap();
        assert_eq!(by_name("only_here"), vec![only], "unique method resolves");
        assert!(by_name("make_unknowable").is_empty());
    }

    #[test]
    fn lock_patterns_and_std_methods_are_not_edges() {
        let src = r#"
fn trap(&self) { self.inner.lock(); }
fn caller(v: &mut Vec<u32>, m: &M) {
    v.push(1);
    m.read();
}
"#;
        let ws = ws_from(src);
        assert!(ws.calls.is_empty(), "{:?}", ws.calls.len());
    }

    #[test]
    fn closures_attribute_to_enclosing_fn() {
        let src = r#"
fn outer() {
    let c = move || inner_call();
    c();
}
fn inner_call() {}
"#;
        let ws = ws_from(src);
        assert_eq!(ws.calls.len(), 1);
        assert_eq!(ws.fns[ws.calls[0].caller].name, "outer");
    }
}
