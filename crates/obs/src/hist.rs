//! Lock-free log-bucketed latency histograms.
//!
//! The paper's headline numbers are latency *distributions* — partial
//! results "within ~1 ms" (Section 5) — so cumulative counters are not
//! enough: the serving path needs p50/p90/p99/max per phase without
//! taking a lock per query. [`LatencyHistogram`] is an HDR-lite design:
//!
//! * Values are recorded in **nanoseconds** into one of [`BUCKETS`]
//!   log-spaced buckets with 3 sub-bucket bits, so every bucket's width
//!   is ≤ 1/8 of its lower bound — quantile estimates carry at most
//!   ~12.5% relative error, far below run-to-run noise.
//! * Each bucket is a plain `AtomicU64` bumped with one relaxed
//!   `fetch_add`. All atomics in this module are statistics, not
//!   synchronization: no reader derives a happens-before edge from them,
//!   a snapshot taken while writers are active may mix adjacent updates,
//!   and totals are exact once writers quiesce (the same contract as
//!   `pmv_core::stats::AtomicPmvStats`).
//! * [`HistSnapshot`] is the plain (non-atomic) image: mergeable by
//!   bucket-wise addition — which is exactly associative and commutative,
//!   so per-shard or per-thread histograms fold into one — with
//!   nearest-rank quantiles read off the bucket upper bounds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: 8 exact buckets for values 0..8 ns, then 8
/// sub-buckets per power of two up to `u64::MAX` (61 octaves × 8).
pub const BUCKETS: usize = 496;

/// Bucket index for a nanosecond value. Total order preserving: larger
/// values never map to smaller indices.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns < 8 {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros() as usize; // ≥ 3
    let exp = msb - 3;
    let sub = ((ns >> exp) & 7) as usize;
    exp * 8 + 8 + sub
}

/// Inclusive `[lo, hi]` nanosecond range covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i < 8 {
        return (i as u64, i as u64);
    }
    let exp = (i - 8) / 8;
    let sub = ((i - 8) % 8) as u64;
    let lo = (8 + sub) << exp;
    let hi = lo + ((1u64 << exp) - 1); // grouped: lo + 2^exp overflows in the top bucket
    (lo, hi)
}

/// A concurrent latency histogram. Recording is wait-free (two relaxed
/// `fetch_add`s and a `fetch_max`); reading takes a [`HistSnapshot`].
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one raw nanosecond value (tests and oracles).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Point-in-time plain copy. A snapshot taken while writers are
    /// active may mix adjacent updates (see module docs).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    /// Zero every bucket (e.g. after a warm-up phase or a completed
    /// revalidation sweep for `[transient]`-tagged histograms).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Plain, mergeable image of a [`LatencyHistogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: [u64; BUCKETS],
    sum_ns: u64,
    max_ns: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot::empty()
    }
}

impl HistSnapshot {
    /// The zero histogram (merge identity).
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of recorded values, in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest recorded value, exactly.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Mean of recorded values ([`Duration::ZERO`] when empty).
    pub fn mean(&self) -> Duration {
        match self.sum_ns.checked_div(self.count()) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }

    /// Nearest-rank quantile estimate for `q ∈ [0, 1]`: the upper bound
    /// of the bucket holding the ⌈q·count⌉-th smallest value (capped at
    /// the exact max), hence within one bucket (≤ ~12.5% relative) of
    /// the true order statistic. Returns [`Duration::ZERO`] when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let (_, hi) = bucket_bounds(i);
                return Duration::from_nanos(hi.min(self.max_ns));
            }
        }
        self.max()
    }

    /// Fold another snapshot into this one: bucket-wise addition, which
    /// is exactly associative and commutative (same result as recording
    /// the union of values into one histogram).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Bucket counts (diagnostics/tests).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_is_monotone_and_self_consistent() {
        // Every bucket's bounds invert its own index, and boundaries are
        // seamless: hi(i) + 1 == lo(i + 1).
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi of bucket {i}");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_bounds(i + 1).0, hi.wrapping_add(1));
            }
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(7), 7);
        assert_eq!(bucket_of(8), 8);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_bounded_by_one_eighth() {
        for ns in [8u64, 100, 1_000, 123_456, 10u64.pow(9), u64::MAX / 2] {
            let (lo, hi) = bucket_bounds(bucket_of(ns));
            assert!((hi - lo) as f64 <= lo as f64 / 8.0 + 1.0, "ns={ns}");
        }
    }

    #[test]
    fn quantiles_mean_max_on_known_data() {
        let h = LatencyHistogram::new();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.max(), Duration::from_micros(100));
        // Exact p50 is 50 µs; the estimate is within one bucket.
        let p50 = s.quantile(0.5).as_nanos() as f64;
        assert!((43_000.0..=57_000.0).contains(&p50), "p50={p50}");
        let mean = s.mean().as_nanos();
        assert_eq!(mean, 50_500);
        // p100 equals the exact max (capped).
        assert_eq!(s.quantile(1.0), Duration::from_micros(100));
        assert_eq!(s.quantile(0.0), s.quantile(1e-9));
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = HistSnapshot::empty();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), Duration::ZERO);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
    }

    #[test]
    fn merge_matches_union_recording() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let u = LatencyHistogram::new();
        for v in [3u64, 900, 42_000, 7_000_000] {
            a.record_ns(v);
            u.record_ns(v);
        }
        for v in [1u64, 900, 1_000_000_000] {
            b.record_ns(v);
            u.record_ns(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, u.snapshot());
    }

    #[test]
    fn concurrent_records_sum_exactly() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    h.record_ns(t * 1_000 + i);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 8_000);
    }
}
