// IPA corpus: the commit round publishes the group-commit snapshot with
// no WAL append anywhere in the function — visibility without
// durability.

struct Fx;

impl Fx {
    fn commit_round(&self) {
        let snap = self.db.snapshot();
        self.published.publish(snap);
    }
}
