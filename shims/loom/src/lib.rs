//! Offline shim exposing the subset of the `loom` API the workspace's
//! concurrency models use: [`model`], `loom::thread::{spawn, yield_now}`
//! and `loom::sync::{Arc, Mutex, RwLock, atomic}`.
//!
//! The real loom is a permutation-exploring model checker (DPOR). This
//! shim is **not** — it is a randomized-interleaving stress scheduler:
//! [`model`] runs the body many times, and every [`thread::yield_now`]
//! call site perturbs the schedule with a deterministic per-iteration
//! xorshift sequence (plain yields, short spins, and occasional
//! micro-sleeps). That explores far fewer interleavings than DPOR but
//! keeps the model tests compiling and probing real schedules offline;
//! CI can swap in the real crate by replacing this path dependency.
//!
//! The sync types re-export `std::sync` directly — loom mirrors the std
//! API for the subset used here (`lock().unwrap()`, `read()`/`write()`,
//! `Ordering`-parameterised atomics), so models written against this
//! shim stay source-compatible with the real crate.

use std::cell::Cell;

/// Number of randomized schedules [`model`] runs the body under.
pub const DEFAULT_ITERATIONS: usize = 64;

thread_local! {
    static SCHED_STATE: Cell<u64> = const { Cell::new(0) };
}

/// Run `f` under [`DEFAULT_ITERATIONS`] randomized schedules.
///
/// Each iteration seeds the scheduler differently, so `yield_now` call
/// sites perturb thread interleavings in a different (but
/// reproducible) pattern every pass. Panics propagate, failing the
/// enclosing test — the same contract as the real `loom::model`.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iterations = std::env::var("LOOM_MAX_PREEMPTIONS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|p| p.max(1) * 16)
        .unwrap_or(DEFAULT_ITERATIONS);
    for iter in 0..iterations {
        SCHED_STATE.with(|s| s.set(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(iter as u64 + 1)));
        f();
    }
}

fn next_rand() -> u64 {
    SCHED_STATE.with(|s| {
        // xorshift64*; state 0 (spawned threads never seeded) stays a
        // plain-yield schedule.
        let mut x = s.get();
        if x == 0 {
            x = 0x853c_49e6_748f_ea9b;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    })
}

/// Thread handling with schedule perturbation.
pub mod thread {
    pub use std::thread::JoinHandle;

    /// Spawn an OS thread (loom spawns a modelled thread).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(f)
    }

    /// Schedule perturbation point: plain yield, short spin, or a
    /// micro-sleep, chosen by the per-iteration xorshift stream.
    pub fn yield_now() {
        match super::next_rand() % 8 {
            0..=4 => std::thread::yield_now(),
            5 | 6 => std::hint::spin_loop(),
            _ => std::thread::sleep(std::time::Duration::from_micros(super::next_rand() % 50)),
        }
    }
}

/// Synchronization primitives (std re-exports; see crate docs).
pub mod sync {
    pub use std::sync::{
        Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };

    /// Atomics (std re-exports — loom mirrors the std API).
    pub mod atomic {
        pub use std::sync::atomic::{
            AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_body_repeatedly() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        super::model(|| {
            RUNS.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(RUNS.load(Ordering::SeqCst), super::DEFAULT_ITERATIONS);
    }

    #[test]
    fn spawned_threads_join_with_yields() {
        super::model(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    super::thread::spawn(move || {
                        super::thread::yield_now();
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 3);
        });
    }
}
