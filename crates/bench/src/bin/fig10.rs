//! Figure 10 — query execution time vs. overhead of our techniques,
//! "database scale factor" experiment.
//!
//! h = 4 and F = 3 fixed; the scale factor s swept. The paper sweeps
//! s ∈ {0.5, 1, 1.5, 2} (`--paper`); the default sweep is 10× smaller so
//! it runs on a laptop in minutes.
//!
//! Paper's reading (log-scale y): execution time grows with s while the
//! PMV overhead stays flat and sits **more than five orders of magnitude
//! below** it — the PMV examines result tuples in memory, not the data
//! set.
//!
//! Two ratios are printed. `ratio mem` divides our *measured, fully
//! in-memory* execution time by the overhead — it understates the paper's
//! gap because the paper's PostgreSQL executor was disk-bound (512 MB
//! RAM, 8 MB buffer pool, up to 1.8 GB of data) while its PMV probes were
//! in-memory. `ratio disk` therefore applies the paper-style I/O model:
//! every executor operation (index probe / tuple fetch) is charged a
//! 10 ms random I/O at a 90% buffer-miss rate, which is what a cold
//! 1000-page buffer pool over this data implies. That modeled execution
//! time reproduces the paper's ≥ 5-orders-of-magnitude gap.

use pmv_bench::tpcr_harness::{arg_flag, arg_value, build_db, measure_cell, CellConfig, Template};
use pmv_bench::ExperimentReport;

fn main() {
    let scales: Vec<f64> = if arg_flag("--paper") {
        vec![0.5, 1.0, 1.5, 2.0]
    } else if arg_flag("--quick") {
        vec![0.01, 0.02]
    } else {
        vec![0.05, 0.1, 0.15, 0.2]
    };
    let runs: usize = arg_value("--runs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if arg_flag("--quick") { 5 } else { 20 });

    let mut report = ExperimentReport::new(
        "figure10",
        "Query execution time vs PMV overhead (seconds); h=4, F=3",
        "s",
    );
    for &scale in &scales {
        eprintln!("building TPC-R database at s={scale}…");
        let db = build_db(scale, 0xc0ffee);
        let mut values = Vec::new();
        for (template, name) in [(Template::T1, "T1"), (Template::T2, "T2")] {
            let cell = CellConfig {
                template,
                e: 2,
                f_disjuncts: 2,
                g: 1,
                f_cap: 3,
                entries: 20_000,
                runs,
                seed: 23,
            };
            let s = measure_cell(&db, &cell);
            let exec = s.exec.as_secs_f64();
            let overhead = s.overhead.as_secs_f64();
            // Paper-style disk model: 90% buffer misses at 10 ms each.
            let disk_exec = s.exec_ops * 0.9 * 0.010;
            values.push((format!("execute {name}"), exec));
            values.push((format!("exec-disk {name}"), disk_exec));
            values.push((format!("PMV {name}"), overhead));
            values.push((
                format!("ratio mem {name}"),
                if overhead > 0.0 {
                    exec / overhead
                } else {
                    f64::NAN
                },
            ));
            values.push((
                format!("ratio disk {name}"),
                if overhead > 0.0 {
                    disk_exec / overhead
                } else {
                    f64::NAN
                },
            ));
            eprintln!(
                "s={scale} {name}: exec={exec:.3e}s disk-modeled={disk_exec:.3e}s \
                 overhead={overhead:.3e}s mem-ratio={:.0} disk-ratio={:.1e}",
                exec / overhead,
                disk_exec / overhead
            );
        }
        report.push(format!("{scale}"), values);
    }
    report.print();
}
