//! Integration tests for the pmv-lint pass: public-API behaviour plus
//! the PR's acceptance criterion that the repository itself is clean
//! with zero allow-list entries.

use std::path::Path;

use pmv_analysis::lint::{lint_source, lint_tree, Level, LintReport, RULES};

fn lint_str(src: &str) -> LintReport {
    let mut report = LintReport::default();
    lint_source(Path::new("snippet.rs"), src, &mut report);
    report
}

/// The repo's own `crates/` tree must lint clean — real violations get
/// fixed, not allow-listed (ISSUE 3 acceptance criterion).
#[test]
fn repo_is_clean_with_zero_allow_entries() {
    let crates_dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates/ parent");
    let report = lint_tree(crates_dir).expect("lint_tree over crates/");
    assert!(report.files_scanned > 50, "expected to scan the whole tree");
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.findings.is_empty(),
        "repo has lint findings:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.allows_used.is_empty(),
        "repo must carry zero pmv::allow entries, found {:?}",
        report.allows_used
    );
}

#[test]
fn all_shipped_rules_have_distinct_names() {
    let mut names: Vec<&str> = RULES.iter().map(|(n, _)| *n).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), RULES.len());
}

#[test]
fn deny_warnings_promotes_warning_findings() {
    let report = lint_str("fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].level, Level::Warning);
    assert!(!report.failed(false), "warning alone must not fail");
    assert!(report.failed(true), "warning must fail under deny-warnings");
}

#[test]
fn error_findings_fail_without_deny_warnings() {
    let report = lint_str(
        r#"
fn bad(db: &Database) {
    let mut store = self.shards[si].write();
    let (rows, _) = execute(db, &q).unwrap();
}
"#,
    );
    assert!(report.failed(false));
}

#[test]
fn the_real_revalidate_shape_passes() {
    // The two-phase shape `SharedPmv::revalidate` was refactored into:
    // snapshot keys under a read guard, run the executor guard-free,
    // then re-acquire the write guard for removal.
    let report = lint_str(
        r#"
fn revalidate(&self, db: &Database) {
    let keys: Vec<BcpKey> = {
        let store = shard.read();
        store.keys().cloned().collect()
    };
    let truths = bcp_truths(db, &inner.def, &keys).unwrap();
    let mut store = shard.write();
    for (bcp, mut budget) in truths {
        remove_stale(&mut store, &bcp, &mut budget);
    }
}
"#,
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn the_pre_refactor_revalidate_shape_is_flagged() {
    // The shape this PR removed: shard write guard held across the
    // executor-driven ground-truth reads.
    let report = lint_str(
        r#"
fn revalidate(&self, db: &Database) {
    let mut store = shard.write();
    let truths = bcp_truths(db, &inner.def, &keys).unwrap();
    let (rows, _) = execute(db, &q).unwrap();
    for (bcp, mut budget) in truths {
        remove_stale(&mut store, &bcp, &mut budget);
    }
}
"#,
    );
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "write_guard_across_exec"));
}

#[test]
fn upquery_refill_counts_as_executor_work() {
    // A targeted upquery is a keyed executor run: refilling a drained
    // bcp while holding the shard write guard is the same hazard as a
    // full `execute` under the guard.
    let report = lint_str(
        r#"
fn refill_under_guard(&self, view: &DataView, qi: &QueryInstance) {
    let mut store = shard.write();
    let (rows, _) = upquery_fill(view, qi, budget).unwrap();
    for t in rows {
        store.push_arc(&bcp, t);
    }
}
"#,
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "write_guard_across_exec"),
        "{:?}",
        report.findings
    );
}
