//! Property tests for the durability layer.
//!
//! 1. **Codec totality**: arbitrary delta batches — any value mix
//!    including NaN/±∞ doubles and unicode strings — round-trip through
//!    the WAL payload codec bit-exactly.
//! 2. **Committed-prefix recovery**: a real WAL built through
//!    [`Durability`], then *prefix-truncated at an arbitrary byte* or
//!    *corrupted at an arbitrary byte*, recovers to exactly the
//!    in-memory oracle at the surviving record count — never a torn
//!    record applied, never a trusted record dropped — and keeps
//!    accepting commits afterwards.

use std::path::PathBuf;

use pmv_storage::{Column, ColumnType, Delta, DeltaBatch, RowId, Schema, Tuple, Value};
use pmv_wal::{codec, record, CheckpointMeta, Durability};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        3 => any::<i64>().prop_map(Value::Int),
        2 => any::<f64>().prop_map(Value::Double),
        1 => Just(Value::Double(f64::NAN)),
        3 => "[a-zA-Z0-9_ ]{0,10}".prop_map(Value::str),
    ]
}

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(value_strategy(), 0..4).prop_map(Tuple::new)
}

fn delta_strategy() -> impl Strategy<Value = Delta> {
    prop_oneof![
        2 => (any::<u32>(), tuple_strategy()).prop_map(|(r, t)| Delta::Insert {
            row: RowId(r),
            tuple: t,
        }),
        1 => (any::<u32>(), tuple_strategy()).prop_map(|(r, t)| Delta::Delete {
            row: RowId(r),
            tuple: t,
        }),
        1 => (any::<u32>(), tuple_strategy(), tuple_strategy()).prop_map(|(r, old, new)| {
            Delta::Update {
                row: RowId(r),
                old,
                new,
            }
        }),
    ]
}

fn batch_strategy() -> impl Strategy<Value = DeltaBatch> {
    (
        "[a-z]{1,8}",
        proptest::collection::vec(delta_strategy(), 0..6),
    )
        .prop_map(|(relation, deltas)| {
            let mut b = DeltaBatch::new(relation);
            for d in deltas {
                b.push(d);
            }
            b
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn codec_roundtrips_arbitrary_batches(
        batches in proptest::collection::vec(batch_strategy(), 0..5)
    ) {
        let bytes = codec::encode_batches(&batches);
        let back = codec::decode_batches(&bytes).unwrap();
        prop_assert_eq!(back, batches);
    }

    #[test]
    fn record_stream_scan_recovers_exact_prefix(
        payload_sizes in proptest::collection::vec(0usize..64, 1..8),
        cut_frac in 0.0f64..1.0,
    ) {
        // Build a contiguous record stream, then cut it at an arbitrary
        // byte: scan must return exactly the records that fit wholly
        // before the cut.
        let mut bytes = Vec::new();
        let mut ends = Vec::new();
        for (i, sz) in payload_sizes.iter().enumerate() {
            let payload = vec![i as u8; *sz];
            bytes.extend_from_slice(&record::encode(i as u64 + 1, &payload));
            ends.push(bytes.len());
        }
        let cut = ((bytes.len() as f64) * cut_frac.abs().min(1.0)) as usize;
        let scan = record::scan(&bytes[..cut]);
        let expect = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(scan.records.len(), expect);
        prop_assert_eq!(scan.clean_len as usize, if expect == 0 { 0 } else { ends[expect - 1] });
        for (i, rec) in scan.records.iter().enumerate() {
            prop_assert_eq!(rec.lsn, i as u64 + 1);
            prop_assert_eq!(rec.payload.len(), payload_sizes[i]);
        }
    }
}

/// The end-to-end oracle harness: run `n_commits` single-insert commits
/// through a real `Durability`, damage the log with `damage`, reopen,
/// and assert the recovered database equals the oracle at exactly the
/// surviving record count (which `expected_survivors` computes from the
/// record layout).
fn run_damage_case(
    name: &str,
    n_commits: usize,
    damage: impl FnOnce(&mut Vec<u8>, &[usize]) -> usize,
) {
    let dir: PathBuf = std::env::temp_dir().join("pmv_prop_wal").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    let rec = Durability::open(&dir).unwrap();
    let mut db = rec.db;
    db.create_relation(Schema::new("t", vec![Column::new("v", ColumnType::Int)]))
        .unwrap();
    let snap = db.snapshot();
    rec.durability
        .checkpoint(
            &snap,
            &CheckpointMeta {
                lsn: 0,
                epoch: snap.epoch(),
                analyzed: false,
                views: Vec::new(),
            },
        )
        .unwrap();

    // `states[k]` = sorted heap content after k commits.
    let mut states: Vec<Vec<(u32, i64)>> = vec![Vec::new()];
    for i in 0..n_commits {
        let mut b = DeltaBatch::new("t");
        let delta = Delta::Insert {
            row: RowId(i as u32),
            tuple: Tuple::new(vec![Value::Int(i as i64 * 7)]),
        };
        b.push(delta.clone());
        rec.durability.append_commit(&[b]).unwrap();
        db.apply_delta_exact("t", &delta).unwrap();
        let mut s = states.last().unwrap().clone();
        s.push((i as u32, i as i64 * 7));
        states.push(s);
    }
    drop(rec.durability);

    // Locate the (single) active segment and damage it.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "log"))
        .unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    let scan = record::scan(&bytes);
    assert_eq!(scan.records.len(), n_commits);
    let mut ends = Vec::new();
    let mut off = 0usize;
    for r in &scan.records {
        off += 16 + r.payload.len();
        ends.push(off);
    }
    let expected = damage(&mut bytes, &ends);
    std::fs::write(&seg, &bytes).unwrap();

    let rec2 = Durability::open(&dir).unwrap();
    let info = rec2.durability.recovery_info();
    assert_eq!(
        info.durable_lsn as usize, expected,
        "{name}: wrong surviving prefix"
    );
    let handle = rec2.db.relation("t").unwrap();
    let rel = pmv_storage::relation_snapshot(&handle);
    let mut got: Vec<(u32, i64)> = rel
        .iter()
        .map(|(row, t)| match t.get(0) {
            Value::Int(v) => (row.0, *v),
            other => panic!("unexpected value {other:?}"),
        })
        .collect();
    got.sort_by_key(|(r, _)| *r);
    assert_eq!(got, states[expected], "{name}: heap != oracle prefix");

    // Recovery leaves a writable log.
    let mut b = DeltaBatch::new("t");
    b.push(Delta::Insert {
        row: RowId(1000),
        tuple: Tuple::new(vec![Value::Int(-1)]),
    });
    assert_eq!(
        rec2.durability.append_commit(&[b]).unwrap(),
        expected as u64 + 1
    );
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncated_log_recovers_committed_prefix(
        n in 1usize..12,
        frac in 0.0f64..1.0,
    ) {
        run_damage_case(&format!("trunc_{n}_{}", (frac * 1e6) as u64), n, |bytes, ends| {
            let cut = ((bytes.len() as f64) * frac) as usize;
            bytes.truncate(cut);
            ends.iter().filter(|&&e| e <= cut).count()
        });
    }

    #[test]
    fn corrupted_log_recovers_committed_prefix(
        n in 1usize..12,
        pos_frac in 0.0f64..1.0,
        mask in 1u8..255,
    ) {
        run_damage_case(
            &format!("corrupt_{n}_{}_{mask}", (pos_frac * 1e6) as u64),
            n,
            |bytes, ends| {
                let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
                bytes[pos] ^= mask;
                // Records wholly before the corrupted byte survive; the
                // record containing it — and everything after — do not.
                ends.iter().filter(|&&e| e <= pos).count()
            },
        );
    }
}
