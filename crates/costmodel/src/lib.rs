//! Analytical model of MV vs. PMV maintenance cost (Section 4.3).
//!
//! The paper evaluates maintenance overhead with an analytical model (of
//! the style validated on NCR Teradata in \[24\]; details in the full
//! version \[25\]): a single transaction `T` inserts `p·|ΔR|` tuples into
//! base relation `R` and deletes `(1-p)·|ΔR|` tuples from it, with
//! `|ΔR| = 1000`. The cost metric is **TW**, total work in I/Os. The
//! base-relation updates themselves cost the same under both methods and
//! are omitted; only view maintenance is compared.
//!
//! Mechanisms encoded (all straight from Sections 3.4 and 4.3):
//!
//! * **MV, insert**: must join the new tuple against the other base
//!   relation (index descent + data fetches) and insert the `k` resulting
//!   view rows (plus view-index updates).
//! * **MV, delete**: same join, then delete the `k` view rows — costlier
//!   per row than insertion ("inserting a tuple into V_M is less
//!   expensive than deleting a tuple from V_M", e.g. extra index probes
//!   to locate the victim rows and more random writes).
//! * **PMV, insert**: free. "There is no need to maintain V_PM in the
//!   presence of insertion into base relation R."
//! * **PMV, delete**: mainly cheap in-memory operations — the PMV is
//!   small and memory-resident, and the join can usually be avoided via
//!   light indices on V_PM attributes (\[25\]); the tiny I/O charge models
//!   the occasional miss.
//!
//! With the default parameters the model lands where the paper's figures
//! do: TW_MV ≈ 10⁴ I/Os and TW_PMV ≈ 10² I/Os at p = 0 (≥ 2 orders of
//! magnitude apart), both decreasing in p, the speedup ratio increasing
//! in p, and PMV maintenance exactly 0 at p = 100 % (unplottable on the
//! paper's log axis, as it notes).

/// Model parameters.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Transaction size `|ΔR|` (paper: 1000).
    pub delta_size: u64,
    /// View rows affected per ΔR tuple (join fan-out `k`; the TPC-R
    /// orders→lineitem fan-out is 4).
    pub join_fanout: f64,
    /// I/Os to join one ΔR tuple with the other base relations (index
    /// descent + matching data pages).
    pub join_io: f64,
    /// I/Os to insert one row into the MV (row write + index updates,
    /// partially amortized).
    pub mv_insert_io_per_row: f64,
    /// I/Os to delete one row from the MV (locate + remove + index
    /// updates; costlier than insert).
    pub mv_delete_io_per_row: f64,
    /// Per-delete PMV cost in I/O-equivalents (in-memory index checks on
    /// the mostly-cached PMV; ≪ 1).
    pub pmv_delete_io: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            delta_size: 1_000,
            join_fanout: 4.0,
            join_io: 2.0,
            mv_insert_io_per_row: 1.0,
            mv_delete_io_per_row: 2.0,
            pmv_delete_io: 0.1,
        }
    }
}

/// One evaluated point of the model.
#[derive(Clone, Copy, Debug)]
pub struct CostPoint {
    /// Insert fraction `p` in `[0, 1]`.
    pub p: f64,
    /// Total MV maintenance work for transaction T, in I/Os.
    pub mv_tw: f64,
    /// Total PMV maintenance work, in I/Os.
    pub pmv_tw: f64,
    /// Speedup `mv_tw / pmv_tw`; `None` when PMV work is exactly 0
    /// (p = 100 %), where the ratio is unbounded.
    pub speedup: Option<f64>,
}

impl CostParams {
    pub(crate) fn check_p(p: f64) {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    }

    /// MV maintenance cost for transaction T at insert fraction `p`.
    pub fn mv_tw(&self, p: f64) -> f64 {
        Self::check_p(p);
        let n = self.delta_size as f64;
        let per_insert = self.join_io + self.join_fanout * self.mv_insert_io_per_row;
        let per_delete = self.join_io + self.join_fanout * self.mv_delete_io_per_row;
        n * (p * per_insert + (1.0 - p) * per_delete)
    }

    /// PMV maintenance cost for transaction T at insert fraction `p`.
    /// Inserts are free; deletes are cheap in-memory checks.
    pub fn pmv_tw(&self, p: f64) -> f64 {
        Self::check_p(p);
        let n = self.delta_size as f64;
        n * (1.0 - p) * self.pmv_delete_io
    }

    /// Evaluate one point.
    pub fn point(&self, p: f64) -> CostPoint {
        let mv = self.mv_tw(p);
        let pmv = self.pmv_tw(p);
        CostPoint {
            p,
            mv_tw: mv,
            pmv_tw: pmv,
            speedup: if pmv > 0.0 { Some(mv / pmv) } else { None },
        }
    }

    /// Sweep `p` over `0..=steps` evenly spaced points in `[0, 1]`
    /// (Figures 11 and 12 use 0 %..100 % in 20 % / 10 % gridlines).
    pub fn sweep(&self, steps: usize) -> Vec<CostPoint> {
        assert!(steps >= 1);
        (0..=steps)
            .map(|i| self.point(i as f64 / steps as f64))
            .collect()
    }
}

/// Multi-relation extension of the model. The paper notes "the above
/// two-relation model can be easily extended to handle a (partial) MV
/// defined on multiple base relations" (Section 4.3); this does so: a
/// ΔR tuple must join against each of the other `n-1` relations in turn
/// (one index descent + fetch per hop), and the number of affected view
/// rows is the product of the per-hop fan-outs.
#[derive(Clone, Debug)]
pub struct MultiRelationCost {
    /// Per-hop fan-outs along the join path from the changed relation
    /// (e.g. `[4.0]` for orders→lineitem, `[4.0, 1.0]` when customer is
    /// added). Length = number of other relations.
    pub fanouts: Vec<f64>,
    /// Base two-relation parameters reused for per-unit costs.
    pub base: CostParams,
}

impl MultiRelationCost {
    /// Model for a view over `1 + fanouts.len()` relations.
    pub fn new(base: CostParams, fanouts: Vec<f64>) -> Self {
        assert!(!fanouts.is_empty(), "need at least one join hop");
        MultiRelationCost { fanouts, base }
    }

    /// Affected view rows per ΔR tuple: the product of fan-outs.
    pub fn rows_per_delta(&self) -> f64 {
        self.fanouts.iter().product()
    }

    /// I/Os to join one ΔR tuple across all hops. Each hop must fetch
    /// every intermediate row produced so far.
    pub fn join_io_per_delta(&self) -> f64 {
        let mut io = 0.0;
        let mut width = 1.0;
        for &f in &self.fanouts {
            io += width * self.base.join_io;
            width *= f;
        }
        io
    }

    /// MV maintenance cost for transaction T at insert fraction `p`.
    pub fn mv_tw(&self, p: f64) -> f64 {
        CostParams::check_p(p);
        let n = self.base.delta_size as f64;
        let rows = self.rows_per_delta();
        let join = self.join_io_per_delta();
        let per_insert = join + rows * self.base.mv_insert_io_per_row;
        let per_delete = join + rows * self.base.mv_delete_io_per_row;
        n * (p * per_insert + (1.0 - p) * per_delete)
    }

    /// PMV maintenance cost — unchanged by the relation count: inserts
    /// are free and deletes are filter-index checks.
    pub fn pmv_tw(&self, p: f64) -> f64 {
        self.base.pmv_tw(p)
    }

    /// Evaluate one point.
    pub fn point(&self, p: f64) -> CostPoint {
        let mv = self.mv_tw(p);
        let pmv = self.pmv_tw(p);
        CostPoint {
            p,
            mv_tw: mv,
            pmv_tw: pmv,
            speedup: if pmv > 0.0 { Some(mv / pmv) } else { None },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_magnitudes_at_p_zero() {
        let m = CostParams::default();
        let pt = m.point(0.0);
        // Figure 11: MV ≈ 10^4, PMV in 10..100 at p = 0.
        assert!((5_000.0..=20_000.0).contains(&pt.mv_tw), "{}", pt.mv_tw);
        assert!((10.0..=200.0).contains(&pt.pmv_tw), "{}", pt.pmv_tw);
        // "At least two orders of magnitude cheaper."
        assert!(pt.speedup.unwrap() >= 100.0);
    }

    #[test]
    fn both_costs_decrease_with_p() {
        let m = CostParams::default();
        let pts = m.sweep(10);
        for w in pts.windows(2) {
            assert!(w[1].mv_tw < w[0].mv_tw, "MV TW must fall as p rises");
            assert!(w[1].pmv_tw <= w[0].pmv_tw, "PMV TW must fall as p rises");
        }
    }

    #[test]
    fn speedup_increases_with_p_and_diverges() {
        let m = CostParams::default();
        let pts = m.sweep(10);
        let finite: Vec<f64> = pts.iter().filter_map(|p| p.speedup).collect();
        for w in finite.windows(2) {
            assert!(w[1] > w[0], "speedup must increase with p");
        }
        // p = 100%: PMV cost is exactly 0, ratio unbounded.
        assert_eq!(pts.last().unwrap().pmv_tw, 0.0);
        assert!(pts.last().unwrap().speedup.is_none());
    }

    #[test]
    fn mv_insert_cheaper_than_delete() {
        let m = CostParams::default();
        // Implied by the model only when the per-row delete cost exceeds
        // the per-row insert cost, which the defaults assert.
        assert!(m.mv_delete_io_per_row > m.mv_insert_io_per_row);
        assert!(m.mv_tw(1.0) < m.mv_tw(0.0));
    }

    #[test]
    fn figure12_range_near_p90() {
        // Paper's Figure 12 tops out in the hundreds near p = 100 %.
        let m = CostParams::default();
        let s90 = m.point(0.9).speedup.unwrap();
        assert!((300.0..=1_000.0).contains(&s90), "{s90}");
    }

    #[test]
    fn sweep_covers_unit_interval() {
        let pts = CostParams::default().sweep(5);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0].p, 0.0);
        assert_eq!(pts[5].p, 1.0);
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn p_out_of_range_panics() {
        CostParams::default().mv_tw(1.5);
    }

    #[test]
    fn multi_relation_reduces_to_base_for_one_hop() {
        let base = CostParams::default();
        let m = MultiRelationCost::new(base, vec![base.join_fanout]);
        for p in [0.0, 0.3, 0.7, 1.0] {
            assert!((m.mv_tw(p) - base.mv_tw(p)).abs() < 1e-9, "p={p}");
            assert_eq!(m.pmv_tw(p), base.pmv_tw(p));
        }
    }

    #[test]
    fn more_relations_cost_the_mv_more_but_not_the_pmv() {
        let base = CostParams::default();
        let two = MultiRelationCost::new(base, vec![4.0]);
        let three = MultiRelationCost::new(base, vec![4.0, 1.0]);
        let wide = MultiRelationCost::new(base, vec![4.0, 3.0]);
        assert!(three.mv_tw(0.5) > two.mv_tw(0.5));
        assert!(wide.mv_tw(0.5) > three.mv_tw(0.5));
        assert_eq!(two.pmv_tw(0.5), wide.pmv_tw(0.5));
        // Speedup grows with the relation count at fixed p.
        assert!(wide.point(0.5).speedup.unwrap() > two.point(0.5).speedup.unwrap());
    }

    #[test]
    fn fanout_products() {
        let m = MultiRelationCost::new(CostParams::default(), vec![4.0, 3.0, 2.0]);
        assert_eq!(m.rows_per_delta(), 24.0);
        // join io: 1·2 + 4·2 + 12·2 = 34.
        assert!((m.join_io_per_delta() - 34.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_with_delta_size() {
        let small = CostParams {
            delta_size: 100,
            ..Default::default()
        };
        let big = CostParams {
            delta_size: 1_000,
            ..Default::default()
        };
        assert!((big.mv_tw(0.3) / small.mv_tw(0.3) - 10.0).abs() < 1e-9);
    }
}
