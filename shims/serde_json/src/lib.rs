//! Offline shim of the `serde_json` *value* API: [`Value`], [`Map`],
//! [`Number`], a recursive-descent parser ([`from_str`] / [`from_reader`])
//! and a writer ([`to_string`] / [`to_writer`]). There is no serde trait
//! plumbing — callers build and inspect `Value` trees by hand, which is
//! all this workspace needs for snapshots and benchmark reports.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};

/// Parse / serialize error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Shim `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// A JSON number: integer or finite double.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Signed 64-bit integer.
    Int(i64),
    /// Unsigned 64-bit integer too large for `i64`.
    UInt(u64),
    /// Finite IEEE-754 double.
    Float(f64),
}

impl Number {
    /// A float number, or `None` for NaN / infinities (like upstream).
    pub fn from_f64(v: f64) -> Option<Number> {
        if v.is_finite() {
            Some(Number::Float(v))
        } else {
            None
        }
    }

    /// The value as `f64` (always possible).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match *self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        })
    }

    /// The value as `i64` if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::UInt(u) => i64::try_from(u).ok(),
            Number::Float(_) => None,
        }
    }

    /// The value as `u64` if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(i) => u64::try_from(i).ok(),
            Number::UInt(u) => Some(u),
            Number::Float(_) => None,
        }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number::Int(v)
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        if let Ok(i) = i64::try_from(v) {
            Number::Int(i)
        } else {
            Number::UInt(v)
        }
    }
}

impl From<usize> for Number {
    fn from(v: usize) -> Self {
        Number::from(v as u64)
    }
}

impl From<u32> for Number {
    fn from(v: u32) -> Self {
        Number::Int(v as i64)
    }
}

impl From<i32> for Number {
    fn from(v: i32) -> Self {
        Number::Int(v as i64)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(v) => {
                // Match serde_json: integral floats keep a ".0" suffix so
                // the round trip stays a float.
                if v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// Insertion-order-insensitive string-keyed object map.
///
/// Upstream uses insertion order by default; sorted order is also valid
/// JSON and keeps the shim simple and deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// Empty map.
    pub fn new() -> Self {
        Map {
            inner: BTreeMap::new(),
        }
    }

    /// Insert, returning the previous value for the key if any.
    ///
    /// Takes `String` (not `impl Into<String>`) so call sites written
    /// against upstream, like `map.insert("k".into(), v)`, infer the
    /// key type.
    pub fn insert(&mut self, k: String, v: Value) -> Option<Value> {
        self.inner.insert(k, v)
    }

    /// Borrow the value at `k`.
    pub fn get(&self, k: &str) -> Option<&Value> {
        self.inner.get(k)
    }

    /// Whether `k` is present.
    pub fn contains_key(&self, k: &str) -> bool {
        self.inner.contains_key(k)
    }

    /// Remove and return the value at `k`.
    pub fn remove(&mut self, k: &str) -> Option<Value> {
        self.inner.remove(k)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.inner.keys()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// number
    Number(Number),
    /// string
    String(String),
    /// array
    Array(Vec<Value>),
    /// object
    Object(Map<String, Value>),
}

impl Value {
    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Numeric payload as i64, if an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Numeric payload as u64, if an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow `self[key]` if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `v["k"]` — yields `Null` for missing keys / non-objects, like
    /// upstream.
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        match self {
            Value::Number(n) => n.as_i64() == Some(*other) || n.as_f64() == Some(*other as f64),
            _ => false,
        }
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        match self {
            Value::Number(n) => n.as_u64() == Some(*other) || n.as_f64() == Some(*other as f64),
            _ => false,
        }
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Number(Number::Int(v))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Number::from_f64(v)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Self {
        Value::Object(m)
    }
}

// ---------------------------------------------------------------- writer

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self);
        f.write_str(&s)
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string(value: &Value) -> Result<String> {
    Ok(value.to_string())
}

/// Serialize `value` as compact JSON to `writer`.
pub fn to_writer<W: Write>(mut writer: W, value: &Value) -> Result<()> {
    writer.write_all(value.to_string().as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pair handling for non-BMP chars.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid unicode escape"))?);
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Multi-byte UTF-8: the source is a &str so the bytes
                    // are valid; collect the full sequence.
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
        }
        let f: f64 = text
            .parse()
            .map_err(|_| Error::new(format!("invalid number '{text}'")))?;
        Ok(Value::Number(Number::Float(f)))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }
}

/// Parse a JSON document from a string.
pub fn from_str(src: &str) -> Result<Value> {
    let mut p = Parser::new(src);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

/// Parse a JSON document from a reader (reads to end).
pub fn from_reader<R: Read>(mut reader: R) -> Result<Value> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let mut obj = Map::new();
        obj.insert("name".into(), Value::from("view \"v1\"\n"));
        obj.insert("count".into(), Value::from(42i64));
        obj.insert("ratio".into(), Value::from(0.5));
        obj.insert("none".into(), Value::Null);
        obj.insert(
            "items".into(),
            Value::Array(vec![Value::from(1i64), Value::from(true), Value::Null]),
        );
        let v = Value::Object(obj);
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn index_and_compare() {
        let v = from_str(r#"{"experiment":"fig7","hit":0.9,"n":3}"#).unwrap();
        assert!(v["experiment"] == "fig7");
        assert!(v["hit"] == 0.9);
        assert!(v["n"] == 3i64);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("not json").is_err());
        assert!(from_str("{\"a\":").is_err());
        assert!(from_str("[1,2,]").is_err());
        assert!(from_str("{} trailing").is_err());
    }

    #[test]
    fn float_keeps_point() {
        let text = to_string(&Value::from(2.0)).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(from_str(&text).unwrap(), Value::Number(Number::Float(2.0)));
    }

    #[test]
    fn unicode_escapes() {
        let v = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v, Value::from("aé😀b"));
        let round = to_string(&Value::from("aé😀b")).unwrap();
        assert_eq!(from_str(&round).unwrap(), Value::from("aé😀b"));
    }
}
