//! Ablation — the paper's stated future work: "identify other algorithms
//! that perform better than both CLOCK and 2Q" (Section 4.1).
//!
//! Runs the Figure 6 workload across CLOCK, 2Q, LRU, and LRU-2 at the
//! same storage budget.

use pmv_bench::tpcr_harness::arg_flag;
use pmv_bench::ExperimentReport;
use pmv_cache::PolicyKind;
use pmv_workload::{run_sim, SimConfig};

fn main() {
    let quick = arg_flag("--quick");
    let (total, n, warm, measure) = if quick {
        (50_000, 1_000, 50_000, 50_000)
    } else {
        (1_000_000, 20_000, 500_000, 500_000)
    };

    let policies = [
        PolicyKind::Clock,
        PolicyKind::TwoQ,
        PolicyKind::TwoQFull,
        PolicyKind::Lru,
        PolicyKind::LruK,
    ];
    let mut report = ExperimentReport::new(
        "policy_ablation",
        "Hit probability vs h for four replacement policies (alpha=1.07)",
        "h",
    );
    for h in 1..=5usize {
        let mut values = Vec::new();
        for policy in policies {
            let cfg = SimConfig {
                total_bcps: total,
                n,
                policy,
                alpha: 1.07,
                h,
                warmup: warm,
                measure,
                ..Default::default()
            };
            let r = run_sim(&cfg);
            values.push((policy.name().to_string(), r.hit_probability));
            eprintln!("h={h} {}: {:.4}", policy.name(), r.hit_probability);
        }
        report.push(h.to_string(), values);
    }
    report.print();
}
