//! Binary codec for WAL payloads: the delta batches of one group
//! commit.
//!
//! Hand-rolled little-endian encoding (no external dependencies, fully
//! deterministic — the same batch always encodes to the same bytes, so
//! CRC comparisons and replay are reproducible):
//!
//! ```text
//! payload   := batch_count:u32 batch*
//! batch     := str(relation) delta_count:u32 delta*
//! delta     := 0x00 row:u32 tuple            (insert)
//!            | 0x01 row:u32 tuple            (delete, tuple = victim)
//!            | 0x02 row:u32 tuple tuple      (update, old then new)
//! tuple     := value_count:u32 value*
//! value     := 0x00                          (null)
//!            | 0x01 i64                      (int)
//!            | 0x02 f64-bits:u64             (double)
//!            | 0x03 str                      (string)
//! str       := len:u32 utf8-bytes
//! ```
//!
//! Deletes and updates carry full before-images even though replay only
//! strictly needs the row id: the redundancy lets recovery cross-check
//! the heap against the log and keeps the format useful for audit
//! tooling.

use pmv_storage::{Delta, DeltaBatch, RowId, Tuple, Value};

/// Codec failure: the payload bytes do not parse as delta batches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WAL payload decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

type Result<T> = std::result::Result<T, DecodeError>;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0x00),
        Value::Int(i) => {
            out.push(0x01);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            out.push(0x02);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(0x03);
            put_str(out, s);
        }
    }
}

fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    out.extend_from_slice(&(t.values().len() as u32).to_le_bytes());
    for v in t.values() {
        put_value(out, v);
    }
}

/// Encode the delta batches of one commit into a WAL payload.
pub fn encode_batches(batches: &[DeltaBatch]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&(batches.len() as u32).to_le_bytes());
    for b in batches {
        put_str(&mut out, b.relation());
        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
        for d in b.deltas() {
            match d {
                Delta::Insert { row, tuple } => {
                    out.push(0x00);
                    out.extend_from_slice(&row.0.to_le_bytes());
                    put_tuple(&mut out, tuple);
                }
                Delta::Delete { row, tuple } => {
                    out.push(0x01);
                    out.extend_from_slice(&row.0.to_le_bytes());
                    put_tuple(&mut out, tuple);
                }
                Delta::Update { row, old, new } => {
                    out.push(0x02);
                    out.extend_from_slice(&row.0.to_le_bytes());
                    put_tuple(&mut out, old);
                    put_tuple(&mut out, new);
                }
            }
        }
    }
    out
}

/// A cursor over payload bytes with bounds-checked primitive reads.
struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .off
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| DecodeError(format!("truncated payload at offset {}", self.off)))?;
        let s = &self.bytes[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("non-UTF-8 string".to_string()))
    }

    fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0x00 => Ok(Value::Null),
            0x01 => Ok(Value::Int(self.u64()? as i64)),
            0x02 => Ok(Value::Double(f64::from_bits(self.u64()?))),
            0x03 => Ok(Value::str(self.str()?)),
            tag => Err(DecodeError(format!("unknown value tag {tag:#x}"))),
        }
    }

    fn tuple(&mut self) -> Result<Tuple> {
        let n = self.u32()? as usize;
        if n > self.bytes.len() - self.off {
            return Err(DecodeError(format!("tuple arity {n} exceeds payload")));
        }
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(self.value()?);
        }
        Ok(Tuple::new(vals))
    }
}

/// Decode a WAL payload back into delta batches.
pub fn decode_batches(payload: &[u8]) -> Result<Vec<DeltaBatch>> {
    let mut c = Cursor {
        bytes: payload,
        off: 0,
    };
    let nbatches = c.u32()? as usize;
    if nbatches > payload.len() {
        return Err(DecodeError(format!(
            "batch count {nbatches} exceeds payload"
        )));
    }
    let mut batches = Vec::with_capacity(nbatches);
    for _ in 0..nbatches {
        let relation = c.str()?;
        let ndeltas = c.u32()? as usize;
        if ndeltas > payload.len() {
            return Err(DecodeError(format!(
                "delta count {ndeltas} exceeds payload"
            )));
        }
        let mut batch = DeltaBatch::new(relation);
        for _ in 0..ndeltas {
            let tag = c.u8()?;
            let row = RowId(c.u32()?);
            let delta = match tag {
                0x00 => Delta::Insert {
                    row,
                    tuple: c.tuple()?,
                },
                0x01 => Delta::Delete {
                    row,
                    tuple: c.tuple()?,
                },
                0x02 => Delta::Update {
                    row,
                    old: c.tuple()?,
                    new: c.tuple()?,
                },
                other => return Err(DecodeError(format!("unknown delta tag {other:#x}"))),
            };
            batch.push(delta);
        }
        batches.push(batch);
    }
    if c.off != payload.len() {
        return Err(DecodeError(format!(
            "{} trailing bytes after last batch",
            payload.len() - c.off
        )));
    }
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_storage::tuple;

    fn sample() -> Vec<DeltaBatch> {
        let mut a = DeltaBatch::new("r");
        a.push(Delta::Insert {
            row: RowId(0),
            tuple: tuple![1i64, "alpha", 1.5f64],
        });
        a.push(Delta::Delete {
            row: RowId(7),
            tuple: Tuple::new(vec![Value::Null, Value::str(""), Value::Double(-0.0)]),
        });
        a.push(Delta::Update {
            row: RowId(3),
            old: tuple![2i64, "x", 0.0f64],
            new: tuple![2i64, "y", f64::NAN],
        });
        let mut b = DeltaBatch::new("s");
        b.push(Delta::Insert {
            row: RowId(u32::MAX),
            tuple: tuple![i64::MIN, "π — unicode", f64::INFINITY],
        });
        vec![a, b, DeltaBatch::new("empty")]
    }

    #[test]
    fn roundtrip_preserves_batches() {
        let batches = sample();
        let bytes = encode_batches(&batches);
        let back = decode_batches(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        for (orig, dec) in batches.iter().zip(&back) {
            assert_eq!(orig.relation(), dec.relation());
            assert_eq!(orig.deltas().len(), dec.deltas().len());
            // NaN-containing tuples: compare through Value's Eq (the
            // storage layer normalizes NaN so Eq is sound).
            assert_eq!(orig.deltas(), dec.deltas());
        }
    }

    #[test]
    fn truncated_and_corrupt_payloads_error_not_panic() {
        let bytes = encode_batches(&sample());
        for cut in 0..bytes.len() {
            // Every strict prefix must fail cleanly (trailing-byte check
            // catches prefixes that happen to parse).
            assert!(decode_batches(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let mut garbage = bytes.clone();
        garbage[0] = 0xFF; // absurd batch count
        assert!(decode_batches(&garbage).is_err());
    }

    #[test]
    fn empty_commit_encodes() {
        let bytes = encode_batches(&[]);
        assert_eq!(decode_batches(&bytes).unwrap(), Vec::<DeltaBatch>::new());
    }
}
