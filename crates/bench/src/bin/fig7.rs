//! Figure 7 — hit probability, "PMV size" experiment.
//!
//! α = 1.07 and h = 2 fixed; N swept over {10K, 20K, 30K}; CLOCK vs 2Q.
//! Paper's reading: hit probability approaches 100% as N grows, and 2Q
//! beats CLOCK at every size.
//!
//! `--quick` scales everything down for a smoke run.

use pmv_bench::tpcr_harness::arg_flag;
use pmv_bench::ExperimentReport;
use pmv_cache::PolicyKind;
use pmv_workload::{run_sim, SimConfig};

fn main() {
    let quick = arg_flag("--quick");
    let (total, ns, warm, measure): (usize, Vec<usize>, usize, usize) = if quick {
        (50_000, vec![500, 1_000, 1_500], 50_000, 50_000)
    } else {
        (
            1_000_000,
            vec![10_000, 20_000, 30_000],
            1_000_000,
            1_000_000,
        )
    };

    let mut report = ExperimentReport::new(
        "figure7",
        "Hit probability vs N (PMV size experiment), alpha=1.07, h=2",
        "N",
    );
    for n in ns {
        let mut values = Vec::new();
        for policy in [PolicyKind::TwoQ, PolicyKind::Clock] {
            let cfg = SimConfig {
                total_bcps: total,
                n,
                policy,
                alpha: 1.07,
                h: 2,
                warmup: warm,
                measure,
                ..Default::default()
            };
            let r = run_sim(&cfg);
            values.push((policy.name().to_string(), r.hit_probability));
            eprintln!("N={n} {}: hit={:.4}", policy.name(), r.hit_probability);
        }
        report.push(n.to_string(), values);
    }
    report.print();
}
