//! Exploring a TPC-R-style warehouse with PMVs: the paper's Section 4.2
//! setting at example scale.
//!
//! Shows templates T1 and T2, a Zipf-skewed analyst workload, the PMV
//! adapting as the hot set shifts, and the "early termination" benefit of
//! Benefit 2 in the introduction: an analyst who refines a query after
//! seeing partial results never pays for full execution.
//!
//! ```bash
//! cargo run --release --example tpcr_explore
//! ```

use pmv::core::{Pmv, PmvConfig};
use pmv::prelude::*;
use pmv::workload::queries::{t1_query, template_t1};
use pmv::workload::tpcr::{self, TpcrConfig};
use pmv::workload::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small warehouse: s = 0.01 → 1.5K customers, 15K orders, 60K
    // lineitems, with date-correlated suppliers so hot cells are dense.
    println!("generating TPC-R data (s = 0.01)…");
    let mut db = Database::new();
    tpcr::generate(
        &mut db,
        &TpcrConfig {
            scale: 0.01,
            seed: 42,
            pad: false,
            date_supplier_pool: Some(2),
        },
    )?;
    tpcr::standard_indexes(&mut db)?;

    let t1 = template_t1(&db)?;
    let def = PartialViewDef::all_equality("t1_pmv", t1.clone())?;
    let mut pmv = Pmv::new(def, PmvConfig::new(3, 5_000, pmv::cache::PolicyKind::TwoQ));
    let pipeline = PmvPipeline::new();

    // An analyst's workload: dates drawn Zipf-skewed (recent days are
    // hot), suppliers from each date's pool.
    let zipf = Zipf::new(tpcr::NUM_DATES as usize, 1.2);
    let mut rng = StdRng::seed_from_u64(7);
    let n_supp = tpcr::supplier_count(0.01);

    let mut served_early = 0usize;
    let total_queries = 2_000;
    for _ in 0..total_queries {
        let date = zipf.sample(&mut rng) as i64;
        let supp = (date * 31).rem_euclid(n_supp) + 1; // pool member 0
        let q = t1_query(&t1, &[date], &[supp])?;
        let out = pipeline.run(&db, &mut pmv, &q)?;
        if !out.partial.is_empty() {
            served_early += 1;
        }
    }
    println!(
        "workload phase 1: {}/{} queries got early partial results \
         (bcp hit probability {:.1}%)",
        served_early,
        total_queries,
        pmv.stats().hit_probability() * 100.0
    );

    // The hot set shifts: the analyst pivots to a different date range.
    // The PMV adapts via its replacement policy.
    pmv.reset_stats();
    let mut served_early = 0usize;
    for _ in 0..total_queries {
        let date = tpcr::NUM_DATES - 1 - zipf.sample(&mut rng) as i64;
        let supp = (date * 31).rem_euclid(n_supp) + 1;
        let q = t1_query(&t1, &[date], &[supp])?;
        let out = pipeline.run(&db, &mut pmv, &q)?;
        if !out.partial.is_empty() {
            served_early += 1;
        }
    }
    println!(
        "workload phase 2 (shifted hot set): {}/{} served early, hit {:.1}%",
        served_early,
        total_queries,
        pmv.stats().hit_probability() * 100.0
    );

    // Benefit 2: early termination. The analyst looks at partial results
    // and refines instead of waiting — saving the full execution time.
    let hot_date = zipf.sample(&mut rng) as i64;
    let supp = (hot_date * 31).rem_euclid(n_supp) + 1;
    let q = t1_query(&t1, &[hot_date], &[supp])?;
    pipeline.run(&db, &mut pmv, &q)?; // warm
    pipeline.run(&db, &mut pmv, &q)?; // 2Q promotion
    let out = pipeline.run(&db, &mut pmv, &q)?;
    if out.partial.is_empty() {
        println!("\n(hot cell was empty — rerun with another seed)");
    } else {
        println!(
            "\nearly-termination scenario: {} sample rows arrived after {:?};",
            out.partial.len(),
            out.timings.o2
        );
        println!(
            "an analyst who refines now skips the remaining {:?} of execution",
            out.timings.exec
        );
    }

    println!(
        "\nPMV footprint: {} entries, {} tuples, {:.1} KiB",
        pmv.store().entry_count(),
        pmv.store().tuple_count(),
        pmv.store().byte_size() as f64 / 1024.0
    );
    Ok(())
}
