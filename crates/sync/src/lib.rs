//! `pmv-sync` — lock-free read primitives for the PMV serving path.
//!
//! One structure: [`LeftRight`], a double-buffered publication cell in
//! the left-right / evmap family. A single value (behind `Arc`) is
//! readable by any number of threads without taking a lock, while
//! writers publish replacement values off the read path:
//!
//! * [`LeftRight::load`] is **wait-free for readers in practice**: one
//!   atomic increment, one atomic load, an `Arc::clone`, and one atomic
//!   decrement. Readers never block on writers; the only retry is the
//!   one-iteration backoff when a publish lands between a reader's slot
//!   pick and its guard increment, and a second flip cannot occur until
//!   that reader's count drains, so the loop is bounded at two
//!   iterations.
//! * [`LeftRight::publish`] swaps in a new `Arc` by writing the
//!   *inactive* slot and flipping the active-slot pointer. Writers
//!   serialize on a mutex and wait (yielding) for straggler readers of
//!   the inactive slot to drain before overwriting it.
//!
//! The serving path uses this twice: the database snapshot pointer
//! (`EpochDb` in `pmv-core`) and the per-shard O2 read views, which is
//! what lets O2 probes and O3 execution run with no `RwLock` in sight.
//!
//! Memory ordering: the four operations that order readers against the
//! flip — reader guard increment, reader re-check of `active`, writer
//! drain load, writer flip store — are all `SeqCst`, giving a single
//! total order in which either the writer observes the reader's guard
//! (and waits for it) or the reader observes the flip (and backs off
//! before touching the slot). Everything else rides on that order.
//! `SeqCst` here is synchronization, not statistics — this module is
//! the one place in the workspace where atomics guard non-atomic state.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

use parking_lot::Mutex;

/// Double-buffered `Arc` cell: lock-free reads, mutex-serialized writes.
///
/// ```
/// use std::sync::Arc;
/// use pmv_sync::LeftRight;
///
/// let cell = LeftRight::new(Arc::new(1u64));
/// assert_eq!(*cell.load(), 1);
/// cell.publish(Arc::new(2));
/// assert_eq!(*cell.load(), 2);
/// ```
pub struct LeftRight<T> {
    /// The two versions. A slot is only written while (a) the writer
    /// mutex is held, (b) the slot is inactive, and (c) its reader
    /// count has drained to zero — so no `&Arc` handed to a reader can
    /// alias the overwrite.
    slots: [UnsafeCell<Arc<T>>; 2],
    /// In-flight readers per slot (the "guard" counts).
    readers: [AtomicUsize; 2],
    /// Which slot readers should use (0 or 1).
    active: AtomicUsize,
    /// Serializes publishers.
    write: Mutex<()>,
    /// Monotonic publish counter (diagnostic; `versions()` in tests and
    /// the obs gauge read it).
    version: AtomicUsize,
}

// Readers on many threads clone `Arc<T>` out of the cell and writers
// move `Arc<T>` in, so both directions need `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for LeftRight<T> {}
unsafe impl<T: Send + Sync> Sync for LeftRight<T> {}

impl<T> LeftRight<T> {
    /// Cell holding `initial` in the active slot.
    pub fn new(initial: Arc<T>) -> Self {
        LeftRight {
            slots: [
                UnsafeCell::new(Arc::clone(&initial)),
                UnsafeCell::new(initial),
            ],
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
            active: AtomicUsize::new(0),
            write: Mutex::new(()),
            version: AtomicUsize::new(0),
        }
    }

    /// Current value. Lock-free: never blocks on a publisher, and the
    /// retry loop is bounded (see module docs).
    pub fn load(&self) -> Arc<T> {
        loop {
            let a = self.active.load(SeqCst);
            // Guard the slot before re-checking: publishers flip before
            // they can target this slot again, so seeing `active == a`
            // after the increment proves the slot cannot be overwritten
            // until the matching decrement.
            self.readers[a].fetch_add(1, SeqCst);
            if self.active.load(SeqCst) == a {
                // Safety: the guard count on slot `a` is nonzero and
                // `active == a` was observed after taking the guard, so
                // any concurrent publisher targets the *other* slot or
                // is waiting on our drain.
                let value = unsafe { Arc::clone(&*self.slots[a].get()) };
                self.readers[a].fetch_sub(1, SeqCst);
                return value;
            }
            // A flip landed between the slot pick and the guard; back
            // off and take the new active slot.
            self.readers[a].fetch_sub(1, SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Publish `value`, making it visible to all subsequent [`load`]s.
    /// Blocks (yielding) while straggler readers drain off the slot
    /// being replaced; never blocks readers.
    ///
    /// [`load`]: LeftRight::load
    pub fn publish(&self, value: Arc<T>) {
        let _g = self.write.lock();
        let inactive = 1 - self.active.load(SeqCst);
        // Wait for readers that picked the inactive slot before the
        // previous flip. New readers target the active slot, so this
        // count only drains.
        let mut spins = 0u32;
        while self.readers[inactive].load(SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // Safety: writer mutex held, slot inactive, reader count zero —
        // exclusive access.
        unsafe {
            *self.slots[inactive].get() = value;
        }
        self.active.store(inactive, SeqCst);
        self.version.fetch_add(1, SeqCst);
    }

    /// Number of publishes so far (diagnostic).
    pub fn versions(&self) -> usize {
        self.version.load(SeqCst)
    }

    /// Cheap revalidation hint for per-thread caches: the publish
    /// counter with `Acquire` ordering. A cached value tagged with this
    /// hint is provably no older than the hint's publish; a publish
    /// landing concurrently at worst makes the cache revalidate once
    /// more. This is a *hint*, not the synchronization — slot safety
    /// still rides entirely on the `SeqCst` guard protocol above.
    pub fn version_hint(&self) -> usize {
        self.version.load(std::sync::atomic::Ordering::Acquire)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for LeftRight<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeftRight")
            .field("value", &self.load())
            .field("versions", &self.versions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn load_returns_initial_then_published() {
        let cell = LeftRight::new(Arc::new(10u64));
        assert_eq!(*cell.load(), 10);
        assert_eq!(cell.versions(), 0);
        cell.publish(Arc::new(20));
        assert_eq!(*cell.load(), 20);
        cell.publish(Arc::new(30));
        assert_eq!(*cell.load(), 30);
        assert_eq!(cell.versions(), 2);
    }

    #[test]
    fn old_snapshots_stay_alive_until_dropped() {
        let cell = LeftRight::new(Arc::new(vec![1, 2, 3]));
        let pinned = cell.load();
        cell.publish(Arc::new(vec![4, 5]));
        cell.publish(Arc::new(vec![6]));
        // The pinned reader still sees its version.
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![6]);
    }

    #[test]
    fn no_snapshot_leak_on_drop() {
        static LIVE: AtomicU64 = AtomicU64::new(0);
        struct Counted;
        impl Counted {
            fn new() -> Self {
                LIVE.fetch_add(1, SeqCst);
                Counted
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, SeqCst);
            }
        }
        {
            let cell = LeftRight::new(Arc::new(Counted::new()));
            for _ in 0..8 {
                cell.publish(Arc::new(Counted::new()));
            }
            let _pin = cell.load();
        }
        assert_eq!(LIVE.load(SeqCst), 0, "published snapshots leaked");
    }

    #[test]
    fn concurrent_readers_see_only_published_values() {
        let cell = Arc::new(LeftRight::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while stop.load(SeqCst) == 0 {
                        let v = *cell.load();
                        // Monotonic: a reader never travels back in time.
                        assert!(v >= last, "went backwards: {last} -> {v}");
                        last = v;
                    }
                })
            })
            .collect();
        for i in 1..=1000u64 {
            cell.publish(Arc::new(i));
        }
        stop.store(1, SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load(), 1000);
    }
}
