//! Partial materialized view definitions (Section 3.2).
//!
//! ```text
//! create partial materialized view V_PM as subset of
//!   select Ls' from R1, R2, …, Rn
//!   where Cjoin with selection condition template Cselect;
//! ```
//!
//! A [`PartialViewDef`] couples a [`QueryTemplate`] with one
//! [`Discretizer`] per interval-form condition, plus the person-specified
//! knobs: `F` (max result tuples stored per bcp), the entry budget `L`,
//! and the replacement policy. The containing materialized view `V_M` is
//! implicit — it is the template joined without `Cselect`.

use std::sync::Arc;
use std::time::Duration;

use pmv_cache::PolicyKind;
use pmv_query::{CondForm, QueryInstance, QueryTemplate};
use pmv_storage::Tuple;

use crate::bcp::{BcpDim, BcpKey, Discretizer};
use crate::health::BreakerConfig;
use crate::{CoreError, Result};

/// How deletes/updates are propagated into the view (DESIGN.md §19).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintStrategy {
    /// Classic Section 3.4 deferred maintenance: every delete/update
    /// runs the full `ΔR_i ⋈ R_j` recompute. O(data); kept as the
    /// equivalence oracle and bench baseline.
    DeltaJoin,
    /// Every delta takes the delta-key-index path: remove exactly the
    /// supported view tuples, no base-relation join. O(|Δ| · fanout).
    Indexed,
    /// Heavy-light partitioning: hot delta keys (space-saving sketch
    /// count ≥ `heavy_threshold`) take the indexed path; cold keys
    /// batch into one coalesced join per maintenance drain. Bounds
    /// worst-case maintenance under Zipfian delete churn.
    HeavyLight,
}

impl MaintStrategy {
    /// Stable name for CLI flags and JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            MaintStrategy::DeltaJoin => "delta-join",
            MaintStrategy::Indexed => "indexed",
            MaintStrategy::HeavyLight => "heavy-light",
        }
    }

    /// Parse a name as printed by [`MaintStrategy::as_str`].
    pub fn parse(s: &str) -> Option<MaintStrategy> {
        match s {
            "delta-join" => Some(MaintStrategy::DeltaJoin),
            "indexed" => Some(MaintStrategy::Indexed),
            "heavy-light" => Some(MaintStrategy::HeavyLight),
            _ => None,
        }
    }
}

/// Tuning knobs for a PMV.
#[derive(Clone, Debug)]
pub struct PmvConfig {
    /// Max result tuples stored per basic condition part (`F`).
    pub f: usize,
    /// Max number of bcp entries (`L`). Together with the average tuple
    /// size `At` this bounds storage: `UB ≤ L × F × At`.
    pub l: usize,
    /// How resident bcps are managed (CLOCK by default, per the paper).
    pub policy: PolicyKind,
    /// Keep the Section 3.4 maintenance indices on V_PM attributes
    /// (now the delta-key index), letting deletes of unrelated tuples
    /// skip the ΔR join (the \[25\] optimization) and powering the
    /// indexed maintenance paths. On by default.
    pub maint_filter: bool,
    /// How deletes/updates propagate into the view. [`MaintStrategy`]
    /// paths other than `DeltaJoin` require `maint_filter` (they read
    /// the delta-key index) and silently degrade to the join without it.
    pub maint_strategy: MaintStrategy,
    /// Sketch count at which a delta key is considered heavy under
    /// [`MaintStrategy::HeavyLight`].
    pub heavy_threshold: u64,
    /// Repair probe misses and drained shards with targeted per-bcp
    /// upqueries (bounded keyed refills) instead of relying solely on
    /// the full O3 run. On by default.
    pub upquery: bool,
    /// Wall-clock budget for one O3 execution; when exceeded, the query
    /// returns the O2 partials flagged `Degraded` instead of blocking.
    /// `None` (the default) runs O3 to completion.
    pub o3_deadline: Option<Duration>,
    /// Cap on tuples one O3 execution may examine; same degradation
    /// semantics as `o3_deadline`. `None` (the default) is unlimited.
    pub o3_max_tuples: Option<u64>,
    /// Retries for a maintenance join that failed transiently, before
    /// falling back to invalidating the affected shards.
    pub maint_retries: u32,
    /// Base backoff between maintenance retries (doubled per attempt).
    pub maint_backoff: Duration,
    /// Circuit-breaker thresholds for the per-view health state machine.
    pub breaker: BreakerConfig,
}

impl Default for PmvConfig {
    fn default() -> Self {
        // The paper's running example: "If L = 10K, F = 2, and At = 50B,
        // then the size of V_PM is no more than 1MB".
        PmvConfig {
            f: 2,
            l: 10_000,
            policy: PolicyKind::Clock,
            maint_filter: true,
            maint_strategy: MaintStrategy::HeavyLight,
            // High enough that sparse delete streams stay on the exact
            // join path; a genuinely hot key crosses it within one
            // Zipfian burst.
            heavy_threshold: 8,
            upquery: true,
            o3_deadline: None,
            o3_max_tuples: None,
            maint_retries: 3,
            maint_backoff: Duration::from_micros(50),
            breaker: BreakerConfig::default(),
        }
    }
}

impl PmvConfig {
    /// Config with explicit `F`, `L`, and policy (maintenance filter on,
    /// no execution budget, default breaker).
    pub fn new(f: usize, l: usize, policy: PolicyKind) -> Self {
        PmvConfig {
            f,
            l,
            policy,
            ..PmvConfig::default()
        }
    }

    /// Bound each O3 execution to `deadline` of wall-clock time.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.o3_deadline = Some(deadline);
        self
    }

    /// Bound each O3 execution to examining at most `max_tuples` tuples.
    pub fn with_row_budget(mut self, max_tuples: u64) -> Self {
        self.o3_max_tuples = Some(max_tuples);
        self
    }

    /// Override the circuit-breaker thresholds.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Select the maintenance strategy.
    pub fn with_maint_strategy(mut self, strategy: MaintStrategy) -> Self {
        self.maint_strategy = strategy;
        self
    }

    /// Override the heavy-key sketch threshold.
    pub fn with_heavy_threshold(mut self, threshold: u64) -> Self {
        self.heavy_threshold = threshold.max(1);
        self
    }

    /// The strategy actually in effect: index-driven paths need the
    /// index, so without `maint_filter` everything is the plain join.
    pub fn effective_strategy(&self) -> MaintStrategy {
        if self.maint_filter {
            self.maint_strategy
        } else {
            MaintStrategy::DeltaJoin
        }
    }
}

impl PmvConfig {
    /// Derive the entry budget `L` from a byte budget `UB` and an average
    /// tuple size `At`, per the paper's bound `UB ≤ L × F × At`.
    pub fn with_byte_budget(
        f: usize,
        ub_bytes: usize,
        avg_tuple_bytes: usize,
        policy: PolicyKind,
    ) -> Self {
        assert!(f > 0 && avg_tuple_bytes > 0);
        let l = (ub_bytes / (f * avg_tuple_bytes)).max(1);
        PmvConfig::new(f, l, policy)
    }
}

/// Definition of a partial materialized view for one query template.
#[derive(Clone, Debug)]
pub struct PartialViewDef {
    name: String,
    template: Arc<QueryTemplate>,
    /// One entry per selection condition: `Some(discretizer)` for
    /// interval-form conditions, `None` for equality-form ones.
    discretizers: Vec<Option<Discretizer>>,
}

impl PartialViewDef {
    /// Define a PMV over `template`. `discretizers` must supply a
    /// [`Discretizer`] for every interval-form condition (the paper's
    /// dividing values, chosen by the DBA, harvested from form-based UI
    /// from/to lists, or learned from traces).
    pub fn new(
        name: impl Into<String>,
        template: Arc<QueryTemplate>,
        discretizers: Vec<Option<Discretizer>>,
    ) -> Result<Self> {
        if discretizers.len() != template.cond_count() {
            return Err(CoreError::Definition(format!(
                "expected {} discretizer slots, got {}",
                template.cond_count(),
                discretizers.len()
            )));
        }
        for (i, (ct, d)) in template
            .cond_templates()
            .iter()
            .zip(&discretizers)
            .enumerate()
        {
            match (ct.form, d) {
                (CondForm::Interval, None) => {
                    return Err(CoreError::Definition(format!(
                        "condition {i} is interval-form but has no discretizer"
                    )))
                }
                (CondForm::Equality, Some(_)) => {
                    return Err(CoreError::Definition(format!(
                        "condition {i} is equality-form and must not have a discretizer"
                    )))
                }
                _ => {}
            }
        }
        Ok(PartialViewDef {
            name: name.into(),
            template,
            discretizers,
        })
    }

    /// Define a PMV for a template whose conditions are all equality-form.
    pub fn all_equality(name: impl Into<String>, template: Arc<QueryTemplate>) -> Result<Self> {
        let slots = vec![None; template.cond_count()];
        PartialViewDef::new(name, template, slots)
    }

    /// View name (lock-manager object id).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying query template.
    pub fn template(&self) -> &Arc<QueryTemplate> {
        &self.template
    }

    /// Discretizer for condition `i` (None for equality-form).
    pub fn discretizer(&self, i: usize) -> Option<&Discretizer> {
        self.discretizers[i].as_ref()
    }

    /// Recover the "conceptual" containing basic condition part of an
    /// `Ls'`-layout result tuple — the paper stores no bcp with the tuple;
    /// "whenever needed, bcp is recovered from ats" (Section 3.2).
    pub fn bcp_of_tuple(&self, tuple: &Tuple) -> BcpKey {
        let dims: Vec<BcpDim> = (0..self.template.cond_count())
            .map(|i| {
                let v = tuple.get(self.template.cond_position(i));
                match &self.discretizers[i] {
                    None => BcpDim::Eq(v.clone()),
                    Some(d) => BcpDim::Iv(d.id_of(v)),
                }
            })
            .collect();
        BcpKey::new(dims)
    }

    /// Build the query instance selecting exactly the tuples of `bcp`
    /// (each dimension pinned to the equality value / basic interval).
    pub fn bcp_query(&self, bcp: &BcpKey) -> Result<QueryInstance> {
        use pmv_query::Condition;
        let conds = bcp
            .dims()
            .iter()
            .enumerate()
            .map(|(i, d)| match d {
                BcpDim::Eq(v) => Condition::Equality(vec![v.clone()]),
                BcpDim::Iv(id) => {
                    let disc = self.discretizer(i).expect("Iv dim implies discretizer");
                    Condition::Intervals(vec![disc.interval_of(*id)])
                }
            })
            .collect();
        Ok(self.template.bind(conds)?)
    }

    /// Check that `instance` belongs to this view's template.
    pub fn check_instance(&self, instance: &QueryInstance) -> Result<()> {
        if !Arc::ptr_eq(instance.template(), &self.template) {
            return Err(CoreError::Definition(format!(
                "query instance is not from template '{}'",
                self.template.name()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_query::TemplateBuilder;
    use pmv_storage::{tuple, Column, ColumnType, Schema, Value};

    fn template_eq_iv() -> Arc<QueryTemplate> {
        TemplateBuilder::new("t")
            .relation(Schema::new(
                "r",
                vec![
                    Column::new("a", ColumnType::Int),
                    Column::new("f", ColumnType::Int),
                    Column::new("g", ColumnType::Int),
                ],
            ))
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .cond_interval("r", "g")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn definition_requires_matching_discretizers() {
        let t = template_eq_iv();
        // Missing discretizer for the interval condition.
        assert!(PartialViewDef::new("v", Arc::clone(&t), vec![None, None]).is_err());
        // Spurious discretizer on the equality condition.
        assert!(PartialViewDef::new(
            "v",
            Arc::clone(&t),
            vec![
                Some(Discretizer::int_grid(0, 10, 2)),
                Some(Discretizer::int_grid(0, 10, 2))
            ]
        )
        .is_err());
        // Wrong arity.
        assert!(PartialViewDef::new("v", Arc::clone(&t), vec![None]).is_err());
        // Correct.
        assert!(
            PartialViewDef::new("v", t, vec![None, Some(Discretizer::int_grid(0, 10, 2))]).is_ok()
        );
    }

    #[test]
    fn bcp_recovered_from_tuple() {
        let t = template_eq_iv();
        let def = PartialViewDef::new(
            "v",
            t,
            vec![None, Some(Discretizer::new(vec![Value::Int(100)]))],
        )
        .unwrap();
        // Ls' layout: (a, f, g).
        let tup = tuple![1i64, 7i64, 150i64];
        let bcp = def.bcp_of_tuple(&tup);
        assert_eq!(
            bcp,
            BcpKey::new(vec![BcpDim::Eq(Value::Int(7)), BcpDim::Iv(1)])
        );
    }

    #[test]
    fn byte_budget_derives_l() {
        let c = PmvConfig::with_byte_budget(2, 1_000_000, 50, PolicyKind::Clock);
        assert_eq!(c.l, 10_000); // the paper's 1MB example
        let c = PmvConfig::with_byte_budget(5, 100, 50, PolicyKind::TwoQ);
        assert_eq!(c.l, 1); // floor at 1
    }

    #[test]
    fn default_config_matches_paper_example() {
        let c = PmvConfig::default();
        assert_eq!(c.f, 2);
        assert_eq!(c.l, 10_000);
        assert_eq!(c.policy, PolicyKind::Clock);
    }
}
