//! Property tests for the interval algebra underlying condition
//! decomposition: `contains`, `overlaps`, `intersect`, and `is_empty`
//! must agree with the pointwise semantics over a dense probe grid.

use std::ops::Bound;

use pmv_query::Interval;
use pmv_storage::Value;
use proptest::prelude::*;

fn bound_strategy() -> impl Strategy<Value = Bound<Value>> {
    prop_oneof![
        1 => Just(Bound::Unbounded),
        3 => (-20i64..20).prop_map(|v| Bound::Included(Value::Int(v))),
        3 => (-20i64..20).prop_map(|v| Bound::Excluded(Value::Int(v))),
    ]
}

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (bound_strategy(), bound_strategy()).prop_map(|(lo, hi)| Interval { lo, hi })
}

/// Dense integer probes covering the strategy's value range and beyond.
fn probes() -> impl Iterator<Item = Value> {
    (-25i64..25).map(Value::Int)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn is_empty_means_contains_nothing(iv in interval_strategy()) {
        if iv.is_empty() {
            for p in probes() {
                prop_assert!(!iv.contains(&p), "{iv} claims empty but contains {p}");
            }
        } else if matches!((&iv.lo, &iv.hi), (Bound::Unbounded, _) | (_, Bound::Unbounded)) {
            // Unbounded non-empty intervals certainly contain an extreme.
            prop_assert!(
                iv.contains(&Value::Int(i64::MIN)) || iv.contains(&Value::Int(i64::MAX))
            );
        }
    }

    #[test]
    fn overlaps_agrees_with_pointwise(a in interval_strategy(), b in interval_strategy()) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let pointwise = probes().any(|p| a.contains(&p) && b.contains(&p));
        // `overlaps` may be true with no *integer* witness (e.g. (3,4) vs
        // (3,4) share only non-integers in a dense domain) — so pointwise
        // implies overlaps, not conversely.
        if pointwise {
            prop_assert!(a.overlaps(&b), "{a} and {b} share a point but !overlaps");
            prop_assert!(b.overlaps(&a), "overlaps must be symmetric");
        }
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn intersect_is_pointwise_and(a in interval_strategy(), b in interval_strategy()) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let inter = a.intersect(&b);
        for p in probes() {
            let both = a.contains(&p) && b.contains(&p);
            let in_inter = inter.as_ref().is_some_and(|i| i.contains(&p));
            prop_assert_eq!(
                both, in_inter,
                "intersection of {} and {} disagrees at {}", a, b, p
            );
        }
    }

    #[test]
    fn intersect_commutes(a in interval_strategy(), b in interval_strategy()) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        // Pointwise-equal (representations may differ only when both are
        // derived the same way, so compare by probing).
        for p in probes() {
            prop_assert_eq!(
                ab.as_ref().is_some_and(|i| i.contains(&p)),
                ba.as_ref().is_some_and(|i| i.contains(&p))
            );
        }
    }

    #[test]
    fn everything_is_identity_for_intersect(a in interval_strategy()) {
        prop_assume!(!a.is_empty());
        let e = Interval::everything();
        let i = e.intersect(&a).expect("everything overlaps non-empty");
        for p in probes() {
            prop_assert_eq!(i.contains(&p), a.contains(&p));
        }
    }
}
