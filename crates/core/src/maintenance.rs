//! Deferred PMV maintenance (Section 3.4).
//!
//! Upon a change `ΔR_i` to a base relation of the PMV:
//!
//! * **Insert** — "existing tuples in V_PM are not affected by this
//!   insert. Hence, V_PM is not maintained immediately." New result tuples
//!   flow in later, for free, through Operation O3 (the `c_j < F` refill
//!   path).
//! * **Delete** — compute `ΔR_i ⋈ R_j (j ≠ i)` and remove every join
//!   result found in the PMV.
//! * **Update** — if no attribute of `R_i` appearing in `Ls'` or `Cjoin`
//!   changed, do nothing; otherwise proceed like a delete of the old
//!   tuple (the insert side again needs no work).
//!
//! Maintenance takes an X lock on the PMV, which is what makes the O2/O3
//! S lock sufficient for serializability (Section 3.6).
//!
//! Known limit of the deferred scheme (the paper defers details to its
//! full version \[25\]): if one transaction deletes *matching* tuples from
//! two base relations, the second relation's ΔR join can no longer see
//! the first relation's deleted tuple, so a view tuple may survive. Use
//! [`crate::pipeline::Pmv::revalidate`] after such transactions, or run
//! maintenance per statement rather than per transaction.

use std::collections::HashSet;

use pmv_query::{exec::join_from, Database};
use pmv_storage::{Delta, DeltaBatch, Tuple};

use crate::pipeline::{Pmv, PmvPipeline};
use crate::Result;

/// What maintenance did for one delta batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceOutcome {
    /// Inserts that required no PMV work.
    pub inserts_ignored: usize,
    /// Deletes processed through the ΔR join.
    pub deletes_joined: usize,
    /// Updates skipped (no relevant attribute changed).
    pub updates_ignored: usize,
    /// Updates processed like deletes.
    pub updates_joined: usize,
    /// Join result rows computed across all ΔR joins.
    pub join_rows: usize,
    /// View tuples actually removed from the PMV.
    pub view_tuples_removed: usize,
    /// ΔR joins skipped by the Section 3.4 maintenance filter.
    pub joins_avoided: usize,
    /// ΔR join attempts retried after a transient failure.
    pub retries: usize,
    /// Deltas whose join kept failing: the affected shards were drained
    /// (quarantined) instead of repaired — removal-only, never stale.
    pub fallback_invalidations: usize,
    /// True when the batch's relation is not a base relation of this PMV.
    pub unrelated_relation: bool,
}

impl MaintenanceOutcome {
    /// Fold another outcome into this one (counter fields only;
    /// `unrelated_relation` is OR-ed).
    pub fn absorb(&mut self, o: &MaintenanceOutcome) {
        self.inserts_ignored += o.inserts_ignored;
        self.deletes_joined += o.deletes_joined;
        self.updates_ignored += o.updates_ignored;
        self.updates_joined += o.updates_joined;
        self.join_rows += o.join_rows;
        self.view_tuples_removed += o.view_tuples_removed;
        self.joins_avoided += o.joins_avoided;
        self.retries += o.retries;
        self.fallback_invalidations += o.fallback_invalidations;
        self.unrelated_relation |= o.unrelated_relation;
    }
}

impl PmvPipeline {
    /// Apply one relation's delta batch to the PMV.
    pub fn maintain(
        &self,
        db: &Database,
        pmv: &mut Pmv,
        batch: &DeltaBatch,
    ) -> Result<MaintenanceOutcome> {
        let mut out = MaintenanceOutcome::default();
        let template = pmv.def().template().clone();
        let Some(rel_idx) = template
            .relations()
            .iter()
            .position(|r| r == batch.relation())
        else {
            out.unrelated_relation = true;
            return Ok(out);
        };

        let relevant = relevant_columns(&template, rel_idx);
        let _x_lock = self.locks().lock_exclusive(pmv.def().name());

        for delta in batch.deltas() {
            match delta {
                Delta::Insert { .. } => {
                    out.inserts_ignored += 1;
                    pmv.stats.maint_inserts_ignored += 1;
                }
                Delta::Delete { tuple, .. } => {
                    out.deletes_joined += 1;
                    pmv.stats.maint_deletes_joined += 1;
                    remove_joined(db, pmv, &template, rel_idx, tuple, &mut out)?;
                }
                Delta::Update { old, .. } => {
                    let changed = delta.changed_columns();
                    if changed.iter().any(|c| relevant.contains(c)) {
                        out.updates_joined += 1;
                        pmv.stats.maint_updates_joined += 1;
                        remove_joined(db, pmv, &template, rel_idx, old, &mut out)?;
                    } else {
                        out.updates_ignored += 1;
                        pmv.stats.maint_updates_ignored += 1;
                    }
                }
            }
        }
        pmv.last_verified = std::time::Instant::now();
        Ok(out)
    }

    /// Apply several batches (e.g. a whole transaction's) in order.
    pub fn maintain_all(
        &self,
        db: &Database,
        pmv: &mut Pmv,
        batches: &[DeltaBatch],
    ) -> Result<MaintenanceOutcome> {
        let mut total = MaintenanceOutcome::default();
        for b in batches {
            let o = self.maintain(db, pmv, b)?;
            total.absorb(&o);
        }
        // Per-batch relevance is reported on the individual outcomes;
        // the transaction-level total keeps the historical `false`.
        total.unrelated_relation = false;
        Ok(total)
    }
}

/// Columns of relation `rel_idx` whose change can affect cached view
/// tuples: those in `Ls'` or in `Cjoin` (join attributes and fixed
/// predicates). Shared with the sharded maintenance path in
/// [`crate::concurrent`].
pub(crate) fn relevant_columns(
    template: &pmv_query::QueryTemplate,
    rel_idx: usize,
) -> HashSet<usize> {
    let mut cols = HashSet::new();
    for a in template.expanded_list() {
        if a.relation == rel_idx {
            cols.insert(a.column);
        }
    }
    for j in template.joins() {
        if j.left.relation == rel_idx {
            cols.insert(j.left.column);
        }
        if j.right.relation == rel_idx {
            cols.insert(j.right.column);
        }
    }
    for fp in template.fixed_preds() {
        if fp.attr.relation == rel_idx {
            cols.insert(fp.attr.column);
        }
    }
    cols
}

/// Delete/update arm: join the old tuple against the other base relations
/// and evict every matching view tuple.
fn remove_joined(
    db: &Database,
    pmv: &mut Pmv,
    template: &pmv_query::QueryTemplate,
    rel_idx: usize,
    tuple: &Tuple,
    out: &mut MaintenanceOutcome,
) -> Result<()> {
    // Section 3.4 / [25]: light indices on V_PM attributes can prove the
    // deleted tuple touches nothing cached, skipping the join.
    if !pmv.store.may_affect(rel_idx, tuple) {
        out.joins_avoided += 1;
        return Ok(());
    }
    let rows = join_from(db, template, rel_idx, tuple)?;
    out.join_rows += rows.len();
    for row in rows {
        let bcp = pmv.def().bcp_of_tuple(&row);
        if pmv.store.remove_tuple(&bcp, &row) {
            out.view_tuples_removed += 1;
            pmv.stats.maint_tuples_removed += 1;
        }
    }
    Ok(())
}
