//! Heap footprint accounting.
//!
//! The paper bounds each PMV by a storage budget `UB` ("the person who
//! defines V_PM specifies an upper bound UB for the size of V_PM",
//! Section 3.2). To enforce that bound we need every cached structure to
//! report how many bytes it occupies. [`HeapSize`] reports bytes owned
//! *outside* the value itself; [`total_size`] adds `size_of::<T>()`.

/// Bytes owned on the heap by a value (excluding `size_of::<Self>()`).
pub trait HeapSize {
    /// Heap bytes reachable from (and owned by) `self`.
    fn heap_size(&self) -> usize;
}

/// Total footprint: inline size plus owned heap bytes.
pub fn total_size<T: HeapSize>(v: &T) -> usize {
    std::mem::size_of::<T>() + v.heap_size()
}

impl<T: HeapSize> HeapSize for [T] {
    fn heap_size(&self) -> usize {
        self.iter().map(HeapSize::heap_size).sum()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_size(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>() + self.as_slice().heap_size()
    }
}

impl<T: HeapSize> HeapSize for Box<[T]> {
    fn heap_size(&self) -> usize {
        self.len() * std::mem::size_of::<T>() + (**self).heap_size()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_size(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_size)
    }
}

impl HeapSize for String {
    fn heap_size(&self) -> usize {
        self.capacity()
    }
}

macro_rules! impl_heapsize_zero {
    ($($t:ty),* $(,)?) => {
        $(impl HeapSize for $t {
            fn heap_size(&self) -> usize { 0 }
        })*
    };
}

impl_heapsize_zero!(
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_zero_heap() {
        assert_eq!(42u64.heap_size(), 0);
        assert_eq!(total_size(&42u64), 8);
    }

    #[test]
    fn vec_charges_capacity() {
        let v: Vec<u64> = Vec::with_capacity(10);
        assert_eq!(v.heap_size(), 80);
    }

    #[test]
    fn boxed_slice_charges_len() {
        let b: Box<[u32]> = vec![1, 2, 3].into_boxed_slice();
        assert_eq!(b.heap_size(), 12);
    }

    #[test]
    fn nested_vec_recurses() {
        let v: Vec<Vec<u8>> = vec![Vec::with_capacity(4), Vec::with_capacity(8)];
        // outer capacity (2 * 24 on 64-bit) + inner capacities (4 + 8)
        assert_eq!(v.heap_size(), 2 * std::mem::size_of::<Vec<u8>>() + 12);
    }

    #[test]
    fn option_none_is_free() {
        let n: Option<String> = None;
        assert_eq!(n.heap_size(), 0);
        let s: Option<String> = Some(String::with_capacity(16));
        assert_eq!(s.heap_size(), 16);
    }
}
