//! Catalog of named relations.
//!
//! The catalog owns every base relation behind a `parking_lot::RwLock`, so
//! queries (readers) and maintenance transactions (writers) can coexist —
//! the coarse-grained analogue of the paper's standard locking protocol on
//! base relations.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::StorageError;
use crate::relation::HeapRelation;
use crate::schema::Schema;

/// Shared handle to one relation.
pub type RelationHandle = Arc<RwLock<HeapRelation>>;

/// Named collection of relations.
#[derive(Default)]
pub struct Catalog {
    relations: BTreeMap<String, RelationHandle>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Create a relation with the given schema.
    pub fn create_relation(&mut self, schema: Schema) -> Result<RelationHandle, StorageError> {
        let name = schema.name().to_string();
        if self.relations.contains_key(&name) {
            return Err(StorageError::DuplicateRelation(name));
        }
        let handle = Arc::new(RwLock::new(HeapRelation::new(schema)));
        self.relations.insert(name, Arc::clone(&handle));
        Ok(handle)
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Result<RelationHandle, StorageError> {
        self.relations
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// True if the named relation exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Drop a relation.
    pub fn drop_relation(&mut self, name: &str) -> Result<(), StorageError> {
        self.relations
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};
    use crate::tuple;

    fn schema(name: &str) -> Schema {
        Schema::new(name, vec![Column::new("a", ColumnType::Int)])
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        c.create_relation(schema("r")).unwrap();
        assert!(c.contains("r"));
        let h = c.relation("r").unwrap();
        h.write().insert(tuple![1i64]).unwrap();
        assert_eq!(c.relation("r").unwrap().read().len(), 1);
    }

    #[test]
    fn duplicate_creation_fails() {
        let mut c = Catalog::new();
        c.create_relation(schema("r")).unwrap();
        assert!(matches!(
            c.create_relation(schema("r")),
            Err(StorageError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn missing_relation_errors() {
        let c = Catalog::new();
        assert!(matches!(
            c.relation("nope"),
            Err(StorageError::UnknownRelation(_))
        ));
    }

    #[test]
    fn drop_removes() {
        let mut c = Catalog::new();
        c.create_relation(schema("r")).unwrap();
        c.drop_relation("r").unwrap();
        assert!(!c.contains("r"));
        assert!(c.drop_relation("r").is_err());
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.create_relation(schema("z")).unwrap();
        c.create_relation(schema("a")).unwrap();
        assert_eq!(c.relation_names(), vec!["a".to_string(), "z".to_string()]);
    }

    #[test]
    fn handles_share_state() {
        let mut c = Catalog::new();
        let h1 = c.create_relation(schema("r")).unwrap();
        let h2 = c.relation("r").unwrap();
        h1.write().insert(tuple![5i64]).unwrap();
        assert_eq!(h2.read().len(), 1);
    }
}
