// IPA corpus (clean): the pin is dropped before the blocking helper
// runs, so nothing blocks while the epoch is held.

struct Fx;

impl Fx {
    fn serve(&self) -> usize {
        let pinsnap = self.published.pin();
        let n = fx_count(&pinsnap);
        drop(pinsnap);
        n + fx_slow_len(self)
    }
}

fn fx_count(snap: &Snap) -> usize {
    snap.rows()
}

fn fx_slow_len(fx: &Fx) -> usize {
    let g = fx.side.lock();
    g.len()
}
