//! Property test: `HeapRelation` against a `HashMap` model — row-id
//! stability across arbitrary insert/delete/update interleavings, slot
//! reuse never corrupting live rows, and iteration matching the model.

use std::collections::HashMap;

use pmv_storage::{Column, ColumnType, HeapRelation, RowId, Schema, Tuple, Value};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(i64),
    DeleteNth(usize),
    UpdateNth(usize, i64),
    GetNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<i64>().prop_map(Op::Insert),
        1 => (0usize..64).prop_map(Op::DeleteNth),
        1 => ((0usize..64), any::<i64>()).prop_map(|(n, v)| Op::UpdateNth(n, v)),
        1 => (0usize..64).prop_map(Op::GetNth),
    ]
}

fn schema() -> Schema {
    Schema::new("r", vec![Column::new("v", ColumnType::Int)])
}

fn tup(v: i64) -> Tuple {
    Tuple::new(vec![Value::Int(v)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn relation_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut rel = HeapRelation::new(schema());
        let mut model: HashMap<RowId, i64> = HashMap::new();
        let mut live_order: Vec<RowId> = Vec::new(); // arbitrary pick list

        for op in ops {
            match op {
                Op::Insert(v) => {
                    let id = rel.insert(tup(v)).unwrap();
                    prop_assert!(
                        !model.contains_key(&id),
                        "insert returned a live row id {id:?}"
                    );
                    model.insert(id, v);
                    live_order.push(id);
                }
                Op::DeleteNth(n) => {
                    if live_order.is_empty() {
                        continue;
                    }
                    let id = live_order.remove(n % live_order.len());
                    let removed = rel.delete(id).unwrap();
                    prop_assert_eq!(removed, tup(model[&id]));
                    model.remove(&id);
                    // Double delete must fail.
                    prop_assert!(rel.delete(id).is_err());
                }
                Op::UpdateNth(n, v) => {
                    if live_order.is_empty() {
                        continue;
                    }
                    let id = live_order[n % live_order.len()];
                    let old = rel.update(id, tup(v)).unwrap();
                    prop_assert_eq!(old, tup(model[&id]));
                    model.insert(id, v);
                }
                Op::GetNth(n) => {
                    if live_order.is_empty() {
                        prop_assert_eq!(rel.len(), 0);
                        continue;
                    }
                    let id = live_order[n % live_order.len()];
                    prop_assert_eq!(rel.get(id), Some(&tup(model[&id])));
                }
            }
            // Global invariants after every op.
            prop_assert_eq!(rel.len(), model.len());
            let mut seen: HashMap<RowId, i64> = HashMap::new();
            for (id, t) in rel.iter() {
                seen.insert(id, t.get(0).as_int().unwrap());
            }
            prop_assert_eq!(&seen, &model, "iteration diverged from model");
        }
    }

    /// Row ids of surviving tuples never change, no matter how many
    /// other rows churn around them.
    #[test]
    fn surviving_row_ids_are_stable(churn in 1usize..60) {
        let mut rel = HeapRelation::new(schema());
        let pinned = rel.insert(tup(42)).unwrap();
        for i in 0..churn as i64 {
            let id = rel.insert(tup(i)).unwrap();
            prop_assert_ne!(id, pinned);
            rel.delete(id).unwrap();
        }
        prop_assert_eq!(rel.get(pinned), Some(&tup(42)));
        prop_assert_eq!(rel.len(), 1);
    }
}
