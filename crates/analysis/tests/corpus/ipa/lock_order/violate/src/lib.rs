// IPA corpus: a helper called under a live shard guard acquires the DB
// master lock — the reverse of the sanctioned DB-then-shard order, one
// call deep.

struct Fx;

impl Fx {
    fn reorder(&self) {
        let store = self.shards[1].read();
        fx_master_sync(self);
        drop(store);
    }
}

fn fx_master_sync(fx: &Fx) {
    let guard = fx.db.read();
    drop(guard);
}
