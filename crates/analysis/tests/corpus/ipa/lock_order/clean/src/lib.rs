// IPA corpus (clean): DB master lock first, shard guard second, and the
// helper called under both touches no lock at all.

struct Fx;

impl Fx {
    fn ordered(&self) {
        let guard = self.db.read();
        let store = self.shards[1].read();
        fx_stat(&guard, &store);
        drop(store);
        drop(guard);
    }
}

fn fx_stat(guard: &DbGuard, store: &Store) -> usize {
    guard.len() + store.len()
}
