//! Composite index keys.

use std::fmt;

use pmv_storage::{HeapSize, Tuple, Value};

/// A composite key: one value per indexed column, ordered
/// lexicographically. Single-column keys are the common case; the PMV's
/// bcp index uses one component per selection condition in the template.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexKey {
    parts: Box<[Value]>,
}

impl IndexKey {
    /// Key over several values.
    pub fn new(parts: impl Into<Box<[Value]>>) -> Self {
        IndexKey {
            parts: parts.into(),
        }
    }

    /// Key over a single value.
    pub fn single(v: Value) -> Self {
        IndexKey {
            parts: Box::from([v]),
        }
    }

    /// Extract the key for `tuple` given the indexed column positions.
    pub fn from_tuple(tuple: &Tuple, columns: &[usize]) -> Self {
        IndexKey::new(
            columns
                .iter()
                .map(|&c| tuple.get(c).clone())
                .collect::<Vec<_>>(),
        )
    }

    /// Key components.
    pub fn parts(&self) -> &[Value] {
        &self.parts
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.parts.len()
    }
}

impl fmt::Debug for IndexKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k[")?;
        for (i, v) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Lets `HashMap<IndexKey, _>` be probed with a borrowed `&[Value]`
/// (e.g. values still owned by a bound tuple) — the zero-copy probe
/// path. Sound because the derived `Hash`/`Eq` on `IndexKey` delegate
/// to the `[Value]` slice.
impl std::borrow::Borrow<[Value]> for IndexKey {
    fn borrow(&self) -> &[Value] {
        &self.parts
    }
}

impl From<Value> for IndexKey {
    fn from(v: Value) -> Self {
        IndexKey::single(v)
    }
}

impl From<Vec<Value>> for IndexKey {
    fn from(v: Vec<Value>) -> Self {
        IndexKey::new(v)
    }
}

impl HeapSize for IndexKey {
    fn heap_size(&self) -> usize {
        self.parts.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_storage::tuple;

    #[test]
    fn lexicographic_order() {
        let a = IndexKey::new(vec![Value::Int(1), Value::Int(9)]);
        let b = IndexKey::new(vec![Value::Int(2), Value::Int(0)]);
        assert!(a < b);
        let c = IndexKey::new(vec![Value::Int(1)]);
        // Prefix sorts before its extension.
        assert!(c < a);
    }

    #[test]
    fn from_tuple_extracts_columns() {
        let t = tuple![10i64, "x", 30i64];
        let k = IndexKey::from_tuple(&t, &[2, 0]);
        assert_eq!(k.parts(), &[Value::Int(30), Value::Int(10)]);
        assert_eq!(k.arity(), 2);
    }

    #[test]
    fn debug_format() {
        let k = IndexKey::new(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(format!("{k:?}"), "k[1, 'a']");
    }
}
