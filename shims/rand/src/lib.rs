//! Offline shim exposing the subset of the `rand` 0.8 API this workspace
//! uses: `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! and `rngs::StdRng`. The generator is xoshiro256++ seeded via SplitMix64
//! — deterministic, fast, and statistically solid for workload generation
//! and tests (not cryptographic, same as upstream `StdRng`'s contract
//! here: reproducibility, not security).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their full domain (the `Standard`
/// distribution in upstream rand).
pub trait StandardSample {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over a sub-range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive` = false) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample from empty range");
                let span = span as u128;
                // Widening-multiply rejection-free mapping (Lemire); the
                // tiny modulo bias is irrelevant for test workloads.
                let x = ((rng.next_u64() as u128) * span) >> 64;
                (lo_w + x as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(hi > lo, "cannot sample from empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value sampled from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically constructible generators.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workhorse generator of this shim.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended seeding procedure.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "got {hits}");
    }
}
