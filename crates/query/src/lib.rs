//! Query substrate: the template class of the paper's Section 2.1, a
//! planner/executor for it, and the transactional machinery around it.
//!
//! The paper considers queries from templates
//!
//! ```text
//! qt: select Ls from R1, R2, …, Rn where Cjoin and Cselect;
//! ```
//!
//! where `Cjoin` holds the equi-join conditions plus parameterless
//! selections, and `Cselect = ∧ Ci` with each `Ci` a disjunction of
//! equality predicates (`∨ R.a = v_r`) or of *disjoint* intervals
//! (`∨ v_r < R.a < w_r`). This crate models exactly that class:
//!
//! * [`Interval`], [`Condition`] — the two disjunctive forms.
//! * [`QueryTemplate`], [`TemplateBuilder`], [`QueryInstance`] — templates
//!   and their parameter bindings.
//! * [`Database`] — catalog + secondary indexes + DML with delta capture.
//! * [`exec`] — an index-nested-loop executor and a naive full-scan oracle.
//! * [`lock`] — an S/X lock manager implementing the paper's Section 3.6
//!   protocol on PMVs.
//! * [`txn`] — transactions with undo, producing [`pmv_storage::DeltaBatch`]es.

pub mod condition;
pub mod dbview;
pub mod engine;
pub mod exec;
pub mod lock;
pub mod parser;
pub mod snapshot;
pub mod table_stats;
pub mod template;
pub mod txn;

pub use condition::{Condition, Interval};
pub use dbview::{DataView, DbSnapshot};
pub use engine::{Database, SnapStats};
pub use exec::{
    execute, execute_bounded, execute_bounded_arc, execute_scan, explain, join_fixed,
    upquery_fill, ExecBudget, ExecStats,
};
pub use lock::{LockManager, LockMode};
pub use parser::parse_template;
pub use table_stats::{ColumnStats, Histogram, RelationStats, TableStats};
pub use template::{
    AttrRef, CondForm, CondTemplate, QueryInstance, QueryTemplate, TemplateBuilder,
};
pub use txn::Transaction;

/// Which limit of an [`ExecBudget`] was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed mid-execution.
    Deadline,
    /// The tuple-examination cap was reached.
    Tuples,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetExceeded::Deadline => write!(f, "deadline exceeded"),
            BudgetExceeded::Tuples => write!(f, "tuple budget exceeded"),
        }
    }
}

/// Crate-wide error type.
#[derive(Debug)]
pub enum QueryError {
    /// Underlying storage failure.
    Storage(pmv_storage::StorageError),
    /// Template construction or binding problem.
    Template(String),
    /// Execution ran out of its [`ExecBudget`] (deadline or row cap).
    /// The caller may still hold sound partial results from the cache.
    Budget(BudgetExceeded),
    /// An injected fault fired mid-execution (see `pmv-faultinject`).
    /// Transient by construction: a retry draws a fresh decision.
    Fault(String),
    /// A write would duplicate an existing row on a declared unique key
    /// (see [`engine::Database::declare_unique_key`]). The write was
    /// rejected before touching the relation.
    Unique(String),
}

impl QueryError {
    /// Whether a retry of the same operation could plausibly succeed.
    /// Injected faults are transient; budget and template errors are not.
    pub fn is_transient(&self) -> bool {
        matches!(self, QueryError::Fault(_))
    }

    /// Whether this is a budget (deadline / row-cap) exhaustion.
    pub fn is_budget(&self) -> bool {
        matches!(self, QueryError::Budget(_))
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
            QueryError::Template(msg) => write!(f, "template error: {msg}"),
            QueryError::Budget(b) => write!(f, "execution budget: {b}"),
            QueryError::Fault(site) => write!(f, "injected fault at {site}"),
            QueryError::Unique(msg) => write!(f, "unique key violation: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<pmv_storage::StorageError> for QueryError {
    fn from(e: pmv_storage::StorageError) -> Self {
        QueryError::Storage(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, QueryError>;
