//! Integration tests for the Section 3.6 extensions: DISTINCT queries,
//! aggregate queries, EXISTS-nested queries, and popularity ranking.

mod common;

use common::{eqt_fixture, eqt_query};
use pmv::core::ext::{
    exists_accelerated, rank_by_popularity, run_aggregate, run_distinct, run_ordered, AggFn,
    AggValue, GroupBySpec, OrderBy,
};
use pmv::prelude::*;
use std::collections::HashSet;

fn new_pmv(template: &std::sync::Arc<pmv::query::QueryTemplate>) -> Pmv {
    Pmv::new(
        PartialViewDef::all_equality("ext_pmv", template.clone()).unwrap(),
        PmvConfig::new(3, 32, pmv::cache::PolicyKind::Clock),
    )
}

#[test]
fn distinct_returns_each_tuple_once() {
    let fx = eqt_fixture(120);
    let mut pmv = new_pmv(&fx.template);
    let pipeline = PmvPipeline::new();
    let q = eqt_query(&fx.template, &[1, 2, 3], &[0, 1]);

    // Warm so the next run serves partial results too.
    pipeline.run(&fx.db, &mut pmv, &q).unwrap();
    let out = run_distinct(&pipeline, &fx.db, &mut pmv, &q).unwrap();

    let all = out.all_results();
    let set: HashSet<&Tuple> = all.iter().collect();
    assert_eq!(set.len(), all.len(), "distinct output must not repeat");

    // Same distinct set as the oracle's.
    let (rows, _) = pmv::query::execute(&fx.db, &q).unwrap();
    let oracle_set: HashSet<Tuple> = rows.iter().map(|t| fx.template.user_tuple(t)).collect();
    assert_eq!(set.len(), oracle_set.len());
    for t in &all {
        assert!(oracle_set.contains(t));
    }
    // Partial and remaining never overlap.
    let p: HashSet<&Tuple> = out.partial.iter().collect();
    assert!(out.remaining.iter().all(|t| !p.contains(t)));
}

#[test]
fn aggregate_partial_bounds_exact() {
    let fx = eqt_fixture(150);
    let mut pmv = new_pmv(&fx.template);
    let pipeline = PmvPipeline::new();
    let q = eqt_query(&fx.template, &[1], &[1]);
    pipeline.run(&fx.db, &mut pmv, &q).unwrap();

    // COUNT grouped by r.a (user position 0).
    let spec = GroupBySpec {
        group_by: vec![0],
        agg: AggFn::Count,
    };
    let out = run_aggregate(&pipeline, &fx.db, &mut pmv, &q, &spec).unwrap();
    // Partial counts never exceed exact counts.
    for (group, pv) in &out.partial {
        let AggValue::Count(p) = pv else { panic!() };
        let exact = out
            .exact
            .iter()
            .find(|(g, _)| g == group)
            .map(|(_, v)| match v {
                AggValue::Count(n) => *n,
                _ => unreachable!(),
            })
            .expect("partial group must exist in exact groups");
        assert!(*p <= exact, "partial count {p} exceeds exact {exact}");
    }
    // Exact aggregates match a straight recount of the oracle.
    let (rows, _) = pmv::query::execute(&fx.db, &q).unwrap();
    let mut truth: std::collections::HashMap<Value, u64> = Default::default();
    for r in &rows {
        let user = fx.template.user_tuple(r);
        *truth.entry(user.get(0).clone()).or_insert(0) += 1;
    }
    assert_eq!(out.exact.len(), truth.len());
    for (group, v) in &out.exact {
        let AggValue::Count(n) = v else { panic!() };
        assert_eq!(truth[group.get(0)], *n);
    }
}

#[test]
fn aggregate_sum_partial_is_lower_bound_for_nonnegative() {
    let fx = eqt_fixture(150);
    let mut pmv = new_pmv(&fx.template);
    let pipeline = PmvPipeline::new();
    let q = eqt_query(&fx.template, &[2], &[2]);
    pipeline.run(&fx.db, &mut pmv, &q).unwrap();
    // SUM over s.e (user position 1); fixture values are non-negative.
    let spec = GroupBySpec {
        group_by: vec![],
        agg: AggFn::Sum(1),
    };
    let out = run_aggregate(&pipeline, &fx.db, &mut pmv, &q, &spec).unwrap();
    if let (Some((_, AggValue::Sum(p))), Some((_, AggValue::Sum(e)))) =
        (out.partial.first(), out.exact.first())
    {
        assert!(p <= e, "partial sum {p} exceeds exact {e}");
    }
}

#[test]
fn exists_fast_path_after_warming() {
    let fx = eqt_fixture(120);
    let mut pmv = new_pmv(&fx.template);
    let pipeline = PmvPipeline::new();
    // A subquery with at least one result.
    let q = eqt_query(&fx.template, &[1], &[1]);
    let (rows, _) = pmv::query::execute(&fx.db, &q).unwrap();
    assert!(!rows.is_empty(), "fixture must give the subquery results");

    // Cold: slow path executes (and warms the PMV).
    let out = exists_accelerated(&pipeline, &fx.db, &mut pmv, &q).unwrap();
    assert!(out.exists);
    assert!(!out.fast_path);

    // Warm: a cached witness answers without execution.
    let out = exists_accelerated(&pipeline, &fx.db, &mut pmv, &q).unwrap();
    assert!(out.exists);
    assert!(out.fast_path, "warm EXISTS must take the fast path");

    // A predicate with no results: never a false positive.
    let empty_q = eqt_query(&fx.template, &[999], &[999]);
    let out = exists_accelerated(&pipeline, &fx.db, &mut pmv, &empty_q).unwrap();
    assert!(!out.exists);
    assert!(!out.fast_path);
}

#[test]
fn ranking_orders_hot_results_first() {
    let fx = eqt_fixture(120);
    let mut pmv = new_pmv(&fx.template);
    let pipeline = PmvPipeline::new();
    let hot = eqt_query(&fx.template, &[1], &[1]);
    let cold = eqt_query(&fx.template, &[2], &[2]);
    // Make (1,1) popular: warm + several hits.
    for _ in 0..5 {
        pipeline.run(&fx.db, &mut pmv, &hot).unwrap();
    }
    // One query touching both cells.
    let both = eqt_query(&fx.template, &[1, 2], &[1, 2]);
    let out = pipeline.run(&fx.db, &mut pmv, &both).unwrap();
    let ranked = rank_by_popularity(&pmv, &out);
    assert!(!ranked.is_empty());
    // Popularity must be non-increasing.
    for w in ranked.windows(2) {
        assert!(w[0].1 >= w[1].1, "ranking not sorted: {:?}", ranked);
    }
    // The hot cell's tuples lead (its hit count is ≥ 4).
    assert!(ranked[0].1 >= 4, "hot results should lead: {:?}", ranked);
    let _ = pipeline.run(&fx.db, &mut pmv, &cold);
}

#[test]
fn order_by_delivers_sorted_prefix_and_total_order() {
    let fx = eqt_fixture(150);
    let mut pmv = new_pmv(&fx.template);
    let pipeline = PmvPipeline::new();
    let q = eqt_query(&fx.template, &[1, 2], &[0, 1]);
    pipeline.run(&fx.db, &mut pmv, &q).unwrap();

    let order = OrderBy::asc(&[1, 0]); // by s.e then r.a
    let out = run_ordered(&pipeline, &fx.db, &mut pmv, &q, &order).unwrap();
    // Partial prefix is sorted.
    for w in out.partial_sorted.windows(2) {
        assert_ne!(order.cmp(&w[0], &w[1]), std::cmp::Ordering::Greater);
    }
    // The full answer is totally sorted and matches the oracle multiset.
    for w in out.all_sorted.windows(2) {
        assert_ne!(order.cmp(&w[0], &w[1]), std::cmp::Ordering::Greater);
    }
    let (rows, _) = pmv::query::execute(&fx.db, &q).unwrap();
    assert_eq!(out.all_sorted.len(), rows.len());
}

#[test]
fn pmv_manager_routes_and_sheds() {
    let fx = eqt_fixture(120);
    let mut mgr = PmvManager::new().with_byte_budget(100_000);
    mgr.create_view(
        PartialViewDef::all_equality("mgr_pmv", fx.template.clone()).unwrap(),
        PmvConfig::default(),
    )
    .unwrap();
    for f in 0..7i64 {
        let q = eqt_query(&fx.template, &[f], &[f % 5]);
        let out = mgr.run(&fx.db, &q).unwrap();
        assert_eq!(out.ds_leftover, 0);
    }
    assert_eq!(mgr.aggregate_stats().queries, 7);
    assert_eq!(mgr.shed(), 0, "within budget, nothing to shed");
}
