//! End-to-end integration tests spanning all crates: the PMV pipeline
//! against a live database, with maintenance, baselines, and the TPC-R
//! workload.

mod common;

use common::{eqt_fixture, eqt_query, oracle};
use pmv::core::{SmallMvSet, TraditionalMv};
use pmv::prelude::*;
use pmv::query::Transaction;
use pmv::workload::queries::{t1_query, t2_query, template_t1, template_t2};
use pmv::workload::tpcr::{self, TpcrConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn new_pmv(template: &std::sync::Arc<pmv::query::QueryTemplate>, f: usize, l: usize) -> Pmv {
    let def = PartialViewDef::all_equality("it_pmv", template.clone()).unwrap();
    Pmv::new(def, PmvConfig::new(f, l, pmv::cache::PolicyKind::Clock))
}

#[test]
fn pipeline_equals_oracle_over_many_queries() {
    let fx = eqt_fixture(200);
    let mut pmv = new_pmv(&fx.template, 2, 16);
    let pipeline = PmvPipeline::new();
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..200 {
        let fs: Vec<i64> = (0..rng.gen_range(1..=3))
            .map(|_| rng.gen_range(0..7))
            .collect();
        let gs: Vec<i64> = (0..rng.gen_range(1..=3))
            .map(|_| rng.gen_range(0..5))
            .collect();
        let (fs, gs) = (dedup(fs), dedup(gs));
        let q = eqt_query(&fx.template, &fs, &gs);
        let expect = oracle(&fx.db, &q);
        let out = pipeline.run(&fx.db, &mut pmv, &q).unwrap();
        let mut got = out.all_results();
        got.sort();
        assert_eq!(got, expect);
        assert_eq!(out.ds_leftover, 0);
        pmv.store().validate();
    }
    assert!(pmv.stats().hit_probability() > 0.3, "PMV should get warm");
}

fn dedup(mut v: Vec<i64>) -> Vec<i64> {
    v.sort();
    v.dedup();
    v
}

#[test]
fn maintenance_keeps_pipeline_consistent() {
    let fx = eqt_fixture(100);
    let mut db = fx.db;
    let template = fx.template;
    let mut pmv = new_pmv(&template, 3, 64);
    let pipeline = PmvPipeline::new();
    let mut rng = StdRng::seed_from_u64(2);

    for round in 0..30 {
        // Mutate: one transaction with an insert, a delete, and an update.
        let mut txn = Transaction::begin(&mut db);
        let i = 1000 + round as i64;
        txn.insert("r", tuple![i, i % 51, i % 7]).unwrap();
        // Delete a random live r row.
        let live = db_relation_rows(&txn);
        let victim = live[rng.gen_range(0..live.len())];
        txn.delete("r", victim).expect("victim is live");
        let batches = txn.commit();
        for b in &batches {
            pipeline.maintain(&db, &mut pmv, b).unwrap();
        }

        // Every query must agree with the oracle and leave DS empty.
        for _ in 0..10 {
            let q = eqt_query(&template, &[rng.gen_range(0..7)], &[rng.gen_range(0..5)]);
            let expect = oracle(&db, &q);
            let out = pipeline.run(&db, &mut pmv, &q).unwrap();
            let mut got = out.all_results();
            got.sort();
            assert_eq!(got, expect, "round {round}");
            assert_eq!(out.ds_leftover, 0, "stale tuple served in round {round}");
        }
        pmv.store().validate();
    }
}

/// Live row ids of relation r (helper: transactions see their own writes).
fn db_relation_rows(txn: &Transaction<'_>) -> Vec<pmv::storage::RowId> {
    // Access through a fresh handle: Transaction has no iterator, so scan
    // via get() probes on a bounded id range.
    (0..2_000u32)
        .map(pmv::storage::RowId)
        .filter(|&r| txn.get("r", r).is_ok())
        .collect()
}

#[test]
fn update_of_irrelevant_attribute_is_free() {
    let fx = eqt_fixture(50);
    let mut db = fx.db;
    let template = fx.template;
    // Template selects r.a, s.e; conditions on r.f, s.g; join on r.c=s.d.
    // Column s.e IS in Ls', so to build an irrelevant update we add a
    // spare column... instead verify the relevant-attribute arm: updating
    // s.e must evict.
    let mut pmv = new_pmv(&template, 3, 64);
    let pipeline = PmvPipeline::new();
    let q = eqt_query(&template, &[1], &[1]);
    pipeline.run(&db, &mut pmv, &q).unwrap();
    let before = pmv.store().tuple_count();
    assert!(before > 0);

    // Update an s row that joins: change e (in Ls').
    let handle = db.relation("s").unwrap();
    let target = handle
        .read()
        .iter()
        .find(|(_, t)| t.get(2) == &Value::Int(1))
        .map(|(r, t)| (r, t.clone()))
        .unwrap();
    drop(handle);
    let mut vals: Vec<Value> = target.1.values().to_vec();
    vals[1] = Value::Int(999_999);
    let mut txn = Transaction::begin(&mut db);
    txn.update("s", target.0, Tuple::new(vals)).unwrap();
    let batches = txn.commit();
    let mut joined = 0;
    for b in &batches {
        let out = pipeline.maintain(&db, &mut pmv, b).unwrap();
        joined += out.updates_joined;
    }
    assert_eq!(joined, 1, "Ls' attribute change must trigger the join arm");

    // Consistency preserved.
    let expect = oracle(&db, &q);
    let out = pipeline.run(&db, &mut pmv, &q).unwrap();
    let mut got = out.all_results();
    got.sort();
    assert_eq!(got, expect);
    assert_eq!(out.ds_leftover, 0);
}

#[test]
fn traditional_mv_answers_match_pipeline() {
    let fx = eqt_fixture(120);
    let mv = TraditionalMv::materialize(&fx.db, fx.template.clone()).unwrap();
    let mut pmv = new_pmv(&fx.template, 5, 64);
    let pipeline = PmvPipeline::new();
    for f in 0..7i64 {
        for g in 0..5i64 {
            let q = eqt_query(&fx.template, &[f], &[g]);
            let mut from_mv: Vec<Tuple> = mv
                .answer(&q)
                .iter()
                .map(|t| fx.template.user_tuple(t))
                .collect();
            from_mv.sort();
            let out = pipeline.run(&fx.db, &mut pmv, &q).unwrap();
            let mut got = out.all_results();
            got.sort();
            assert_eq!(got, from_mv, "f={f} g={g}");
        }
    }
}

#[test]
fn small_mv_stores_all_tuples_pmv_stores_at_most_f() {
    let fx = eqt_fixture(300);
    let def = PartialViewDef::all_equality("x", fx.template.clone()).unwrap();
    // Find the densest bcp via the full join.
    let (all, _) = pmv::query::exec::full_join(&fx.db, &fx.template).unwrap();
    let mut counts = std::collections::HashMap::new();
    for t in &all {
        *counts.entry(def.bcp_of_tuple(t)).or_insert(0usize) += 1;
    }
    let (hot, hot_count) = counts
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(k, &c)| (k.clone(), c))
        .unwrap();
    assert!(hot_count > 2);

    let set = SmallMvSet::materialize(&fx.db, def, std::slice::from_ref(&hot)).unwrap();
    assert_eq!(set.lookup(&hot).unwrap().len(), hot_count);

    // The PMV with F = 2 caps the same bcp at 2.
    let mut pmv = new_pmv(&fx.template, 2, 64);
    let pipeline = PmvPipeline::new();
    let q = pmv.bcp_query(&hot).unwrap();
    pipeline.run(&fx.db, &mut pmv, &q).unwrap();
    assert_eq!(pmv.store().lookup(&hot).unwrap().len(), 2);
}

#[test]
fn tpcr_t1_t2_end_to_end() {
    let mut db = Database::new();
    tpcr::generate(
        &mut db,
        &TpcrConfig {
            scale: 0.002,
            seed: 9,
            pad: false,
            date_supplier_pool: Some(2),
        },
    )
    .unwrap();
    tpcr::standard_indexes(&mut db).unwrap();
    let pipeline = PmvPipeline::new();

    let t1 = template_t1(&db).unwrap();
    let mut pmv1 = Pmv::new(
        PartialViewDef::all_equality("t1", t1.clone()).unwrap(),
        PmvConfig::default(),
    );
    // Pick a real (date, supp).
    let mut date = 0;
    let mut supp = 0;
    db.with_relation("orders", |r| {
        let (_, t) = r.iter().next().unwrap();
        date = t.get(2).as_int().unwrap();
    })
    .unwrap();
    db.with_relation("lineitem", |r| {
        let (_, t) = r.iter().next().unwrap();
        supp = t.get(1).as_int().unwrap();
    })
    .unwrap();

    let q = t1_query(&t1, &[date], &[supp]).unwrap();
    let cold = pipeline.run(&db, &mut pmv1, &q).unwrap();
    let warm = pipeline.run(&db, &mut pmv1, &q).unwrap();
    let mut a = cold.all_results();
    let mut b = warm.all_results();
    a.sort();
    b.sort();
    assert_eq!(a, b, "warm and cold answers must agree");
    assert!(warm.bcp_hit);

    let t2 = template_t2(&db).unwrap();
    let mut pmv2 = Pmv::new(
        PartialViewDef::all_equality("t2", t2.clone()).unwrap(),
        PmvConfig::default(),
    );
    let q2 = t2_query(
        &t2,
        &[date, (date + 1) % tpcr::NUM_DATES],
        &[supp],
        &[0, 1, 2],
    )
    .unwrap();
    let out = pipeline.run(&db, &mut pmv2, &q2).unwrap();
    assert_eq!(out.ds_leftover, 0);
    assert_eq!(out.parts, 6); // e=2, f=1, g=3
}

#[test]
fn hit_probability_grows_with_h_on_real_engine() {
    // The Figure 6 trend reproduced on the actual pipeline (not the
    // simulator): more bcps per query ⇒ more chances to hit.
    let fx = eqt_fixture(400);
    let pipeline = PmvPipeline::new();
    let mut rng = StdRng::seed_from_u64(5);
    let mut hit_rates = Vec::new();
    for h in [1usize, 3] {
        let mut pmv = new_pmv(&fx.template, 2, 12);
        for _ in 0..600 {
            let fs: Vec<i64> = dedup((0..h).map(|_| rng.gen_range(0..7)).collect());
            let q = eqt_query(&fx.template, &fs, &[rng.gen_range(0..5)]);
            pipeline.run(&fx.db, &mut pmv, &q).unwrap();
        }
        hit_rates.push(pmv.stats().hit_probability());
    }
    assert!(
        hit_rates[1] > hit_rates[0],
        "h=3 ({}) must beat h=1 ({})",
        hit_rates[1],
        hit_rates[0]
    );
}

#[test]
fn maint_filter_does_not_change_outcomes() {
    // Same workload with and without the Section 3.4 filter: identical
    // query answers and identical eviction effects.
    for use_filter in [false, true] {
        let fx = eqt_fixture(80);
        let mut db = fx.db;
        let template = fx.template;
        let mut config = PmvConfig::new(3, 32, pmv::cache::PolicyKind::Clock);
        config.maint_filter = use_filter;
        let mut pmv = Pmv::new(
            PartialViewDef::all_equality("filt", template.clone()).unwrap(),
            config,
        );
        let pipeline = PmvPipeline::new();
        let mut rng = StdRng::seed_from_u64(77);
        for round in 0..20 {
            let q = eqt_query(&template, &[rng.gen_range(0..7)], &[rng.gen_range(0..5)]);
            let expect = oracle(&db, &q);
            let out = pipeline.run(&db, &mut pmv, &q).unwrap();
            let mut got = out.all_results();
            got.sort();
            assert_eq!(got, expect, "filter={use_filter} round={round}");
            assert_eq!(out.ds_leftover, 0);
            // Delete something.
            let handle = db.relation("r").unwrap();
            let victim = {
                let guard = handle.read();
                let live: Vec<_> = guard.iter().map(|(r, _)| r).collect();
                live[rng.gen_range(0..live.len())]
            };
            let mut txn = Transaction::begin(&mut db);
            txn.delete("r", victim).unwrap();
            for b in txn.commit() {
                pipeline.maintain(&db, &mut pmv, &b).unwrap();
            }
            assert_eq!(pmv.revalidate(&db).unwrap(), 0, "no stale tuples");
            pmv.store().validate();
        }
        if use_filter {
            assert!(
                pmv.store().joins_avoided() > 0,
                "the filter should have skipped some joins"
            );
        }
    }
}
