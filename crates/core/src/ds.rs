//! The temporary in-memory data structure `DS` of Operation O2/O3
//! (Section 3.3): a multiset of the result tuples already returned from
//! the PMV, consulted during full execution so each result tuple reaches
//! the user exactly once.
//!
//! Multiset semantics matter: "Query results can contain duplicate
//! tuples. In the case that t∈DS, if t is not removed from DS and later
//! another tuple t' = t comes, the user can miss some result tuples."

use std::sync::Arc;

use crate::fasthash::FxHashMap;
use pmv_storage::Tuple;

/// Multiset of `Ls'`-layout result tuples.
///
/// Keys are `Arc<Tuple>` shared with the PMV store and the query
/// outcome, so building DS from served partials copies pointers, not
/// tuples. Lookups still take `&Tuple` (via `Borrow`), so the executor
/// can probe with borrowed tuples. The table hashes with
/// [`crate::fasthash::FxHasher`]: every O3 result tuple probes DS, and
/// the profiled `o3_dedup` cost was mostly SipHash, not dedup logic.
#[derive(Default)]
pub struct Ds {
    counts: FxHashMap<Arc<Tuple>, usize>,
    len: usize,
    peak: usize,
}

impl Ds {
    /// Empty DS.
    pub fn new() -> Self {
        Ds::default()
    }

    /// Add one occurrence of `t` (shared, zero-copy).
    pub fn insert_arc(&mut self, t: Arc<Tuple>) {
        *self.counts.entry(t).or_insert(0) += 1;
        self.len += 1;
        self.peak = self.peak.max(self.len);
    }

    /// Add one occurrence of `t`.
    pub fn insert(&mut self, t: Tuple) {
        self.insert_arc(Arc::new(t));
    }

    /// Remove one occurrence of `t`; returns whether one was present.
    pub fn remove_one(&mut self, t: &Tuple) -> bool {
        match self.counts.get_mut(t) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    self.counts.remove(t);
                }
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Whether at least one occurrence of `t` is present.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.counts.contains_key(t)
    }

    /// Total occurrences stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no occurrences remain — the end-of-O3 invariant ("after
    /// all the result tuples have been processed, DS must be empty").
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest size DS reached (diagnostic).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Empty the multiset, keeping the allocated table so a pooled DS
    /// can be reused across queries without reallocating.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.len = 0;
        self.peak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_storage::tuple;

    #[test]
    fn multiset_counts_occurrences() {
        let mut ds = Ds::new();
        ds.insert(tuple![1i64]);
        ds.insert(tuple![1i64]);
        ds.insert(tuple![2i64]);
        assert_eq!(ds.len(), 3);
        assert!(ds.remove_one(&tuple![1i64]));
        assert!(ds.contains(&tuple![1i64]));
        assert!(ds.remove_one(&tuple![1i64]));
        assert!(!ds.contains(&tuple![1i64]));
        assert!(!ds.remove_one(&tuple![1i64]));
        assert_eq!(ds.len(), 1);
        assert!(!ds.is_empty());
        assert!(ds.remove_one(&tuple![2i64]));
        assert!(ds.is_empty());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut ds = Ds::new();
        for i in 0..5i64 {
            ds.insert(tuple![i]);
        }
        for i in 0..5i64 {
            ds.remove_one(&tuple![i]);
        }
        assert_eq!(ds.peak(), 5);
        assert!(ds.is_empty());
    }

    #[test]
    fn the_paper_duplicate_scenario() {
        // Serve one copy of t from the PMV; execution then produces two
        // copies. Exactly one must be suppressed.
        let mut ds = Ds::new();
        let t = tuple![9i64, 9i64];
        ds.insert(t.clone()); // served in O2
        let mut returned = 0;
        for produced in [t.clone(), t.clone()] {
            if ds.remove_one(&produced) {
                continue; // already given to the user
            }
            returned += 1;
        }
        assert_eq!(returned, 1);
        assert!(ds.is_empty());
    }
}
