//! Deferred PMV maintenance (Section 3.4).
//!
//! Upon a change `ΔR_i` to a base relation of the PMV:
//!
//! * **Insert** — "existing tuples in V_PM are not affected by this
//!   insert. Hence, V_PM is not maintained immediately." New result tuples
//!   flow in later, for free, through Operation O3 (the `c_j < F` refill
//!   path). The store's insert watermark is bumped so completeness claims
//!   ([`crate::store::PmvStore::entry_complete`]) lapse.
//! * **Delete** — remove every cached view tuple the deleted base tuple
//!   supports. Three strategies ([`MaintStrategy`]):
//!   [`MaintStrategy::DeltaJoin`] computes `ΔR_i ⋈ R_j (j ≠ i)` and
//!   removes each join result found in the PMV (the paper's scheme);
//!   [`MaintStrategy::Indexed`] consults the per-view
//!   [`crate::delta_index::DeltaKeyIndex`] and removes the supported
//!   tuples directly — `O(|Δ| · fanout)`, no base-relation join;
//!   [`MaintStrategy::HeavyLight`] (default) routes *hot* delta keys
//!   (per a space-saving sketch) through the index and coalesces the
//!   cold tail into one join per distinct deleted tuple.
//! * **Update** — if no attribute of `R_i` appearing in `Ls'` or `Cjoin`
//!   changed, do nothing; otherwise proceed like a delete of the old
//!   tuple (the insert side again needs no work).
//!
//! Maintenance takes an X lock on the PMV, which is what makes the O2/O3
//! S lock sufficient for serializability (Section 3.6).
//!
//! **Cross-relation transactions.** A transaction deleting *matching*
//! tuples from two base relations defeats the per-delta join: each
//! relation's `ΔR` join runs against base state with the other
//! relation's deletions already applied, so the joint derivation is
//! invisible to both. [`PmvPipeline::maintain_all`] closes this gap with
//! a union pass: every combination of two or more deleted tuples from
//! distinct relations is re-bound explicitly
//! ([`pmv_query::exec::join_fixed`]) and its derived view rows removed.
//! The indexed path is immune by construction — it consults only the
//! cached view side, never base state.

use std::collections::HashSet;

use pmv_obs::Phase;
use pmv_query::{
    exec::{join_fixed, join_from},
    Database, QueryTemplate,
};
use pmv_storage::{Delta, DeltaBatch, Tuple};

use crate::fasthash::FxHashMap;
use crate::pipeline::{Pmv, PmvPipeline};
use crate::view::MaintStrategy;
use crate::Result;

/// What maintenance did for one delta batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceOutcome {
    /// Inserts that required no PMV work.
    pub inserts_ignored: usize,
    /// Deletes processed (any strategy).
    pub deletes_joined: usize,
    /// Updates skipped (no relevant attribute changed).
    pub updates_ignored: usize,
    /// Updates processed like deletes.
    pub updates_joined: usize,
    /// Join result rows computed across all ΔR joins.
    pub join_rows: usize,
    /// View tuples actually removed from the PMV.
    pub view_tuples_removed: usize,
    /// Of those, tuples removed through the delta-key index (no join).
    pub index_removals: usize,
    /// Deltas routed through the indexed (heavy) path.
    pub heavy_deltas: usize,
    /// Deltas routed through the coalesced-join (light) path.
    pub light_deltas: usize,
    /// Coalesced ΔR joins actually executed for the light path.
    pub coalesced_joins: usize,
    /// ΔR joins skipped by the Section 3.4 maintenance filter.
    pub joins_avoided: usize,
    /// ΔR join attempts retried after a transient failure.
    pub retries: usize,
    /// Deltas whose join kept failing: the affected shards were drained
    /// (quarantined) instead of repaired — removal-only, never stale.
    pub fallback_invalidations: usize,
    /// True when the batch's relation is not a base relation of this PMV.
    pub unrelated_relation: bool,
}

impl MaintenanceOutcome {
    /// Fold another outcome into this one (counter fields only;
    /// `unrelated_relation` is OR-ed).
    pub fn absorb(&mut self, o: &MaintenanceOutcome) {
        self.inserts_ignored += o.inserts_ignored;
        self.deletes_joined += o.deletes_joined;
        self.updates_ignored += o.updates_ignored;
        self.updates_joined += o.updates_joined;
        self.join_rows += o.join_rows;
        self.view_tuples_removed += o.view_tuples_removed;
        self.index_removals += o.index_removals;
        self.heavy_deltas += o.heavy_deltas;
        self.light_deltas += o.light_deltas;
        self.coalesced_joins += o.coalesced_joins;
        self.joins_avoided += o.joins_avoided;
        self.retries += o.retries;
        self.fallback_invalidations += o.fallback_invalidations;
        self.unrelated_relation |= o.unrelated_relation;
    }
}

impl PmvPipeline {
    /// Apply one relation's delta batch to the PMV.
    pub fn maintain(
        &self,
        db: &Database,
        pmv: &mut Pmv,
        batch: &DeltaBatch,
    ) -> Result<MaintenanceOutcome> {
        let mut out = MaintenanceOutcome::default();
        let template = pmv.def().template().clone();
        let Some(rel_idx) = template
            .relations()
            .iter()
            .position(|r| r == batch.relation())
        else {
            out.unrelated_relation = true;
            return Ok(out);
        };

        let relevant = relevant_columns(&template, rel_idx);
        let strategy = pmv.config.effective_strategy();
        let _x_lock = self.locks().lock_exclusive(pmv.def().name());

        // Cold-tail accumulator (HeavyLight): distinct deleted tuple →
        // occurrence count, joined once per distinct tuple at batch end.
        let mut light_order: Vec<&Tuple> = Vec::new();
        let mut light_counts: FxHashMap<&Tuple, usize> = FxHashMap::default();

        for delta in batch.deltas() {
            match delta {
                Delta::Insert { .. } => {
                    out.inserts_ignored += 1;
                    pmv.stats.maint_inserts_ignored += 1;
                    // Lazily expire completeness claims: the insert may
                    // belong in a cached-and-complete bcp's answer.
                    pmv.store.note_insert();
                }
                Delta::Delete { tuple, .. } => {
                    out.deletes_joined += 1;
                    pmv.stats.maint_deletes_joined += 1;
                    route_delta(
                        db,
                        pmv,
                        &template,
                        rel_idx,
                        tuple,
                        strategy,
                        &mut light_order,
                        &mut light_counts,
                        &mut out,
                    )?;
                }
                Delta::Update { old, .. } => {
                    let changed = delta.changed_columns();
                    if changed.iter().any(|c| relevant.contains(c)) {
                        out.updates_joined += 1;
                        pmv.stats.maint_updates_joined += 1;
                        // An update is delete(old) + insert(new): the old
                        // image's rows are removed below, and the NEW
                        // image may grow some other bcp's truth — expire
                        // completeness claims like any insert.
                        pmv.store.note_insert();
                        route_delta(
                            db,
                            pmv,
                            &template,
                            rel_idx,
                            old,
                            strategy,
                            &mut light_order,
                            &mut light_counts,
                            &mut out,
                        )?;
                    } else {
                        out.updates_ignored += 1;
                        pmv.stats.maint_updates_ignored += 1;
                    }
                }
            }
        }

        // Light path: one ΔR join per *distinct* deleted tuple, removal
        // applied once per occurrence. Equivalent to the per-delta joins
        // it replaces — every join runs against the same post-delta base
        // state, so identical tuples produce identical row sets.
        for t in light_order {
            let occurrences = light_counts[t];
            let t_join = std::time::Instant::now();
            if !pmv.store.may_affect(rel_idx, t) {
                out.joins_avoided += 1;
                continue;
            }
            let rows = join_from(db, &template, rel_idx, t)?;
            out.coalesced_joins += 1;
            pmv.stats.maint_coalesced_joins += 1;
            out.join_rows += rows.len() * occurrences;
            pmv.stats.maint_join_rows += (rows.len() * occurrences) as u64;
            for _ in 0..occurrences {
                for row in &rows {
                    let bcp = pmv.def.bcp_of_tuple(row);
                    if pmv.store.remove_tuple(&bcp, row) {
                        out.view_tuples_removed += 1;
                        pmv.stats.maint_tuples_removed += 1;
                    }
                }
            }
            pmv.obs.record(Phase::maint_join, t_join.elapsed());
        }

        pmv.last_verified = std::time::Instant::now();
        Ok(out)
    }

    /// Apply several batches (e.g. a whole transaction's) in order, then
    /// run the cross-relation union pass: when two or more relations
    /// carry deletions, re-bind every multi-relation combination of
    /// deleted tuples and remove the view rows they jointly derived —
    /// the derivations the per-relation ΔR joins cannot see.
    pub fn maintain_all(
        &self,
        db: &Database,
        pmv: &mut Pmv,
        batches: &[DeltaBatch],
    ) -> Result<MaintenanceOutcome> {
        let mut total = MaintenanceOutcome::default();
        for b in batches {
            let o = self.maintain(db, pmv, b)?;
            total.absorb(&o);
        }
        let template = pmv.def().template().clone();
        let combos = cross_delta_combos(&template, batches);
        if !combos.is_empty() {
            let _x_lock = self.locks().lock_exclusive(pmv.def().name());
            let t_join = std::time::Instant::now();
            for combo in &combos {
                let rows = join_fixed(db, &template, combo)?;
                total.join_rows += rows.len();
                pmv.stats.maint_join_rows += rows.len() as u64;
                for row in rows {
                    let bcp = pmv.def.bcp_of_tuple(&row);
                    if pmv.store.remove_tuple(&bcp, &row) {
                        total.view_tuples_removed += 1;
                        pmv.stats.maint_tuples_removed += 1;
                    }
                }
            }
            pmv.obs.record(Phase::maint_join, t_join.elapsed());
            pmv.last_verified = std::time::Instant::now();
        }
        // Per-batch relevance is reported on the individual outcomes;
        // the transaction-level total keeps the historical `false`.
        total.unrelated_relation = false;
        Ok(total)
    }
}

/// Route one relevant delete (or update-old) through the configured
/// strategy. The light path only *accumulates* here; the caller runs the
/// coalesced joins after the batch loop.
#[allow(clippy::too_many_arguments)]
fn route_delta<'a>(
    db: &Database,
    pmv: &mut Pmv,
    template: &QueryTemplate,
    rel_idx: usize,
    tuple: &'a Tuple,
    strategy: MaintStrategy,
    light_order: &mut Vec<&'a Tuple>,
    light_counts: &mut FxHashMap<&'a Tuple, usize>,
    out: &mut MaintenanceOutcome,
) -> Result<()> {
    match strategy {
        MaintStrategy::DeltaJoin => remove_joined(db, pmv, template, rel_idx, tuple, out),
        MaintStrategy::Indexed => {
            if !remove_indexed(pmv, rel_idx, tuple, out) {
                // Relation unindexable (contributes nothing to `Ls'`):
                // fall back to the exact join.
                remove_joined(db, pmv, template, rel_idx, tuple, out)?;
            }
            Ok(())
        }
        MaintStrategy::HeavyLight => {
            let Some(h) = pmv.store.delta_key_hash(rel_idx, tuple) else {
                // No index or unindexable relation: the cold path's join
                // is the only sound option.
                accumulate_light(tuple, light_order, light_counts);
                out.light_deltas += 1;
                pmv.stats.maint_light_deltas += 1;
                return Ok(());
            };
            // The sketch overestimates evicted keys (space-saving), which
            // only routes extra deltas through the always-sound indexed
            // path. (The sharded embedding feeds the attached workload
            // account's sketch instead.)
            let count = pmv.delta_sketch.note(h);
            if count >= pmv.config.heavy_threshold {
                out.heavy_deltas += 1;
                pmv.stats.maint_heavy_deltas += 1;
                if !remove_indexed(pmv, rel_idx, tuple, out) {
                    remove_joined(db, pmv, template, rel_idx, tuple, out)?;
                }
            } else {
                accumulate_light(tuple, light_order, light_counts);
                out.light_deltas += 1;
                pmv.stats.maint_light_deltas += 1;
            }
            Ok(())
        }
    }
}

/// Add one occurrence of `tuple` to the cold-tail group.
fn accumulate_light<'a>(
    tuple: &'a Tuple,
    order: &mut Vec<&'a Tuple>,
    counts: &mut FxHashMap<&'a Tuple, usize>,
) {
    match counts.get_mut(tuple) {
        Some(n) => *n += 1,
        None => {
            counts.insert(tuple, 1);
            order.push(tuple);
        }
    }
}

/// Indexed removal: drop exactly the cached view tuples the deleted base
/// tuple supports — `O(fanout)`, no base-relation access, hence immune
/// to cross-relation delete ordering. Returns `false` when the relation
/// is unindexable (no delta-key columns) and the caller must join.
fn remove_indexed(pmv: &mut Pmv, rel_idx: usize, tuple: &Tuple, out: &mut MaintenanceOutcome) -> bool {
    let t_index = std::time::Instant::now();
    let Some(supported) = pmv.store.supported(rel_idx, tuple) else {
        return false;
    };
    if supported.is_empty() {
        out.joins_avoided += 1;
    }
    for (bcp, t) in supported {
        if pmv.store.remove_tuple(&bcp, &t) {
            out.view_tuples_removed += 1;
            out.index_removals += 1;
            pmv.stats.maint_tuples_removed += 1;
            pmv.stats.maint_index_removals += 1;
        }
    }
    pmv.obs.record(Phase::maint_index, t_index.elapsed());
    true
}

/// Columns of relation `rel_idx` whose change can affect cached view
/// tuples: those in `Ls'` or in `Cjoin` (join attributes and fixed
/// predicates). Shared with the sharded maintenance path in
/// [`crate::concurrent`].
pub(crate) fn relevant_columns(
    template: &pmv_query::QueryTemplate,
    rel_idx: usize,
) -> HashSet<usize> {
    let mut cols = HashSet::new();
    for a in template.expanded_list() {
        if a.relation == rel_idx {
            cols.insert(a.column);
        }
    }
    for j in template.joins() {
        if j.left.relation == rel_idx {
            cols.insert(j.left.column);
        }
        if j.right.relation == rel_idx {
            cols.insert(j.right.column);
        }
    }
    for fp in template.fixed_preds() {
        if fp.attr.relation == rel_idx {
            cols.insert(fp.attr.column);
        }
    }
    cols
}

/// The combinations the cross-relation union pass must re-bind: every
/// choice of deleted (or relevantly-updated) tuples from **two or more
/// distinct relations** of `template` across `batches`. Combinations
/// binding a single relation are already covered by the per-delta joins;
/// a choice here plus the current base state for the unbound relations
/// reconstructs exactly the derivations those joins missed. Shared with
/// the sharded maintenance path in [`crate::concurrent`].
pub(crate) fn cross_delta_combos<'a>(
    template: &QueryTemplate,
    batches: &'a [DeltaBatch],
) -> Vec<Vec<(usize, &'a Tuple)>> {
    let n = template.relations().len();
    let mut per: Vec<Vec<&Tuple>> = vec![Vec::new(); n];
    for b in batches {
        let Some(rel) = template
            .relations()
            .iter()
            .position(|r| r == b.relation())
        else {
            continue;
        };
        let relevant = relevant_columns(template, rel);
        for d in b.deltas() {
            match d {
                Delta::Delete { tuple, .. } => per[rel].push(tuple),
                Delta::Update { old, .. } => {
                    if d.changed_columns().iter().any(|c| relevant.contains(c)) {
                        per[rel].push(old);
                    }
                }
                Delta::Insert { .. } => {}
            }
        }
    }
    let rels: Vec<usize> = (0..n).filter(|&i| !per[i].is_empty()).collect();
    if rels.len() < 2 {
        return Vec::new();
    }
    let mut combos = Vec::new();
    let mut cur: Vec<(usize, &Tuple)> = Vec::new();
    combo_rec(template, &per, &rels, 0, &mut cur, &mut combos);
    combos
}

/// Enumerate each relation's choices (unbound, or one of its deleted
/// tuples), keeping combinations with ≥ 2 bound relations. Join
/// conditions between bound pairs prune the enumeration; `join_fixed`
/// re-checks them, so pruning is a pure optimization.
fn combo_rec<'a>(
    template: &QueryTemplate,
    per: &[Vec<&'a Tuple>],
    rels: &[usize],
    depth: usize,
    cur: &mut Vec<(usize, &'a Tuple)>,
    out: &mut Vec<Vec<(usize, &'a Tuple)>>,
) {
    if depth == rels.len() {
        if cur.len() >= 2 {
            out.push(cur.clone());
        }
        return;
    }
    // Leave this relation unbound (scanned from current base state).
    combo_rec(template, per, rels, depth + 1, cur, out);
    let rel = rels[depth];
    'cand: for &t in &per[rel] {
        for j in template.joins() {
            let (this, other) = if j.left.relation == rel {
                (j.left, j.right)
            } else if j.right.relation == rel {
                (j.right, j.left)
            } else {
                continue;
            };
            if let Some(&(_, b)) = cur.iter().find(|(r, _)| *r == other.relation) {
                if t.get(this.column) != b.get(other.column) {
                    continue 'cand;
                }
            }
        }
        cur.push((rel, t));
        combo_rec(template, per, rels, depth + 1, cur, out);
        cur.pop();
    }
}

/// Delete/update arm of [`MaintStrategy::DeltaJoin`]: join the old tuple
/// against the other base relations and evict every matching view tuple.
fn remove_joined(
    db: &Database,
    pmv: &mut Pmv,
    template: &pmv_query::QueryTemplate,
    rel_idx: usize,
    tuple: &Tuple,
    out: &mut MaintenanceOutcome,
) -> Result<()> {
    // Section 3.4 / [25]: light indices on V_PM attributes can prove the
    // deleted tuple touches nothing cached, skipping the join.
    if !pmv.store.may_affect(rel_idx, tuple) {
        out.joins_avoided += 1;
        return Ok(());
    }
    let t_join = std::time::Instant::now();
    let rows = join_from(db, template, rel_idx, tuple)?;
    out.join_rows += rows.len();
    pmv.stats.maint_join_rows += rows.len() as u64;
    for row in rows {
        let bcp = pmv.def().bcp_of_tuple(&row);
        if pmv.store.remove_tuple(&bcp, &row) {
            out.view_tuples_removed += 1;
            pmv.stats.maint_tuples_removed += 1;
        }
    }
    pmv.obs.record(Phase::maint_join, t_join.elapsed());
    Ok(())
}
