//! The PMV query pipeline: Operations O1, O2, O3 (Section 3.3).
//!
//! * **O1** — break the query's `Cselect` into condition parts
//!   ([`crate::o1::decompose`]).
//! * **O2** — under an S lock on the PMV, probe the bcp index for each
//!   part's containing bcp; matching cached tuples are returned to the
//!   user *immediately* and recorded in the dedup multiset `DS`.
//! * **O3** — execute the query in full; each produced tuple is either
//!   matched against `DS` (already served — suppress) or returned now and
//!   offered to the PMV (fill/update "for free"), respecting the
//!   per-bcp cap `F` via the counters `c_j`.
//!
//! The S lock is held from O2 through the end of O3, so no maintainer
//! (which takes an X lock) can make the served partial results
//! inconsistent with the full execution — the paper's Section 3.6
//! serializability argument. The end-of-O3 invariant "DS must be empty"
//! is checked and surfaced in the outcome.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pmv_obs::{EventKind, ObsRegistry, Phase, SpaceSaving, TraceKind, DEFAULT_SKETCH_CAPACITY};
use pmv_query::{
    execute, execute_bounded_arc, upquery_fill, Database, ExecBudget, ExecStats, LockManager,
    QueryInstance,
};
use pmv_storage::Tuple;

use crate::bcp::BcpKey;
use crate::ds::Ds;
use crate::health::{CircuitBreaker, Degradation, DegradeReason, ViewHealth};
use crate::o1::{decompose, ConditionPart};
use crate::stats::PmvStats;
use crate::store::{PmvStore, Residency};
use crate::view::{PartialViewDef, PmvConfig};
use crate::Result;

/// A live partial materialized view: definition + bounded store + stats.
pub struct Pmv {
    pub(crate) def: PartialViewDef,
    pub(crate) config: PmvConfig,
    pub(crate) store: PmvStore,
    pub(crate) stats: PmvStats,
    pub(crate) breaker: CircuitBreaker,
    /// When the view last completed maintenance or revalidation — the
    /// reference point for the staleness bound in degraded outcomes.
    pub(crate) last_verified: Instant,
    /// Per-phase latency histograms + lifecycle trace ring.
    pub(crate) obs: ObsRegistry,
    /// Space-saving sketch over delta-key hashes — the heavy/light
    /// router for [`crate::view::MaintStrategy::HeavyLight`].
    pub(crate) delta_sketch: SpaceSaving,
}

impl Pmv {
    /// Create an (initially empty) PMV.
    pub fn new(def: PartialViewDef, config: PmvConfig) -> Self {
        let mut store = PmvStore::new(&config);
        if config.maint_filter {
            store.enable_index(crate::delta_index::DeltaKeyIndex::new(def.template()));
        }
        let breaker = CircuitBreaker::new(config.breaker);
        Pmv {
            def,
            config,
            store,
            stats: PmvStats::default(),
            breaker,
            last_verified: Instant::now(),
            obs: ObsRegistry::new(),
            delta_sketch: SpaceSaving::new(DEFAULT_SKETCH_CAPACITY),
        }
    }

    /// Per-phase latency histograms and the lifecycle trace ring
    /// (`obs().set_enabled(false)` reduces recording to a relaxed load
    /// per call site).
    pub fn obs(&self) -> &ObsRegistry {
        &self.obs
    }

    /// Time since the view last completed maintenance or revalidation —
    /// the breaker-state *age* surfaced by health reports.
    pub fn last_verified_age(&self) -> Duration {
        self.last_verified.elapsed()
    }

    /// The view definition.
    pub fn def(&self) -> &PartialViewDef {
        &self.def
    }

    /// The tuning knobs.
    pub fn config(&self) -> &PmvConfig {
        &self.config
    }

    /// The bounded store (read access).
    pub fn store(&self) -> &PmvStore {
        &self.store
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &PmvStats {
        &self.stats
    }

    /// Zero the statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = PmvStats::default();
    }

    /// Build the query instance selecting exactly the tuples of `bcp`
    /// (each dimension pinned to the equality value / basic interval).
    pub fn bcp_query(&self, bcp: &BcpKey) -> Result<QueryInstance> {
        self.def.bcp_query(bcp)
    }

    /// Current health of this view's circuit breaker.
    pub fn health(&self) -> ViewHealth {
        self.breaker.state()
    }

    /// The circuit breaker guarding this view's serving path.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Repair utility: re-execute each resident bcp's query and drop any
    /// cached tuple not in the current answer. Useful after direct base
    /// mutations that bypassed maintenance, or to recover a quarantined
    /// view; also the oracle the property tests use. (Cross-relation
    /// same-transaction deletes no longer need it —
    /// [`PmvPipeline::maintain_all`] runs the union pass.) Lifts any
    /// quarantine and resets the circuit breaker — the cache is
    /// known-consistent afterwards.
    pub fn revalidate(&mut self, db: &Database) -> Result<usize> {
        let t_start = Instant::now();
        let mut trace = self.obs.begin_trace(TraceKind::Revalidate, self.def.name());
        let removed = revalidate_store(db, &self.def, &mut self.store)?;
        self.store.lift_quarantine();
        self.breaker.reset();
        self.obs.record(Phase::revalidate, t_start.elapsed());
        trace.event(EventKind::Revalidated { removed });
        drop(trace);
        // The sweep closes the failure episode: clear the transient
        // panic/degradation/quarantine tallies along with the breaker so
        // health reports reflect the verified state, then record the
        // sweep itself.
        self.stats.reset_transient();
        self.obs.reset_transient();
        self.stats.revalidations += 1;
        self.last_verified = Instant::now();
        Ok(removed)
    }
}

/// Drop every cached tuple of `store` that is not in the current answer of
/// its bcp's query. Shared by [`Pmv::revalidate`] and the sharded
/// [`crate::concurrent::SharedPmv`] (which revalidates shard by shard).
pub(crate) fn revalidate_store(
    db: &Database,
    def: &PartialViewDef,
    store: &mut PmvStore,
) -> Result<usize> {
    let bcps: Vec<BcpKey> = store.iter().map(|(k, _)| k.clone()).collect();
    let truths = bcp_truths(db, def, &bcps)?;
    let mut removed = 0;
    for (bcp, mut budget) in truths {
        removed += remove_stale(store, &bcp, &mut budget);
    }
    Ok(removed)
}

/// Revalidation phase 1: for each cached bcp, re-derive the multiset of
/// tuples its query produces from current base truth. Pure executor
/// reads — no store access — so the sharded embedding runs this with no
/// shard lock held (repo lock rule: never hold a shard guard across a
/// call into `query::exec`).
pub(crate) fn bcp_truths(
    db: &Database,
    def: &PartialViewDef,
    bcps: &[BcpKey],
) -> Result<Vec<(BcpKey, HashMap<Tuple, usize>)>> {
    let mut out = Vec::with_capacity(bcps.len());
    for bcp in bcps {
        let q = def.bcp_query(bcp)?;
        let (truth, _) = execute(db, &q)?;
        let mut budget: HashMap<Tuple, usize> = HashMap::new();
        for t in truth {
            *budget.entry(t).or_insert(0) += 1;
        }
        out.push((bcp.clone(), budget));
    }
    Ok(out)
}

/// Revalidation phase 2: drop the cached tuples of `bcp` that exceed the
/// truth multiset. Runs under the store's exclusive guard; removal-only,
/// hence always sound.
pub(crate) fn remove_stale(
    store: &mut PmvStore,
    bcp: &BcpKey,
    budget: &mut HashMap<Tuple, usize>,
) -> usize {
    // Pointer-copies only: the entries hold `Arc<Tuple>`s.
    let cached: Vec<(Arc<Tuple>, u64)> = store.lookup(bcp).map(|s| s.to_vec()).unwrap_or_default();
    let mut removed = 0;
    for (t, _) in cached {
        match budget.get_mut(&*t) {
            Some(n) if *n > 0 => *n -= 1,
            _ => {
                store.remove_tuple(bcp, &t);
                removed += 1;
            }
        }
    }
    removed
}

/// Wall-clock breakdown of one pipeline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryTimings {
    /// Operation O1 (decomposition).
    pub o1: Duration,
    /// Operation O2 (PMV probe + partial-result return).
    pub o2: Duration,
    /// Full query execution inside O3.
    pub exec: Duration,
    /// O3 bookkeeping beyond execution (DS checks, bcp recovery, PMV
    /// fill/update).
    pub o3_overhead: Duration,
}

impl QueryTimings {
    /// Total overhead of "our techniques" as the paper measures it:
    /// everything except the query execution itself.
    pub fn overhead(&self) -> Duration {
        self.o1 + self.o2 + self.o3_overhead
    }
}

/// Everything a pipeline run produced.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Partial results served from the PMV in O2 (user layout `Ls`).
    pub partial: Vec<Tuple>,
    /// Remaining results served in O3 (user layout `Ls`).
    pub remaining: Vec<Tuple>,
    /// Partial results in `Ls'` layout (extensions need the cond attrs).
    /// Shared with the PMV store — serving copies pointers, not tuples.
    pub partial_expanded: Vec<Arc<Tuple>>,
    /// Remaining results in `Ls'` layout, shared with the executor output
    /// and (for cached tuples) the PMV store.
    pub remaining_expanded: Vec<Arc<Tuple>>,
    /// Whether any probed bcp was resident (the paper's "hit").
    pub bcp_hit: bool,
    /// Number of condition parts the query decomposed into.
    pub parts: usize,
    /// Timing breakdown.
    pub timings: QueryTimings,
    /// Executor counters.
    pub exec_stats: ExecStats,
    /// Occurrences left in DS after O3 — must be 0; anything else means a
    /// stale tuple was served (surfaced for tests/diagnostics).
    pub ds_leftover: usize,
    /// `Some` when O3 did not complete (deadline, row budget, caught
    /// panic, or transient error): `partial`/`partial_expanded` hold the
    /// sound-but-possibly-incomplete cached results and `remaining` is
    /// empty. `None` means the full answer was produced.
    pub degraded: Option<Degradation>,
}

impl QueryOutcome {
    /// Full result multiset in user layout (partial then remaining).
    pub fn all_results(&self) -> Vec<Tuple> {
        let mut v = Vec::with_capacity(self.partial.len() + self.remaining.len());
        v.extend_from_slice(&self.partial);
        v.extend_from_slice(&self.remaining);
        v
    }

    /// Whether the outcome carries the complete answer (not degraded).
    pub fn is_complete(&self) -> bool {
        self.degraded.is_none()
    }
}

/// The query pipeline; owns the lock manager shared between queries (S
/// locks) and maintenance (X locks).
#[derive(Clone, Default)]
pub struct PmvPipeline {
    locks: LockManager,
}

impl PmvPipeline {
    /// Pipeline with a fresh lock manager.
    pub fn new() -> Self {
        PmvPipeline::default()
    }

    /// Pipeline sharing an existing lock manager.
    pub fn with_locks(locks: LockManager) -> Self {
        PmvPipeline { locks }
    }

    /// The shared lock manager.
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Run one query through O1/O2/O3.
    pub fn run(&self, db: &Database, pmv: &mut Pmv, q: &QueryInstance) -> Result<QueryOutcome> {
        let t_start = Instant::now();
        let mut trace = pmv.obs.begin_trace(TraceKind::Query, pmv.def.name());
        let mut fault_cap = pmv.obs.enabled().then(pmv_faultinject::capture);

        // ---- Operation O1 ----
        let t_o1 = Instant::now();
        let parts = decompose(&pmv.def, q)?;
        let o1 = t_o1.elapsed();
        pmv.obs.record(Phase::o1_decompose, o1);
        trace.event(EventKind::Decompose {
            parts: parts.len(),
            us: o1.as_micros() as u64,
        });

        // ---- Operation O2 (S lock from here to the end of O3) ----
        let _s_lock = self.locks.lock_shared(pmv.def.name());
        let t_o2 = Instant::now();
        let mut ds = Ds::new();
        let mut counters: HashMap<BcpKey, usize> = HashMap::with_capacity(parts.len());
        let mut partial_expanded: Vec<Arc<Tuple>> = Vec::new();
        let mut bcp_hit = false;
        // A quarantined view serves nothing and caches nothing: the query
        // still gets its full, correct answer from O3 below.
        let serving = pmv.breaker.allow_serve();
        trace.event(EventKind::Breaker {
            serving,
            state: pmv.breaker.state().as_str(),
        });
        // Targeted-upquery classification: a part whose containing bcp
        // holds a *complete* answer (stamped at the current insert
        // watermark) needs no execution at all; the remaining "open"
        // parts are refilled per-bcp or answered by the full O3 run.
        let mut open_parts: Vec<&ConditionPart> = Vec::new();
        let mut complete_parts: Vec<&ConditionPart> = Vec::new();
        // Tuples served from complete entries stay out of DS — nothing
        // will re-produce them — unless we fall back to the full O3 run
        // (which re-produces everything and needs them for dedup).
        let mut complete_served: Vec<Arc<Tuple>> = Vec::new();
        if serving {
            for part in &parts {
                if pmv.config.upquery && pmv.store.entry_complete(&part.bcp) {
                    complete_parts.push(part);
                } else {
                    open_parts.push(part);
                }
            }
            for part in &complete_parts {
                if counters.contains_key(&part.bcp) {
                    continue;
                }
                let Some(entries) = pmv.store.lookup(&part.bcp) else {
                    continue;
                };
                let mut served = false;
                for (t, _) in entries {
                    if part.is_basic || q.matches_select(t) {
                        partial_expanded.push(Arc::clone(t));
                        complete_served.push(Arc::clone(t));
                        served = true;
                    }
                }
                bcp_hit = true;
                let cached_count = entries.len();
                counters.insert(part.bcp.clone(), cached_count);
                pmv.store.touch(&part.bcp, served);
                pmv.stats.complete_serves += 1;
            }
            // The locked pipeline holds the S lock through O3, so every
            // cached tuple is consistent regardless of fill epoch: pin
            // at u64::MAX (serve everything).
            probe_parts(
                &mut pmv.store,
                q,
                &open_parts,
                u64::MAX,
                &mut counters,
                &mut ds,
                &mut partial_expanded,
                &mut bcp_hit,
            );
        } else {
            open_parts = parts.iter().collect();
        }
        let o2 = t_o2.elapsed();
        pmv.obs.record(Phase::o2_probe, o2);
        // Time-to-first-result: query start → O2 partials available
        // (the paper's "~1 ms" claim, §3.3). Before O3 on purpose, so
        // degraded queries count too.
        let ttfr = t_start.elapsed();
        pmv.obs.record(Phase::ttfr, ttfr);
        trace.event_at(
            ttfr.as_micros() as u64,
            EventKind::FirstResults {
                tuples: partial_expanded.len(),
                bcp_hit,
                us: ttfr.as_micros() as u64,
            },
        );

        // ---- Complete-serve fast path: every probed bcp holds a
        // complete, current answer — the partials ARE the full answer
        // and no execution runs at all. ----
        if serving && pmv.config.upquery && !parts.is_empty() && open_parts.is_empty() {
            pmv.obs.record(Phase::full, t_start.elapsed());
            flush_faults(&mut trace, fault_cap.take());
            pmv.stats.queries += 1;
            pmv.stats.condition_parts += parts.len() as u64;
            pmv.stats.bcp_hit_queries += 1;
            if !partial_expanded.is_empty() {
                pmv.stats.serving_queries += 1;
                pmv.stats.partial_tuples_served += partial_expanded.len() as u64;
            }
            let template = pmv.def.template();
            let partial = partial_expanded
                .iter()
                .map(|t| template.user_tuple(t))
                .collect();
            return Ok(QueryOutcome {
                partial,
                remaining: Vec::new(),
                partial_expanded,
                remaining_expanded: Vec::new(),
                bcp_hit,
                parts: parts.len(),
                timings: QueryTimings {
                    o1,
                    o2,
                    exec: Duration::ZERO,
                    o3_overhead: Duration::ZERO,
                },
                exec_stats: ExecStats::default(),
                ds_leftover: 0,
                degraded: None,
            });
        }

        // ---- Targeted upqueries: when part of the probe hit complete
        // entries, refill only the open bcps with bounded keyed queries
        // instead of running the full executor. Budget or transient
        // failures fall back to the full O3 run below. ----
        if serving && pmv.config.upquery && !complete_parts.is_empty() {
            let t_exec = Instant::now();
            let fill_epoch = db.version();
            let deadline = pmv.config.o3_deadline.map(|d| Instant::now() + d);
            let evictions_before = pmv.store.evictions();
            let mut remaining_expanded: Vec<Arc<Tuple>> = Vec::new();
            let mut exec_total = ExecStats::default();
            let mut admit_cache: HashMap<BcpKey, Residency> = HashMap::new();
            let mut done: HashSet<BcpKey> = HashSet::new();
            let mut upq_ok = true;
            'upq: for part in &open_parts {
                if !done.insert(part.bcp.clone()) {
                    continue;
                }
                let qi = pmv.def.bcp_query(&part.bcp)?;
                let budget = ExecBudget {
                    deadline,
                    max_tuples: pmv.config.o3_max_tuples,
                };
                let t_u = Instant::now();
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    upquery_fill(db, &qi, budget)
                }));
                let (rows, es) = match attempt {
                    Ok(Ok(r)) => r,
                    _ => {
                        upq_ok = false;
                        pmv.stats.upquery_fallbacks += 1;
                        break 'upq;
                    }
                };
                pmv.obs.record(Phase::upquery, t_u.elapsed());
                pmv.stats.upqueries += 1;
                pmv.stats.upquery_rows += rows.len() as u64;
                exec_total.index_probes += es.index_probes;
                exec_total.range_scans += es.range_scans;
                exec_total.fallback_scans += es.fallback_scans;
                exec_total.tuples_examined += es.tuples_examined;
                exec_total.results += es.results;
                // Multiset of occurrences already cached under this bcp:
                // the refill re-produces them and must not re-push (the
                // entry would overstate multiplicity).
                let mut cached = Ds::new();
                if let Some(entries) = pmv.store.lookup(&part.bcp) {
                    for (t, _) in entries {
                        cached.insert_arc(Arc::clone(t));
                    }
                }
                let mut all_cached = true;
                for t in rows {
                    if cached.remove_one(&t) {
                        // Already in the entry; if it was served in O2
                        // it is in DS too — drain that occurrence.
                        ds.remove_one(&t);
                        continue;
                    }
                    let in_answer = part.is_basic || q.matches_select(&t);
                    let cj = counters.entry(part.bcp.clone()).or_insert(0);
                    let mut cached_now = false;
                    if *cj < pmv.config.f {
                        let residency = match admit_cache.get(&part.bcp) {
                            Some(r) => *r,
                            None => {
                                let r = pmv.store.admit(&part.bcp);
                                if r == Residency::Probation {
                                    pmv.stats.probations += 1;
                                }
                                admit_cache.insert(part.bcp.clone(), r);
                                r
                            }
                        };
                        if residency == Residency::Resident
                            && pmv.store.push_arc(&part.bcp, Arc::clone(&t), fill_epoch)
                        {
                            *cj += 1;
                            pmv.stats.tuples_admitted += 1;
                            cached_now = true;
                        }
                    }
                    if !cached_now {
                        all_cached = false;
                    }
                    if in_answer {
                        remaining_expanded.push(t);
                    }
                }
                // `cached` drained ⇔ every previously-cached occurrence
                // was re-derived (the soundness invariant); with every
                // new row also cached and no eviction racing the fill,
                // the entry now holds the bcp's entire answer.
                if all_cached
                    && cached.is_empty()
                    && pmv.store.evictions() == evictions_before
                {
                    let at = pmv.store.inserts_seen();
                    pmv.store.mark_complete(&part.bcp, at);
                }
            }
            if upq_ok {
                pmv.breaker.record_ok();
                let exec = t_exec.elapsed();
                pmv.obs.record(Phase::o3_exec, exec);
                trace.event(EventKind::Exec {
                    rows: remaining_expanded.len(),
                    tuples_examined: exec_total.tuples_examined,
                    index_probes: exec_total.index_probes,
                    us: exec.as_micros() as u64,
                });
                let ds_leftover = ds.len();
                debug_assert_eq!(ds_leftover, 0, "DS must be empty after upquery refill");
                pmv.obs.record(Phase::full, t_start.elapsed());
                flush_faults(&mut trace, fault_cap.take());
                pmv.stats.queries += 1;
                pmv.stats.condition_parts += parts.len() as u64;
                if bcp_hit {
                    pmv.stats.bcp_hit_queries += 1;
                }
                if !partial_expanded.is_empty() {
                    pmv.stats.serving_queries += 1;
                    pmv.stats.partial_tuples_served += partial_expanded.len() as u64;
                }
                let template = pmv.def.template();
                let partial = partial_expanded
                    .iter()
                    .map(|t| template.user_tuple(t))
                    .collect();
                let remaining = remaining_expanded
                    .iter()
                    .map(|t| template.user_tuple(t))
                    .collect();
                return Ok(QueryOutcome {
                    partial,
                    remaining,
                    partial_expanded,
                    remaining_expanded,
                    bcp_hit,
                    parts: parts.len(),
                    timings: QueryTimings {
                        o1,
                        o2,
                        exec,
                        o3_overhead: Duration::ZERO,
                    },
                    exec_stats: exec_total,
                    ds_leftover,
                    degraded: None,
                });
            }
            // Fallback: the full O3 run below re-produces everything,
            // including the complete entries' servings — seed DS so they
            // dedup like any other served partial.
            for t in complete_served.drain(..) {
                ds.insert_arc(t);
            }
        }

        // ---- Operation O3: full execution under the config's budget ----
        let t_exec = Instant::now();
        let budget = ExecBudget {
            deadline: pmv.config.o3_deadline.map(|d| Instant::now() + d),
            max_tuples: pmv.config.o3_max_tuples,
        };
        // The executor holds no PMV state, so a panicking operator cannot
        // tear the store: catch it and degrade exactly like a transient
        // error.
        let exec_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_bounded_arc(db, q, budget)
        }));
        let (results, exec_stats) = match exec_result {
            Ok(Ok(r)) => r,
            Ok(Err(e)) if !(e.is_budget() || e.is_transient()) => {
                pmv.breaker.record_error();
                pmv.obs.record(Phase::o3_exec, t_exec.elapsed());
                flush_faults(&mut trace, fault_cap.take());
                return Err(e.into());
            }
            faulted => {
                // Serve what O2 already produced, flagged degraded. The
                // partials are a sub-multiset of the true answer, so this
                // under-serves but never lies.
                let reason = match &faulted {
                    Ok(Err(e)) => degrade_reason(e),
                    _ => DegradeReason::ExecPanic,
                };
                pmv.breaker.record_error();
                pmv.stats.queries += 1;
                pmv.stats.condition_parts += parts.len() as u64;
                pmv.stats.degraded_queries += 1;
                match reason {
                    DegradeReason::Deadline | DegradeReason::TupleBudget => {
                        pmv.stats.budget_exceeded += 1
                    }
                    DegradeReason::ExecPanic => pmv.stats.exec_panics += 1,
                    _ => pmv.stats.exec_errors += 1,
                }
                if bcp_hit {
                    pmv.stats.bcp_hit_queries += 1;
                }
                if !partial_expanded.is_empty() {
                    pmv.stats.serving_queries += 1;
                    pmv.stats.partial_tuples_served += partial_expanded.len() as u64;
                }
                pmv.obs.record(Phase::o3_exec, t_exec.elapsed());
                pmv.obs.record(Phase::degraded, t_start.elapsed());
                trace.event(EventKind::Degraded {
                    reason: reason.to_string(),
                    staleness_us: pmv.last_verified.elapsed().as_micros() as u64,
                });
                flush_faults(&mut trace, fault_cap.take());
                let template = pmv.def.template();
                let partial = partial_expanded
                    .iter()
                    .map(|t| template.user_tuple(t))
                    .collect();
                return Ok(QueryOutcome {
                    partial,
                    remaining: Vec::new(),
                    partial_expanded,
                    remaining_expanded: Vec::new(),
                    bcp_hit,
                    parts: parts.len(),
                    timings: QueryTimings {
                        o1,
                        o2,
                        exec: t_exec.elapsed(),
                        o3_overhead: Duration::ZERO,
                    },
                    exec_stats: ExecStats::default(),
                    ds_leftover: 0,
                    degraded: Some(Degradation {
                        reason,
                        partial_only: true,
                        staleness: pmv.last_verified.elapsed(),
                    }),
                });
            }
        };
        pmv.breaker.record_ok();
        let exec = t_exec.elapsed();
        pmv.obs.record(Phase::o3_exec, exec);
        trace.event(EventKind::Exec {
            rows: results.len(),
            tuples_examined: exec_stats.tuples_examined,
            index_probes: exec_stats.index_probes,
            us: exec.as_micros() as u64,
        });

        // ---- Operation O3: dedup + fill/update ----
        let t_o3 = Instant::now();
        let fill_epoch = db.version();
        let mut remaining_expanded: Vec<Arc<Tuple>> = Vec::new();
        let mut admit_cache: HashMap<BcpKey, Residency> = HashMap::new();
        // Basic parts' bcps where this run observes the *entire* answer:
        // if every produced row lands (or already lives) in the entry,
        // stamp it complete so later probes skip execution entirely.
        let evictions_before = pmv.store.evictions();
        let mut completable: HashMap<BcpKey, bool> = if serving && pmv.config.upquery {
            parts
                .iter()
                .filter(|p| p.is_basic)
                .map(|p| (p.bcp.clone(), true))
                .collect()
        } else {
            HashMap::new()
        };
        for t in results {
            // `is_empty` is a field read: cold queries (nothing served)
            // skip the hash probe entirely.
            if !ds.is_empty() && ds.remove_one(&t) {
                continue; // the user already has this occurrence
            }
            let bcp = pmv.def.bcp_of_tuple(&t);
            let cj = counters.entry(bcp.clone()).or_insert(0);
            let mut cached_now = false;
            if serving && *cj < pmv.config.f {
                let residency = match admit_cache.get(&bcp) {
                    Some(r) => *r,
                    None => {
                        let r = pmv.store.admit(&bcp);
                        if r == Residency::Probation {
                            pmv.stats.probations += 1;
                        }
                        admit_cache.insert(bcp.clone(), r);
                        r
                    }
                };
                if residency == Residency::Resident
                    && pmv.store.push_arc(&bcp, Arc::clone(&t), fill_epoch)
                {
                    *cj += 1;
                    pmv.stats.tuples_admitted += 1;
                    cached_now = true;
                }
            }
            if !cached_now {
                if let Some(flag) = completable.get_mut(&bcp) {
                    *flag = false;
                }
            }
            remaining_expanded.push(t);
        }
        if pmv.store.evictions() == evictions_before {
            let at = pmv.store.inserts_seen();
            for (bcp, ok) in &completable {
                if *ok {
                    pmv.store.mark_complete(bcp, at);
                }
            }
        }
        let ds_leftover = ds.len();
        debug_assert_eq!(ds_leftover, 0, "DS must be empty after O3");
        let o3_overhead = t_o3.elapsed();
        pmv.obs.record(Phase::o3_dedup, o3_overhead);
        pmv.obs.record(Phase::full, t_start.elapsed());
        flush_faults(&mut trace, fault_cap.take());

        // ---- Bookkeeping ----
        pmv.stats.queries += 1;
        pmv.stats.condition_parts += parts.len() as u64;
        if bcp_hit {
            pmv.stats.bcp_hit_queries += 1;
        }
        if !partial_expanded.is_empty() {
            pmv.stats.serving_queries += 1;
            pmv.stats.partial_tuples_served += partial_expanded.len() as u64;
        }

        let template = pmv.def.template();
        let partial = partial_expanded
            .iter()
            .map(|t| template.user_tuple(t))
            .collect();
        let remaining = remaining_expanded
            .iter()
            .map(|t| template.user_tuple(t))
            .collect();
        Ok(QueryOutcome {
            partial,
            remaining,
            partial_expanded,
            remaining_expanded,
            bcp_hit,
            parts: parts.len(),
            timings: QueryTimings {
                o1,
                o2,
                exec,
                o3_overhead,
            },
            exec_stats,
            ds_leftover,
            degraded: None,
        })
    }

    /// Baseline: execute the query without any PMV involvement, returning
    /// user-layout results and the execution time.
    pub fn run_plain(
        &self,
        db: &Database,
        q: &QueryInstance,
    ) -> Result<(Vec<Tuple>, ExecStats, Duration)> {
        let t0 = Instant::now();
        let (results, stats) = execute(db, q)?;
        let template = q.template();
        let user: Vec<Tuple> = results.iter().map(|t| template.user_tuple(t)).collect();
        Ok((user, stats, t0.elapsed()))
    }
}

/// Close a fault-capture scope (if one was opened) and surface every
/// delivered fault — latency injections above all, which otherwise leave
/// no visible mark — as `FaultFired` trace events. Shared with the
/// sharded embedding.
pub(crate) fn flush_faults(
    trace: &mut pmv_obs::TraceScope<'_>,
    cap: Option<pmv_faultinject::CaptureGuard>,
) {
    if let Some(cap) = cap {
        for f in cap.finish() {
            trace.event(EventKind::FaultFired {
                site: f.site.to_string(),
                kind: f.kind_str(),
            });
        }
    }
}

/// Map an abort-class [`pmv_query::QueryError`] to a degradation reason.
/// Shared with the sharded embedding.
pub(crate) fn degrade_reason(e: &pmv_query::QueryError) -> DegradeReason {
    use pmv_query::{BudgetExceeded, QueryError};
    match e {
        QueryError::Budget(BudgetExceeded::Deadline) => DegradeReason::Deadline,
        QueryError::Budget(BudgetExceeded::Tuples) => DegradeReason::TupleBudget,
        _ => DegradeReason::ExecError,
    }
}

/// O2 inner loop, shared with the sharded [`crate::concurrent::SharedPmv`]
/// (which calls it once per shard with that shard's slice of the parts):
/// probe each distinct containing bcp once, serve matching cached tuples,
/// fill DS/counters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn probe_parts(
    store: &mut PmvStore,
    q: &QueryInstance,
    parts: &[&ConditionPart],
    pin_epoch: u64,
    counters: &mut HashMap<BcpKey, usize>,
    ds: &mut Ds,
    partial_expanded: &mut Vec<Arc<Tuple>>,
    bcp_hit: &mut bool,
) {
    for part in parts {
        if counters.contains_key(&part.bcp) {
            // Several condition parts can share one containing bcp (two
            // query intervals inside one basic interval); the full
            // Cselect check below already covered its tuples.
            continue;
        }
        // Zero-copy: matching tuples are served by cloning their `Arc`s
        // into DS and the partial list; no tuple data moves.
        let (hit, served, cached_count) = match store.lookup(&part.bcp) {
            Some(entries) => {
                let mut served = false;
                for (t, fill_epoch) in entries {
                    // Epoch gate: a reader pinned at epoch e must not see
                    // tuples computed after e. (The locked pipeline pins
                    // u64::MAX — it relies on the S lock instead.)
                    if *fill_epoch > pin_epoch {
                        continue;
                    }
                    // A basic part contains every tuple of its bcp; a
                    // contained part requires the full Cselect check —
                    // "this is equivalent to checking whether t satisfies
                    // the Cselect of query Q".
                    if part.is_basic || q.matches_select(t) {
                        ds.insert_arc(Arc::clone(t));
                        partial_expanded.push(Arc::clone(t));
                        served = true;
                    }
                }
                (true, served, entries.len())
            }
            None => (false, false, 0),
        };
        if hit {
            *bcp_hit = true;
        }
        counters.insert(part.bcp.clone(), cached_count);
        store.touch(&part.bcp, served);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcp::{BcpDim, BcpKey, Discretizer};
    use crate::view::PartialViewDef;
    use pmv_cache::PolicyKind;
    use pmv_index::IndexDef;
    use pmv_query::{Condition, Interval, TemplateBuilder};
    use pmv_storage::{tuple, Column, ColumnType, Schema, Value};

    /// R(a, c, f) ⋈ S(d, e, g) on c = d, conditions on f (eq) and g (eq),
    /// the paper's Eqt with the Figure 3 data plus extras.
    fn setup() -> (Database, Pmv, PmvPipeline) {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("c", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(Schema::new(
            "s",
            vec![
                Column::new("d", ColumnType::Int),
                Column::new("e", ColumnType::Int),
                Column::new("g", ColumnType::Int),
            ],
        ))
        .unwrap();
        db.load(
            "r",
            vec![
                tuple![1i64, 4i64, 1i64],
                tuple![1i64, 5i64, 1i64],
                tuple![7i64, 6i64, 3i64],
                tuple![9i64, 6i64, 5i64],
            ],
        )
        .unwrap();
        db.load(
            "s",
            vec![
                tuple![4i64, 2i64, 7i64],
                tuple![5i64, 2i64, 7i64],
                tuple![6i64, 8i64, 9i64],
            ],
        )
        .unwrap();
        db.create_index(IndexDef::btree("r", vec![2])).unwrap();
        db.create_index(IndexDef::btree("r", vec![1])).unwrap();
        db.create_index(IndexDef::btree("s", vec![0])).unwrap();
        db.create_index(IndexDef::btree("s", vec![2])).unwrap();
        let t = TemplateBuilder::new("Eqt")
            .relation(db.schema("r").unwrap())
            .relation(db.schema("s").unwrap())
            .join("r", "c", "s", "d")
            .unwrap()
            .select("r", "a")
            .unwrap()
            .select("s", "e")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .cond_eq("s", "g")
            .unwrap()
            .build()
            .unwrap();
        let def = PartialViewDef::all_equality("pmv_eqt", t).unwrap();
        let pmv = Pmv::new(def, PmvConfig::new(2, 8, PolicyKind::Clock));
        (db, pmv, PmvPipeline::new())
    }

    fn q_eq(pmv: &Pmv, fs: &[i64], gs: &[i64]) -> QueryInstance {
        pmv.def()
            .template()
            .bind(vec![
                Condition::Equality(fs.iter().map(|&v| Value::Int(v)).collect()),
                Condition::Equality(gs.iter().map(|&v| Value::Int(v)).collect()),
            ])
            .unwrap()
    }

    #[test]
    fn cold_query_serves_nothing_but_fills_pmv() {
        let (db, mut pmv, pipe) = setup();
        let q = q_eq(&pmv, &[1], &[7]);
        let out = pipe.run(&db, &mut pmv, &q).unwrap();
        assert!(!out.bcp_hit);
        assert!(out.partial.is_empty());
        assert_eq!(out.remaining.len(), 2);
        assert_eq!(out.ds_leftover, 0);
        // F = 2: both result tuples cached under bcp (1, 7).
        let bcp = BcpKey::new(vec![BcpDim::Eq(Value::Int(1)), BcpDim::Eq(Value::Int(7))]);
        assert_eq!(pmv.store().lookup(&bcp).unwrap().len(), 2);
        pmv.store().validate();
    }

    #[test]
    fn warm_query_serves_partial_results_first() {
        let (db, mut pmv, pipe) = setup();
        let q = q_eq(&pmv, &[1], &[7]);
        pipe.run(&db, &mut pmv, &q).unwrap();
        let out = pipe.run(&db, &mut pmv, &q).unwrap();
        assert!(out.bcp_hit);
        assert_eq!(out.partial.len(), 2);
        assert!(out.remaining.is_empty());
        assert_eq!(out.ds_leftover, 0);
        assert_eq!(pmv.stats().bcp_hit_queries, 1);
        assert_eq!(pmv.stats().queries, 2);
    }

    #[test]
    fn each_result_returned_exactly_once() {
        let (db, mut pmv, pipe) = setup();
        // Query with a hot and a cold pair, as in Section 2.3's example.
        let hot = q_eq(&pmv, &[1], &[7]);
        pipe.run(&db, &mut pmv, &hot).unwrap();
        let q = q_eq(&pmv, &[1, 3], &[7, 9]);
        let out = pipe.run(&db, &mut pmv, &q).unwrap();
        // Full result multiset: (1,2) x2 for (f=1,g=7), (7,8) for (3,9).
        let mut all = out.all_results();
        all.sort();
        assert_eq!(
            all,
            vec![tuple![1i64, 2i64], tuple![1i64, 2i64], tuple![7i64, 8i64]]
        );
        // The two (1,2) tuples came early.
        assert_eq!(out.partial.len(), 2);
        assert_eq!(out.remaining.len(), 1);
        assert_eq!(out.ds_leftover, 0);
    }

    #[test]
    fn f_caps_cached_tuples_per_bcp() {
        let (db, pmv, pipe) = setup();
        // (f=1, g=7) has 2 result tuples; with F = 1 only one is cached.
        let mut pmv1 = Pmv::new(pmv.def().clone(), PmvConfig::new(1, 8, PolicyKind::Clock));
        let q = q_eq(&pmv, &[1], &[7]);
        pipe.run(&db, &mut pmv1, &q).unwrap();
        let bcp = BcpKey::new(vec![BcpDim::Eq(Value::Int(1)), BcpDim::Eq(Value::Int(7))]);
        assert_eq!(pmv1.store().lookup(&bcp).unwrap().len(), 1);
        // Second run: one tuple early, one late, none lost.
        let out = pipe.run(&db, &mut pmv1, &q).unwrap();
        assert_eq!(out.partial.len(), 1);
        assert_eq!(out.remaining.len(), 1);
        assert_eq!(out.ds_leftover, 0);
        pmv1.store().validate();
        let _ = pmv;
    }

    #[test]
    fn pipeline_results_match_plain_execution() {
        let (db, mut pmv, pipe) = setup();
        let queries = [
            q_eq(&pmv, &[1], &[7]),
            q_eq(&pmv, &[1, 3], &[7, 9]),
            q_eq(&pmv, &[3, 5], &[9]),
            q_eq(&pmv, &[1, 3, 5], &[7, 9]),
        ];
        for _ in 0..3 {
            for q in &queries {
                let (mut plain, _, _) = pipe.run_plain(&db, q).unwrap();
                let out = pipe.run(&db, &mut pmv, q).unwrap();
                let mut got = out.all_results();
                got.sort();
                plain.sort();
                assert_eq!(got, plain);
                assert_eq!(out.ds_leftover, 0);
                pmv.store().validate();
            }
        }
    }

    #[test]
    fn interval_template_pipeline() {
        let (db, _, pipe) = setup();
        let t = TemplateBuilder::new("iv")
            .relation(db.schema("r").unwrap())
            .relation(db.schema("s").unwrap())
            .join("r", "c", "s", "d")
            .unwrap()
            .select("r", "a")
            .unwrap()
            .select("s", "e")
            .unwrap()
            .cond_interval("r", "f")
            .unwrap()
            .cond_eq("s", "g")
            .unwrap()
            .build()
            .unwrap();
        let def = PartialViewDef::new(
            "pmv_iv",
            t,
            vec![Some(Discretizer::int_grid(0, 2, 4)), None], // dividers 0,2,4,6
        )
        .unwrap();
        let mut pmv = Pmv::new(def, PmvConfig::default());
        let q = pmv
            .def()
            .template()
            .bind(vec![
                Condition::Intervals(vec![Interval::half_open(0i64, 4i64)]),
                Condition::Equality(vec![Value::Int(7)]),
            ])
            .unwrap();
        let out1 = pipe.run(&db, &mut pmv, &q).unwrap();
        assert_eq!(out1.remaining.len(), 2); // both f=1 rows
        let out2 = pipe.run(&db, &mut pmv, &q).unwrap();
        assert_eq!(out2.partial.len(), 2);
        assert!(out2.remaining.is_empty());
        assert_eq!(out2.ds_leftover, 0);

        // A narrower query contained in the same bcp still gets served
        // (the "contained in a basic condition part" case).
        let narrow = pmv
            .def()
            .template()
            .bind(vec![
                Condition::Intervals(vec![Interval::half_open(0i64, 2i64)]),
                Condition::Equality(vec![Value::Int(7)]),
            ])
            .unwrap();
        let out3 = pipe.run(&db, &mut pmv, &narrow).unwrap();
        assert_eq!(out3.partial.len(), 2); // f=1 falls in [0,2)
        assert_eq!(out3.ds_leftover, 0);
    }

    #[test]
    fn bcp_query_selects_exactly_the_cell() {
        let (db, mut pmv, pipe) = setup();
        let q = q_eq(&pmv, &[1], &[7]);
        pipe.run(&db, &mut pmv, &q).unwrap();
        let bcp = BcpKey::new(vec![BcpDim::Eq(Value::Int(1)), BcpDim::Eq(Value::Int(7))]);
        let cell_q = pmv.bcp_query(&bcp).unwrap();
        let (rows, _) = pmv_query::execute(&db, &cell_q).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn revalidate_removes_stale_tuples() {
        let (mut db, mut pmv, pipe) = setup();
        let q = q_eq(&pmv, &[1], &[7]);
        pipe.run(&db, &mut pmv, &q).unwrap();
        // Bypass maintenance: delete a base row directly, leaving the PMV
        // stale, then let revalidate repair it.
        let handle = db.relation("r").unwrap();
        let row = handle
            .read()
            .iter()
            .find(|(_, t)| t.get(1) == &Value::Int(4))
            .map(|(r, _)| r)
            .unwrap();
        db.delete("r", row).unwrap();
        let removed = pmv.revalidate(&db).unwrap();
        assert_eq!(removed, 1);
        let out = pipe.run(&db, &mut pmv, &q).unwrap();
        assert_eq!(out.ds_leftover, 0);
        assert_eq!(out.all_results().len(), 1);
    }

    #[test]
    fn two_q_policy_requires_second_query_to_cache() {
        let (db, pmv, pipe) = setup();
        let mut pmv2 = Pmv::new(pmv.def().clone(), PmvConfig::new(2, 8, PolicyKind::TwoQ));
        let q = q_eq(&pmv, &[1], &[7]);
        pipe.run(&db, &mut pmv2, &q).unwrap();
        // First query: bcp went to A1, nothing cached.
        assert_eq!(pmv2.store().entry_count(), 0);
        assert!(pmv2.stats().probations > 0);
        pipe.run(&db, &mut pmv2, &q).unwrap();
        // Second query: promoted to Am and filled.
        assert_eq!(pmv2.store().entry_count(), 1);
        let out = pipe.run(&db, &mut pmv2, &q).unwrap();
        assert_eq!(out.partial.len(), 2);
        let _ = pmv;
    }

    #[test]
    fn eviction_under_small_l() {
        let (db, pmv, pipe) = setup();
        let mut small = Pmv::new(pmv.def().clone(), PmvConfig::new(2, 1, PolicyKind::Clock));
        pipe.run(&db, &mut small, &q_eq(&pmv, &[1], &[7])).unwrap();
        pipe.run(&db, &mut small, &q_eq(&pmv, &[3], &[9])).unwrap();
        assert_eq!(small.store().entry_count(), 1);
        assert!(small.store().evictions() > 0);
        small.store().validate();
        let _ = pmv;
    }

    #[test]
    fn stats_accumulate() {
        let (db, mut pmv, pipe) = setup();
        let q = q_eq(&pmv, &[1], &[7]);
        pipe.run(&db, &mut pmv, &q).unwrap();
        pipe.run(&db, &mut pmv, &q).unwrap();
        let s = pmv.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.bcp_hit_queries, 1);
        assert_eq!(s.partial_tuples_served, 2);
        assert_eq!(s.tuples_admitted, 2);
        assert!((s.hit_probability() - 0.5).abs() < 1e-12);
        pmv.reset_stats();
        assert_eq!(pmv.stats().queries, 0);
    }
}
