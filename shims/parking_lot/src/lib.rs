//! Offline shim exposing the subset of the `parking_lot` API this
//! workspace uses: `Mutex`, `Condvar`, and an `RwLock` with write-guard
//! downgrade. Built on `std::sync` primitives (poisoning is swallowed,
//! matching parking_lot's behaviour); the `RwLock` is hand-rolled because
//! `std::sync::RwLock` has no atomic downgrade.
//!
//! This crate exists because the build environment has no crates.io
//! access — see the workspace `Cargo.toml`, which patches the registry
//! name to this path.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Mutual exclusion without lock poisoning.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// New unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire without blocking, if free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(&mut guard.inner, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Wait until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        let mut timed_out = false;
        replace_guard(&mut guard.inner, |g| {
            let (g, res) = match self.inner.wait_timeout(g, timeout) {
                Ok((g, res)) => (g, res),
                Err(e) => {
                    let (g, res) = e.into_inner();
                    (g, res)
                }
            };
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Run `f` on the owned std guard in place. The guard slot is never
/// observable empty: `f` consumes the old guard and returns the new one
/// before control returns to safe code.
fn replace_guard<'a, T: ?Sized>(
    slot: &mut StdMutexGuard<'a, T>,
    f: impl FnOnce(StdMutexGuard<'a, T>) -> StdMutexGuard<'a, T>,
) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
}

// ---------------------------------------------------------------------------
// RwLock with atomic write→read downgrade
// ---------------------------------------------------------------------------

#[derive(Default)]
struct RwState {
    readers: usize,
    writer: bool,
    waiting_writers: usize,
}

/// Reader-writer lock with writer preference and an atomic
/// [`RwLockWriteGuard::downgrade`].
pub struct RwLock<T: ?Sized> {
    state: StdMutex<RwState>,
    readers_cv: StdCondvar,
    writers_cv: StdCondvar,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

/// Shared-access guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

/// Exclusive-access guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T> RwLock<T> {
    /// New unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            state: StdMutex::new(RwState {
                readers: 0,
                writer: false,
                waiting_writers: 0,
            }),
            readers_cv: StdCondvar::new(),
            writers_cv: StdCondvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn state(&self) -> StdMutexGuard<'_, RwState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until shared access is granted.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let mut s = self.state();
        // Writer preference: don't overtake a waiting writer.
        while s.writer || s.waiting_writers > 0 {
            s = self.readers_cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.readers += 1;
        RwLockReadGuard { lock: self }
    }

    /// Shared access without blocking, if available.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let mut s = self.state();
        if s.writer || s.waiting_writers > 0 {
            return None;
        }
        s.readers += 1;
        Some(RwLockReadGuard { lock: self })
    }

    /// Block until exclusive access is granted.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let mut s = self.state();
        s.waiting_writers += 1;
        while s.writer || s.readers > 0 {
            s = self.writers_cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.waiting_writers -= 1;
        s.writer = true;
        RwLockWriteGuard { lock: self }
    }

    /// Exclusive access without blocking, if available.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let mut s = self.state();
        if s.writer || s.readers > 0 {
            return None;
        }
        s.writer = true;
        Some(RwLockWriteGuard { lock: self })
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        let mut s = self.lock.state();
        s.readers -= 1;
        if s.readers == 0 {
            drop(s);
            self.lock.writers_cv.notify_one();
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        let mut s = self.lock.state();
        s.writer = false;
        let wake_writer = s.waiting_writers > 0;
        drop(s);
        if wake_writer {
            self.lock.writers_cv.notify_one();
        } else {
            self.lock.readers_cv.notify_all();
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<'a, T: ?Sized> RwLockWriteGuard<'a, T> {
    /// Atomically convert exclusive access into shared access: no other
    /// writer can slip in between.
    pub fn downgrade(guard: Self) -> RwLockReadGuard<'a, T> {
        let lock = guard.lock;
        std::mem::forget(guard);
        {
            let mut s = lock.state();
            s.writer = false;
            s.readers = 1;
        }
        // Other readers may join; waiting writers must wait for us.
        lock.readers_cv.notify_all();
        RwLockReadGuard { lock }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        assert!(l.try_write().is_none());
        drop(a);
        drop(b);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn rwlock_downgrade_excludes_writers() {
        let l = Arc::new(RwLock::new(0));
        let w = l.write();
        let r = RwLockWriteGuard::downgrade(w);
        assert_eq!(*r, 0);
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(r);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn contended_rwlock_counts() {
        let l = Arc::new(RwLock::new(0u64));
        let reads = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..8 {
            let l = Arc::clone(&l);
            let reads = Arc::clone(&reads);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    if i % 4 == 0 {
                        *l.write() += 1;
                    } else {
                        let _ = *l.read();
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 2 * 200);
        assert_eq!(reads.load(Ordering::Relaxed), 6 * 200);
    }
}
